//! Chaos RPC: drive the remote-execution substrate over a deliberately
//! hostile link and watch the robustness layers carry the workload
//! through — CRC framing rejects corruption, retries mask loss, and the
//! at-most-once cache keeps every non-idempotent call from executing
//! twice.
//!
//! ```sh
//! cargo run --release --example chaos_rpc
//! ```

use std::sync::Arc;
use std::time::Duration;

use aide::graph::CommParams;
use aide::rpc::{
    chaos_pair, ChaosSchedule, Dispatcher, Endpoint, EndpointConfig, Reply, Request, RetryPolicy,
};
use aide::vm::ObjectId;

/// A tiny slot store standing in for a surrogate VM: each `PutSlot`
/// overwrites, so re-executing a replayed request would corrupt it.
struct SlotStore {
    slots: std::sync::Mutex<Vec<Option<ObjectId>>>,
    executions: std::sync::atomic::AtomicU64,
}

impl Dispatcher for SlotStore {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        self.executions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match request {
            Request::PutSlot { slot, value, .. } => {
                self.slots.lock().unwrap()[slot as usize] = value;
                Ok(Reply::Unit)
            }
            Request::GetSlot { slot, .. } => {
                Ok(Reply::Slot(self.slots.lock().unwrap()[slot as usize]))
            }
            _ => Err("unsupported".into()),
        }
    }
}

struct Quiet;
impl Dispatcher for Quiet {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

fn main() {
    // A moderately hostile link: 8% loss, 8% corruption, 3% truncation,
    // plus delays, duplicates, and reordering — all from one seed, so
    // every run of this example injects identical weather.
    let schedule = ChaosSchedule::hostile(42);
    println!("schedule: {schedule:?}\n");

    let (link, ct, st, stats) = chaos_pair(CommParams::WAVELAN, schedule);
    let store = Arc::new(SlotStore {
        slots: std::sync::Mutex::new(vec![None; 16]),
        executions: std::sync::atomic::AtomicU64::new(0),
    });
    let config = EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(100),
        retry: RetryPolicy {
            max_attempts: 10,
            attempt_timeout: Duration::from_millis(50),
            base_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        },
    };
    let client = Endpoint::start(ct, link.params, link.clock.clone(), Arc::new(Quiet), config);
    let surrogate = Endpoint::start(st, link.params, link.clock.clone(), store.clone(), config);

    // 64 writes followed by 16 reads — every one must succeed despite the
    // weather, and the final state must be exactly what a clean link
    // would produce.
    for i in 0..64u64 {
        client
            .call_with_retry(Request::PutSlot {
                target: ObjectId::surrogate(0),
                slot: (i % 16) as u16,
                value: Some(ObjectId::client(i)),
            })
            .expect("write survives chaos");
    }
    for slot in 0..16u16 {
        let reply = client
            .call_with_retry(Request::GetSlot {
                target: ObjectId::surrogate(0),
                slot,
            })
            .expect("read survives chaos");
        let expected = Some(ObjectId::client(48 + u64::from(slot)));
        assert_eq!(
            reply,
            Reply::Slot(expected),
            "slot {slot} holds the last write"
        );
    }

    println!("workload:   64 writes + 16 reads, all correct");
    println!(
        "served:     {} unique executions for {} logical calls",
        surrogate.requests_served(),
        80
    );
    println!(
        "dispatched: {} (replays answered from the dedup cache: {})",
        store.executions.load(std::sync::atomic::Ordering::Relaxed),
        surrogate.dedup_hits()
    );
    println!("retries:    {}", client.retries());
    println!(
        "bad frames: {} (corruption/truncation caught by the CRC)",
        surrogate.bad_frames() + client.bad_frames()
    );
    println!(
        "injected:   {} dropped, {} corrupted, {} delayed, {} duplicated",
        stats.client.dropped() + stats.surrogate.dropped(),
        stats.client.corrupted() + stats.surrogate.corrupted(),
        stats.client.delayed() + stats.surrogate.delayed(),
        stats.client.duplicated() + stats.surrogate.duplicated(),
    );

    assert_eq!(
        surrogate.requests_served(),
        80,
        "at-most-once: every logical call executed exactly once"
    );
    client.shutdown();
    client.join();
    surrogate.shutdown();
    surrogate.join();
    println!("\nat-most-once held: no request executed twice.");
}
