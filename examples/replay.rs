//! Record, replay, and sweep decision-pipeline traces.
//!
//! ```sh
//! # Record a javanote run (optionally under seeded chaos) to a trace:
//! cargo run --release --example replay -- record --app javanote --seed 7 --out target/replay/javanote.trace
//!
//! # Strictly replay it — exits non-zero on the first divergence:
//! cargo run --release --example replay -- replay target/replay/javanote.trace
//!
//! # What-if sweep: re-decide the recorded run under 4 policy variants
//! # in parallel and emit BENCH_replay.json:
//! cargo run --release --example replay -- sweep target/replay/javanote.trace --out BENCH_replay.json
//! ```

use std::process::exit;
use std::time::Duration;

use aide::apps::{biomer, dia, javanote, tracer, voxel, Scale};
use aide::core::{Platform, PlatformConfig};
use aide::replay::{
    default_variants, load, record_platform_run, replay, save, sweep, verify_chaos_draws,
};
use aide::rpc::ChaosSchedule;
use aide::telemetry::render_timeline;

fn usage() -> ! {
    eprintln!("usage: replay record [--app NAME] [--heap BYTES] [--seed N] [--out PATH]");
    eprintln!("       replay replay PATH");
    eprintln!("       replay sweep PATH [--out PATH]");
    eprintln!();
    eprintln!("apps: javanote (default), dia, tracer, voxel, biomer");
    exit(2)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| args.get(i + 1).unwrap_or_else(|| usage()).clone())
}

fn hostile_lossless(seed: u64) -> ChaosSchedule {
    let mut s = ChaosSchedule::seeded(seed);
    s.delay = 0.10;
    s.max_delay = Duration::from_millis(2);
    s.duplicate = 0.08;
    s.reorder = 0.08;
    s
}

fn record(args: &[String]) {
    let app = flag(args, "--app").unwrap_or_else(|| "javanote".into());
    let heap: u64 = flag(args, "--heap")
        .map(|h| h.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3 << 20);
    let out = flag(args, "--out").unwrap_or_else(|| format!("target/replay/{app}.trace"));

    let program = match app.as_str() {
        "javanote" => javanote(Scale(0.5)).program,
        "dia" => dia(Scale(0.5)).program,
        "tracer" => tracer(Scale(0.5)).program,
        "voxel" => voxel(Scale(0.5)).program,
        "biomer" => biomer(Scale(0.5)).program,
        other => {
            eprintln!("unknown app '{other}'");
            usage()
        }
    };

    let mut cfg = PlatformConfig::prototype(heap);
    if let Some(seed) = flag(args, "--seed") {
        let seed: u64 = seed.parse().unwrap_or_else(|_| usage());
        cfg.chaos = Some(hostile_lossless(seed));
        println!("chaos: lossless-hostile schedule, seed {seed}");
    }

    let (report, trace) = record_platform_run(Platform::new(program, cfg), &app);
    match &report.outcome {
        Ok(_) => println!("run completed; {} offloads", report.offloads.len()),
        Err(e) => println!("run ended with {e} (trace still recorded)"),
    }
    println!(
        "captured {} inputs ({} decisions), {} baseline timeline events",
        trace.inputs.len(),
        trace.trigger_count(),
        trace.baseline.len()
    );
    if let Err(e) = save(&trace, &out) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    println!("trace written to {out}");
    println!("replay with: cargo run --release --example replay -- replay {out}");
}

fn replay_cmd(path: &str) {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            exit(1);
        }
    };
    println!(
        "trace: app '{}', {} inputs, {} baseline events",
        trace.header.app,
        trace.inputs.len(),
        trace.baseline.len()
    );
    match verify_chaos_draws(&trace) {
        Ok(0) => {}
        Ok(n) => println!("chaos streams consistent ({n} draws verified)"),
        Err(e) => {
            eprintln!("chaos stream verification failed: {e}");
            exit(1);
        }
    }
    match replay(&trace, None) {
        Ok(outcome) => {
            assert_eq!(outcome.timeline, trace.baseline);
            println!(
                "replay OK: {} inputs consumed, timeline bit-identical ({} events)",
                outcome.events_consumed,
                outcome.timeline.len()
            );
            print!("{}", render_timeline(&outcome.timeline));
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}

fn sweep_cmd(path: &str, args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| "BENCH_replay.json".into());
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            exit(1);
        }
    };
    let variants = default_variants(&trace);
    println!(
        "sweeping '{}' under {} variants in parallel...",
        trace.header.app,
        variants.len()
    );
    let report = match sweep(&trace, &variants) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            exit(1);
        }
    };
    println!(
        "baseline: {} epochs, {} offloads, {} B offloaded",
        report.baseline.epochs, report.baseline.offloads, report.baseline.offloaded_bytes
    );
    for v in &report.variants {
        println!(
            "  {:<20} offloads {:>2}  declines {:>2}  skips {:>2}  {:>9} B  agree {:>5.1}%  win {:>5.1}%  regret {} B",
            v.name,
            v.offloads,
            v.declines,
            v.skips,
            v.offloaded_bytes,
            v.agreement_with_baseline * 100.0,
            v.win_fraction * 100.0,
            v.regret_bytes
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("failed to write {out}: {e}");
        exit(1);
    }
    println!("report written to {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("replay") => match args.get(1) {
            Some(path) if !path.starts_with("--") => replay_cmd(path),
            _ => usage(),
        },
        Some("sweep") => match args.get(1) {
            Some(path) if !path.starts_with("--") => sweep_cmd(path, &args[2..]),
            _ => usage(),
        },
        _ => usage(),
    }
}
