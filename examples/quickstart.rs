//! Quickstart: build a tiny application, run it on the AIDE distributed
//! platform, and watch it get rescued from an out-of-memory death by
//! transparent offloading.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use aide::core::{Platform, PlatformConfig};
use aide::vm::{MethodDef, MethodId, NativeKind, Op, Program, ProgramBuilder, Reg, VmError};

/// A miniature "photo viewer": a natively implemented screen (pinned to
/// the client) plus a gallery that loads large image buffers.
fn photo_viewer(images: u32, image_bytes: u32) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let screen = b.add_native_class("Screen"); // framebuffer: stays on-device
    let gallery = b.add_class("Gallery");
    let image = b.add_array_class("ImageBuffer");

    let blit = b.add_method(
        screen,
        MethodDef::new(
            "blit",
            vec![
                Op::Read {
                    obj: Reg(0),
                    bytes: 1_024, // thumbnail row
                },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 500,
                    arg_bytes: 1_024,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    // Gallery::load — decode an image into memory and keep it.
    let mut load = Vec::new();
    for i in 0..images {
        load.push(Op::New {
            class: image,
            scalar_bytes: image_bytes,
            ref_slots: 0,
            dst: Reg(1),
        });
        load.push(Op::PutSlot {
            slot: i as u16,
            src: Reg(1),
        });
        load.push(Op::Work { micros: 300 });
    }
    let load = b.add_method(gallery, MethodDef::new("load", load));

    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: screen,
                    scalar_bytes: 2_000,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::PutSlot {
                    slot: 0,
                    src: Reg(0),
                },
                Op::New {
                    class: gallery,
                    scalar_bytes: 500,
                    ref_slots: images as u16,
                    dst: Reg(1),
                },
                Op::PutSlot {
                    slot: 1,
                    src: Reg(1),
                },
                Op::Call {
                    obj: Reg(1),
                    class: gallery,
                    method: load,
                    arg_bytes: 16,
                    ret_bytes: 0,
                    args: vec![],
                },
                // Browse: blit thumbnails from the first image.
                Op::Repeat {
                    n: 50,
                    body: vec![
                        Op::GetSlot {
                            slot: 0,
                            dst: Reg(2),
                        },
                        Op::GetSlotOf {
                            obj: Reg(1),
                            slot: 0,
                            dst: Reg(3),
                        },
                        Op::Call {
                            obj: Reg(2),
                            class: screen,
                            method: blit,
                            arg_bytes: 8,
                            ret_bytes: 0,
                            args: vec![Reg(3)],
                        },
                    ],
                },
            ],
        ),
    );
    Arc::new(b.build(main, MethodId(0), 64, 4).expect("valid program"))
}

fn main() {
    // 60 images x 20 KB ≈ 1.2 MB of gallery in a 640 KB device heap.
    let program = photo_viewer(60, 20_000);

    println!("1) running on the device alone (no platform) ...");
    let mut plain = PlatformConfig::prototype(640 << 10);
    plain.monitoring = false;
    let report = Platform::new(program.clone(), plain).run();
    match report.outcome {
        Err(VmError::OutOfMemory { .. }) => println!("   -> out of memory, as expected\n"),
        other => panic!("expected an OOM failure, got {other:?}"),
    }

    println!("2) running on the AIDE distributed platform ...");
    let report = Platform::new(program, PlatformConfig::prototype(640 << 10)).run();
    report
        .outcome
        .as_ref()
        .expect("the platform rescues the application");
    let offload = &report.offloads[0];
    println!("   -> completed!");
    println!(
        "   offloaded {} objects ({} KB) to the surrogate in {:?}",
        offload.outcome.objects_moved,
        offload.outcome.bytes_moved / 1024,
        offload.partition_elapsed
    );
    println!(
        "   total time {:.3}s = client {:.3}s + surrogate {:.3}s + network {:.3}s",
        report.total_seconds(),
        report.client_cpu_seconds,
        report.surrogate_cpu_seconds,
        report.comm_seconds
    );
    println!(
        "   {} RPC requests served by the surrogate, {} remote interactions",
        report.surrogate_requests_served, report.remote_stats.remote_interactions
    );
}
