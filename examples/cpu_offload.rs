//! CPU offloading: run a compute-bound "speech recognizer" front-end under
//! processing constraints and watch the platform move the recognizer to a
//! 3.5x-faster surrogate — but only when it is actually beneficial.
//!
//! Demonstrates the paper's §5.2 pipeline: periodic re-evaluation, the
//! beneficial-offloading gate, and the stateless-native enhancement.
//!
//! ```sh
//! cargo run --release --example cpu_offload
//! ```

use std::sync::Arc;

use aide::core::{EvaluationMode, PolicyKind};
use aide::emu::{record_program, Emulator, EmulatorConfig};
use aide::vm::{MethodDef, MethodId, NativeKind, Op, Program, ProgramBuilder, Reg};

/// A voice-notes app: a natively implemented microphone/UI layer plus a
/// recognizer pipeline that leans on stateless math natives (FFTs).
fn voice_notes(utterances: u32, chatty: bool) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let mic = b.add_native_class("Microphone");
    let ui = b.add_native_class("NotesUi");
    let recognizer = b.add_class("Recognizer");
    let acoustic = b.add_class("AcousticModel");

    let capture = b.add_method(
        mic,
        MethodDef::new(
            "capture",
            vec![
                Op::Work { micros: 20_000 },
                Op::Native {
                    kind: NativeKind::UiToolkit,
                    work_micros: 5_000,
                    arg_bytes: 4_096,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let show = b.add_method(
        ui,
        MethodDef::new(
            "show",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 3_000,
                arg_bytes: 256,
                ret_bytes: 0,
            }],
        ),
    );
    let score = b.add_method(
        acoustic,
        MethodDef::new(
            "score",
            vec![
                Op::Work { micros: 60_000 },
                // FFT kernels: stateless math natives.
                Op::Repeat {
                    n: 40,
                    body: vec![Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 200,
                        arg_bytes: 16,
                        ret_bytes: 8,
                    }],
                },
            ],
        ),
    );
    let mut rec_body = vec![
        Op::Work { micros: 120_000 },
        // Arguments arrive in the callee's lowest registers: r0 = acoustic
        // model, r1 = UI handle.
        Op::Call {
            obj: Reg(0),
            class: acoustic,
            method: score,
            arg_bytes: 64,
            ret_bytes: 32,
            args: vec![],
        },
    ];
    if chatty {
        // A chatty variant: per-frame UI callbacks with fat payloads make
        // offloading unprofitable — the gate must refuse.
        rec_body.push(Op::Repeat {
            n: 100,
            body: vec![Op::Call {
                obj: Reg(1),
                class: ui,
                method: show,
                arg_bytes: 2_048,
                ret_bytes: 2_048,
                args: vec![],
            }],
        });
    }
    let recognize = b.add_method(recognizer, MethodDef::new("recognize", rec_body));

    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: mic,
                    scalar_bytes: 1_000,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::New {
                    class: acoustic,
                    scalar_bytes: 200_000,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::New {
                    class: ui,
                    scalar_bytes: 2_000,
                    ref_slots: 0,
                    dst: Reg(2),
                },
                Op::New {
                    class: recognizer,
                    scalar_bytes: 50_000,
                    ref_slots: 0,
                    dst: Reg(3),
                },
                Op::Repeat {
                    n: utterances,
                    body: vec![
                        Op::Call {
                            obj: Reg(0),
                            class: mic,
                            method: capture,
                            arg_bytes: 16,
                            ret_bytes: 4_096,
                            args: vec![],
                        },
                        Op::Call {
                            obj: Reg(3),
                            class: recognizer,
                            method: recognize,
                            arg_bytes: 4_096,
                            ret_bytes: 128,
                            args: vec![Reg(1), Reg(2)],
                        },
                        Op::Call {
                            obj: Reg(2),
                            class: ui,
                            method: show,
                            arg_bytes: 128,
                            ret_bytes: 0,
                            args: vec![],
                        },
                    ],
                },
            ],
        ),
    );
    Arc::new(b.build(main, MethodId(0), 64, 8).expect("valid program"))
}

fn main() {
    let cfg = |natives: bool| {
        let mut cfg = EmulatorConfig::paper_cpu(16 << 20, 2_000_000.0);
        cfg.policy = PolicyKind::Cpu { margin: 0.0 };
        cfg.evaluation = EvaluationMode::Periodic {
            every_micros: 2_000_000.0,
        };
        cfg.stateless_natives_local = natives;
        cfg
    };

    println!("-- compute-bound recognizer (low UI interaction) --");
    let trace = record_program("voice-notes", voice_notes(400, false), 64 << 20)
        .expect("recording succeeds");
    let plain = Emulator::new(cfg(false)).replay(&trace);
    let enhanced = Emulator::new(cfg(true)).replay(&trace);
    println!("client only:          {:.1}s", plain.baseline_seconds);
    println!(
        "offloaded:            {:.1}s ({:+.1}%), {} math natives bounced home",
        plain.total_seconds(),
        plain.overhead_fraction() * 100.0,
        plain.remote.remote_native_calls
    );
    println!(
        "offloaded + natives:  {:.1}s ({:+.1}%), {} bounces",
        enhanced.total_seconds(),
        enhanced.overhead_fraction() * 100.0,
        enhanced.remote.remote_native_calls
    );
    assert!(enhanced.total_seconds() < plain.total_seconds());

    println!("\n-- chatty recognizer (per-frame UI callbacks) --");
    let trace = record_program("voice-notes-chatty", voice_notes(400, true), 64 << 20)
        .expect("recording succeeds");
    let report = Emulator::new(cfg(true)).replay(&trace);
    match report.offloads.first() {
        Some(o) => {
            // The gate did not refuse outright — it found a *partial*
            // offload: the chatty Recognizer stays home, only the quiet
            // AcousticModel leaves. The result must still be beneficial.
            println!(
                "partial offload: {} graph nodes moved, {:.1}s vs {:.1}s local ({:+.1}%)",
                o.nodes_offloaded,
                report.total_seconds(),
                report.baseline_seconds,
                report.overhead_fraction() * 100.0
            );
            assert!(
                report.total_seconds() < report.baseline_seconds,
                "the gate only accepts beneficial partitionings"
            );
        }
        None => println!(
            "the beneficial-offloading gate refused: staying local at {:.1}s",
            report.total_seconds()
        ),
    }
}
