//! Multi-surrogate offloading: when the nearest surrogate cannot absorb
//! everything, the platform spills to the next one (paper §2: "If the
//! necessary resources for a client are not available at the closest
//! surrogate, multiple surrogates could be used by the client").
//!
//! ```sh
//! cargo run --release --example multi_surrogate
//! ```

use aide::apps::{javanote, Scale};
use aide::core::TriggerConfig;
use aide::emu::{record_program, MultiSurrogateConfig, MultiSurrogateEmulator, SurrogateSpec};
use aide::graph::CommParams;

fn main() {
    // Record a mid-size JavaNote session.
    let app = javanote(Scale(0.5));
    let trace = record_program(app.name, app.program, 64 << 20).expect("recording succeeds");
    println!(
        "recorded {}: {} events, {:.1}s of work\n",
        trace.app,
        trace.len(),
        trace.total_work_seconds()
    );

    // A room full of devices: a nearby meeting-room server with a small
    // guest allowance, a slower desktop further away, and a big machine
    // down the hall.
    let fleet = vec![
        SurrogateSpec {
            name: "meeting-room-server".into(),
            speed: 3.5,
            comm: CommParams::new(11.0e6, 2.4e-3), // the paper's WaveLAN
            heap: 1 << 20,                         // ...but only 1 MB for guests
        },
        SurrogateSpec {
            name: "colleague-desktop".into(),
            speed: 2.0,
            comm: CommParams::new(11.0e6, 4.0e-3),
            heap: 2 << 20,
        },
        SurrogateSpec {
            name: "hallway-workstation".into(),
            speed: 5.0,
            comm: CommParams::new(11.0e6, 8.0e-3),
            heap: 64 << 20,
        },
    ];

    let report = MultiSurrogateEmulator::new(MultiSurrogateConfig {
        client_heap: 2 << 20, // a 2 MB PDA heap for a ~3.5 MB document
        surrogates: fleet,
        trigger: TriggerConfig::default(),
        min_free_fraction: 0.20,
        handoff: None,
    })
    .replay(&trace);

    assert!(report.completed, "the fleet absorbs the document");
    println!(
        "completed in {:.1}s (client-only baseline {:.1}s)",
        report.total_seconds(),
        report.baseline_seconds
    );
    println!(
        "client CPU {:.1}s, offload transfers {:.2}s\n",
        report.client_cpu_seconds, report.transfer_seconds
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>8}",
        "surrogate", "cpu", "comm", "hosted", "classes"
    );
    for s in &report.surrogates {
        println!(
            "{:<22} {:>9.2}s {:>9.2}s {:>10}KB {:>8}",
            s.name,
            s.cpu_seconds,
            s.comm_seconds,
            s.bytes_hosted / 1024,
            s.classes_hosted
        );
    }
    println!(
        "\n{} of {} surrogates ended up hosting client data",
        report.surrogates_used(),
        report.surrogates.len()
    );
}
