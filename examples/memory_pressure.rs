//! Memory pressure up close: watch the trigger state machine, the
//! candidate generation, and the policy decision as a document editor
//! outgrows its heap — the paper's JavaNote scenario, narrated.
//!
//! ```sh
//! cargo run --release --example memory_pressure
//! ```

use aide::apps::{javanote, Scale};
use aide::core::{Platform, PlatformConfig};
use aide::graph::{to_dot, Side};
use aide::vm::VmError;

fn main() {
    let scale = Scale(0.5);
    let heap = 3 << 20; // half-scale JavaNote in a 3 MB heap

    println!("JavaNote at 50% scale, {} MB heap", heap >> 20);
    println!("document grows as paragraphs load; the editor widgets are natively");
    println!("implemented and must stay on the device.\n");

    // Without the platform.
    let mut plain = PlatformConfig::prototype(heap);
    plain.monitoring = false;
    match Platform::new(javanote(scale).program, plain).run().outcome {
        Err(VmError::OutOfMemory {
            requested, free, ..
        }) => println!("without AIDE: OutOfMemory (needed {requested} B, only {free} B free)"),
        other => panic!("expected OOM, got {other:?}"),
    }

    // With the platform.
    let report = Platform::new(javanote(scale).program, PlatformConfig::prototype(heap)).run();
    report.outcome.as_ref().expect("rescued");
    println!("with AIDE:    completed\n");

    let event = &report.offloads[0];
    println!(
        "trigger fired at client GC cycle {} (three successive cycles under 5% free)",
        event.at_gc_cycle
    );
    println!(
        "execution graph: {} classes, {} edges ({} candidate partitionings evaluated in {:?})",
        event.graph.node_count(),
        event.graph.edge_count(),
        event.candidates_evaluated,
        event.partition_elapsed
    );

    // Who stayed, who left?
    let stayed: Vec<&str> = event
        .partitioning
        .nodes_on(Side::Client)
        .map(|n| event.graph.node(n).label.as_str())
        .collect();
    println!("\nclasses kept on the device ({}):", stayed.len());
    for name in &stayed {
        println!("  {name}");
    }
    println!(
        "\n...and {} classes offloaded, carrying {} KB ({:.0}% of tracked memory)",
        event.partitioning.offloaded_count(),
        event.outcome.bytes_moved / 1024,
        event.offloaded_memory_fraction * 100.0
    );
    println!(
        "historical cut traffic: {} interactions, {} bytes",
        event.cut_interactions, event.cut_bytes
    );

    // Export the partitioned graph (Figure 5b style).
    let dot = to_dot(&event.graph, Some(&event.partitioning));
    let path = "target/memory_pressure_graph.dot";
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(path, dot).expect("write dot");
    println!("\npartitioned execution graph written to {path}");
    println!(
        "totals: {:.2}s on-device, {:.2}s on the surrogate, {:.2}s on the network",
        report.client_cpu_seconds, report.surrogate_cpu_seconds, report.comm_seconds
    );
}
