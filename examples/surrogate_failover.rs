//! Surrogate failover, end to end over real TCP daemons: a document store
//! overflows its heap and is offloaded to the nearest surrogate; that
//! surrogate crashes mid-session; the platform reinstates the surviving
//! documents locally, keeps the application running, and re-offloads to
//! the standby surrogate when memory pressure returns.
//!
//! The paper (§8) leaves "recovery from surrogate failure" as future work;
//! this example shows the shape such recovery takes on the reproduction.
//!
//! ```sh
//! cargo run --release --example surrogate_failover
//! ```

use std::sync::Arc;
use std::time::Duration;

use aide::core::{BackoffConfig, FailoverConfig, Platform, PlatformConfig};
use aide::surrogate::{DaemonConfig, RegistryConfig, SurrogateDaemon, SurrogateRegistry};
use aide::vm::{GcConfig, MethodDef, MethodId, Op, Program, ProgramBuilder, Reg};

const DOC_BYTES: u32 = 4_000;
const HEAP: u64 = 256 * 1024;

/// A document store that loads 70 ~4 KB documents (overflowing a 256 KB
/// client heap), drops the first 50, re-reads the survivors, then loads 40
/// more — enough churn to offload, survive a surrogate crash, and offload
/// again.
fn doc_store() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");

    let mut ops = Vec::new();
    let new_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot { slot, src: Reg(1) });
        ops.push(Op::Work { micros: 20 });
    };
    let read_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::GetSlot { slot, dst: Reg(2) });
        ops.push(Op::Read {
            obj: Reg(2),
            bytes: 64,
        });
    };

    for i in 0..70 {
        new_doc(&mut ops, i);
        if i % 8 == 0 {
            read_doc(&mut ops, i);
        }
    }
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..50 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    for i in 70..80 {
        new_doc(&mut ops, i);
    }
    for i in 55..60 {
        read_doc(&mut ops, i);
    }
    for i in 80..120 {
        new_doc(&mut ops, i);
    }
    for i in [55, 60, 75, 90, 118] {
        read_doc(&mut ops, i);
    }

    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 120).expect("valid program"))
}

fn main() {
    let program = doc_store();

    // Two surrogate daemons on localhost. The first is rigged to crash
    // after serving the initial offload and one GC exchange.
    let mut doomed = DaemonConfig::new("porch-pc", program.clone());
    doomed.fail_after_requests = Some(2);
    let d1 = SurrogateDaemon::start(doomed).expect("start porch-pc");
    let d2 = SurrogateDaemon::start(DaemonConfig::new("hallway-server", program.clone()))
        .expect("start hallway-server");
    println!(
        "surrogate porch-pc        listening on {} (rigged to crash)",
        d1.local_addr()
    );
    println!("surrogate hallway-server  listening on {}", d2.local_addr());

    // The client's registry. Daemons would normally be found over the UDP
    // beacon; static registration is the test-friendly fallback.
    let registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
    registry.add_static("porch-pc", d1.local_addr(), 64 << 20);
    registry.add_static("hallway-server", d2.local_addr(), 64 << 20);
    registry.probe_all();
    for info in registry.ranked() {
        println!(
            "probed {:<16} rtt {:?} capacity {} MiB",
            info.name,
            info.rtt.expect("reachable"),
            info.capacity_bytes >> 20
        );
    }
    // Loopback RTTs are near-identical noise; re-register to pin the
    // acquisition order (porch-pc first) so the crash narrative is
    // deterministic.
    registry.add_static("porch-pc", d1.local_addr(), 64 << 20);
    registry.add_static("hallway-server", d2.local_addr(), 64 << 20);

    let mut cfg = PlatformConfig::prototype(HEAP);
    cfg.gc = GcConfig {
        trigger_alloc_count: 8,
        trigger_alloc_bytes: 64 * 1024,
        cost_micros_per_object: 0.05,
    };
    let failover_cfg = FailoverConfig {
        heartbeat_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        backoff: BackoffConfig {
            base: Duration::ZERO,
            factor: 2.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 1,
        },
    };

    println!(
        "\nrunning the document store on a {} KB client heap...\n",
        HEAP >> 10
    );
    let report = Platform::with_surrogates(program, cfg, registry.clone())
        .with_failover_config(failover_cfg)
        .run();

    match &report.outcome {
        Ok(_) => println!("application completed despite the crash"),
        Err(e) => println!("application failed: {e}"),
    }
    for (i, event) in report.offloads.iter().enumerate() {
        println!(
            "offload #{}: {} objects, {} bytes moved",
            i + 1,
            event.outcome.objects_moved,
            event.outcome.bytes_moved
        );
    }
    if let Some(f) = &report.failover {
        println!("failovers:           {}", f.failovers);
        println!(
            "objects reinstated:  {} ({} bytes)",
            f.reinstated_objects, f.reinstated_bytes
        );
        println!("objects lost:        {}", f.objects_lost);
        println!("re-offloads:         {}", f.reoffloads);
        println!("surrogates used:     {}", f.surrogates_used.join(" -> "));
        for (i, micros) in f.failover_durations_micros.iter().enumerate() {
            println!(
                "recovery #{}:         {:.3} ms (link death to reinstatement)",
                i + 1,
                *micros as f64 / 1_000.0
            );
        }
    }
    println!("dead surrogates:     {}", registry.dead_names().join(", "));

    // The flight recorder explains every decision the run took: trigger,
    // candidates, the winner's policy score, measured migration durations,
    // the link death, and the failover.
    println!("\nflight-recorder timeline:");
    print!("{}", report.timeline());

    // Scrape the surviving daemon's Prometheus-style STATS exposition over
    // its RPC port — the same scrape an external observer would perform.
    let stats = registry
        .scrape_stats("hallway-server")
        .expect("survivor answers STATS");
    println!("\nSTATS scrape of hallway-server (excerpt):");
    for line in stats.lines().filter(|l| {
        l.starts_with("aide_rpc_requests_total")
            || l.starts_with("aide_rpc_request_latency_micros_count")
            || l.starts_with("aide_rpc_request_latency_micros_sum")
            || l.starts_with("aide_surrogate_sessions_total")
            || l.starts_with("aide_failovers_total")
            || l.starts_with("aide_offloads_total")
    }) {
        println!("  {line}");
    }

    d1.shutdown();
    d2.shutdown();
}
