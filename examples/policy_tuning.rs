//! Policy tuning: record one execution of an application, then replay the
//! trace under the paper's full policy grid to find the best triggering
//! and partitioning parameters — the record-once / replay-many workflow
//! the emulator exists for (paper §4, Figure 7).
//!
//! ```sh
//! cargo run --release --example policy_tuning
//! ```

use aide::apps::{dia, Scale};
use aide::emu::{
    best_point, record_program, sweep_memory_policies, Emulator, EmulatorConfig, PolicyGrid,
};

fn main() {
    // Record Dia once on an unconstrained "PC".
    let app = dia(Scale(0.35));
    let trace = record_program(app.name, app.program, 64 << 20).expect("recording succeeds");
    println!(
        "recorded {}: {} events, {} interactions, {:.1}s of work",
        trace.app,
        trace.len(),
        trace.interaction_count(),
        trace.total_work_seconds()
    );

    // Serialize/deserialize: traces are plain JSON, so they can be stored
    // and replayed later (or on another machine).
    let json = trace.to_json().expect("serializes");
    let trace = aide::emu::Trace::from_json(&json).expect("deserializes");
    println!("trace serialized to {} KB of JSON", json.len() / 1024);

    // Replay under the initial policy at a constrained heap.
    let heap = 2 << 20;
    let initial = Emulator::new(EmulatorConfig::paper_memory(heap)).replay(&trace);
    println!(
        "\ninitial policy (5% trigger, x3, free>=20%): {:.1}s total, {:.1}% overhead",
        initial.total_seconds(),
        initial.overhead_fraction() * 100.0
    );

    // Sweep the full grid.
    let grid = PolicyGrid::default();
    let points = sweep_memory_policies(&trace, EmulatorConfig::paper_memory(heap), &grid);
    let completed = points.iter().filter(|p| p.report.completed).count();
    println!(
        "swept {} policy combinations ({} completed)",
        points.len(),
        completed
    );

    let best = best_point(&points).expect("some policy completes");
    println!(
        "best policy: {} -> {:.1}s total, {:.1}% overhead",
        best.params,
        best.report.total_seconds(),
        best.report.overhead_fraction() * 100.0
    );

    // Show the spread: the paper's lesson is that policy choice matters
    // and the best parameters are application-specific.
    let mut overheads: Vec<(f64, String)> = points
        .iter()
        .filter(|p| p.report.completed && p.report.offloaded())
        .map(|p| (p.report.overhead_fraction(), p.params.to_string()))
        .collect();
    overheads.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("\noverhead distribution across the grid:");
    for (oh, params) in overheads.iter().take(3) {
        println!("  {:>6.1}%  {params}", oh * 100.0);
    }
    println!("   ...");
    for (oh, params) in overheads.iter().rev().take(3).rev() {
        println!("  {:>6.1}%  {params}", oh * 100.0);
    }
}
