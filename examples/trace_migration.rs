//! Trace a migration end to end: run a memory-pressure rescue over the
//! real TCP multiplexer with a mildly hostile link, then
//!
//! * print the critical-path breakdown of every committed migration
//!   (where did the latency go: serialize, wire, retries, remote
//!   instantiate, commit), and
//! * write the whole span forest as Chrome trace-event JSON, ready to
//!   load in Perfetto.
//!
//! ```sh
//! cargo run --release --example trace_migration
//! ```
//!
//! Then open <https://ui.perfetto.dev>, press "Open trace file", and pick
//! `target/trace/migration.trace.json` — the client and surrogate appear
//! as separate process lanes, with the surrogate's `rpc.serve` slices
//! nested (causally) under the client's migration span.

use std::time::Duration;

use aide::apps::{javanote, Scale};
use aide::core::{Platform, PlatformConfig, TransportKind};
use aide::rpc::ChaosSchedule;
use aide::trace::{chrome_trace, critical_path, names};

fn main() {
    // A scaled-down JavaNote in a heap too small for its document: the
    // platform must trigger, partition, and migrate over real TCP.
    let mut cfg = PlatformConfig::prototype(320 << 10);
    cfg.transport = TransportKind::Tcp;
    let mut chaos = ChaosSchedule::seeded(7);
    chaos.drop = 0.05;
    chaos.delay = 0.10;
    chaos.max_delay = Duration::from_millis(3);
    cfg.chaos = Some(chaos);

    aide::trace::drain(); // start from an empty span store
    let report = Platform::new(javanote(Scale(0.05)).program, cfg).run();
    report.outcome.as_ref().expect("the rescue completes");
    assert!(report.offloaded(), "the rescue must migrate");

    let spans = aide::trace::drain();
    println!("spans recorded: {}", spans.len());
    let serves = spans.iter().filter(|s| s.name == names::RPC_SERVE).count();
    let retries = spans
        .iter()
        .filter(|s| s.name == names::RPC_BACKOFF)
        .count();
    println!("  surrogate serve spans: {serves}");
    println!("  backoff sleeps (chaos-induced): {retries}");

    println!("\ncritical path per committed migration (microseconds):");
    for b in critical_path(&spans) {
        println!("  migration {:#x}", b.trace_id);
        println!("    total         {:>8}", b.total_micros);
        println!("    serialize     {:>8}", b.serialize_micros);
        println!("    wire          {:>8}", b.wire_micros);
        println!("    retry+backoff {:>8}", b.retry_micros);
        println!("    instantiate   {:>8}", b.instantiate_micros);
        println!("    commit        {:>8}", b.commit_micros);
        println!("    unattributed  {:>8}", b.unattributed_micros);
    }

    let path = "target/trace/migration.trace.json";
    std::fs::create_dir_all("target/trace").expect("create target/trace");
    std::fs::write(path, chrome_trace(&spans)).expect("write trace");
    println!("\nwrote {path}");
    println!("open https://ui.perfetto.dev and load it to see the");
    println!("client and surrogate lanes of one causal tree.");
}
