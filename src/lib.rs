//! AIDE: an adaptive, transparently distributed platform for
//! resource-constrained devices — a Rust reproduction of the ICDCS 2002
//! paper "Towards a Distributed Platform for Resource-Constrained Devices".
//!
//! This umbrella crate re-exports the workspace's components:
//!
//! * [`vm`] — the managed runtime substrate (heap, GC, interpreter, hooks).
//! * [`graph`] — execution graphs, Stoer-Wagner, the modified-MINCUT
//!   heuristic, and partitioning policies.
//! * [`rpc`] — the transparent remote-execution substrate (wire codec,
//!   endpoints, distributed GC tables).
//! * [`core`] — the AIDE platform: monitoring, partitioning, offloading,
//!   and the two-VM prototype driver.
//! * [`emu`] — the trace-driven emulator and policy sweeps.
//! * [`apps`] — models of the paper's five evaluation applications.
//! * [`surrogate`] — the surrogate daemon, UDP-beacon discovery, the
//!   RTT-ranked registry, and failover onto standby surrogates.
//! * [`telemetry`] — platform-wide metrics, the decision flight recorder,
//!   and the JSON-lines / Prometheus-style exporters.
//! * [`replay`] — deterministic record/replay of the decision pipeline:
//!   versioned traces of every nondeterministic input, bit-identical
//!   timeline replay with strict divergence detection, and parallel
//!   what-if policy sweeps.
//! * [`trace`] — causal distributed tracing: span contexts propagated
//!   across the RPC wire, Chrome/Perfetto trace export, and per-migration
//!   critical-path latency attribution.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `EXPERIMENTS.md` for the paper-versus-measured results.
//!
//! # Examples
//!
//! ```
//! use aide::core::{Platform, PlatformConfig};
//! use aide::apps::{javanote, Scale};
//!
//! // A small JavaNote on an unconstrained platform.
//! let app = javanote(Scale(0.02));
//! let report = Platform::new(app.program, PlatformConfig::prototype(64 << 20)).run();
//! assert!(report.outcome.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aide_apps as apps;
pub use aide_core as core;
pub use aide_emu as emu;
pub use aide_graph as graph;
pub use aide_replay as replay;
pub use aide_rpc as rpc;
pub use aide_surrogate as surrogate;
pub use aide_telemetry as telemetry;
pub use aide_trace as trace;
pub use aide_vm as vm;
