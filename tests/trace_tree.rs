//! Causal-tracing integration: a migration driven through the full
//! platform must leave behind ONE connected span tree that crosses the
//! RPC seam — client-side decision/migration spans parenting
//! surrogate-side serve spans via the wire context — and the tree's
//! shape must be the same whatever transport carried the frames.
//!
//! The span collector is process-global, so these tests serialize on a
//! mutex and `drain()` the store at each boundary.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use aide::apps::{javanote, Scale};
use aide::core::{Platform, PlatformConfig, TransportKind};
use aide::emu::{record_program, Emulator, EmulatorConfig};
use aide::rpc::ChaosSchedule;
use aide::trace::{names, SpanRecord};

static GATE: Mutex<()> = Mutex::new(());

const TEST_SCALE: Scale = Scale(0.05);
const TEST_HEAP: u64 = 320 << 10;

/// Span names that describe the decision/migration pipeline itself
/// (transport- and timing-independent, unlike the RPC retry spans).
const LIVE_SHAPE: &[&str] = &[
    names::DECISION,
    names::TRIGGER_SAMPLE,
    names::PARTITION_EPOCH,
    names::MIGRATION,
    names::MIGRATE_SERIALIZE,
    names::MIGRATE_PREPARE,
    names::MIGRATE_COMMIT,
];

/// The coarser shape the trace-driven emulator stamps at virtual time
/// (it models the transfer as one block, not per-batch RPCs).
const EMU_SHAPE: &[&str] = &[
    names::DECISION,
    names::TRIGGER_SAMPLE,
    names::PARTITION_EPOCH,
    names::MIGRATION,
];

/// The committed-migration span, or a panic listing what was recorded.
fn committed_migration(spans: &[SpanRecord]) -> &SpanRecord {
    spans
        .iter()
        .find(|s| s.name == names::MIGRATION && s.arg("outcome") == Some("committed"))
        .unwrap_or_else(|| {
            let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            panic!("no committed migration span; recorded: {names:?}")
        })
}

/// Canonical shape string of the offloading decision's span tree,
/// restricted to `filter` names: `name(child,child,...)` with children
/// sorted, so two isomorphic trees render identically.
fn offload_shape(spans: &[SpanRecord], filter: &[&str]) -> String {
    let trace_id = committed_migration(spans).trace_id;
    let tree: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.trace_id == trace_id && filter.contains(&s.name.as_str()))
        .collect();
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for s in &tree {
        if let Some(p) = s.parent_id {
            children.entry(p).or_default().push(s);
        }
    }
    fn render(span: &SpanRecord, children: &HashMap<u64, Vec<&SpanRecord>>) -> String {
        let mut kids: Vec<String> = children
            .get(&span.span_id)
            .map(|c| c.iter().map(|k| render(k, children)).collect())
            .unwrap_or_default();
        kids.sort();
        format!("{}({})", span.name, kids.join(","))
    }
    let root = tree
        .iter()
        .find(|s| s.name == names::DECISION)
        .expect("the migration trace contains its decision span");
    render(root, &children)
}

/// Walks `span`'s parent chain; true if it passes through `ancestor`.
fn has_ancestor(span: &SpanRecord, ancestor: u64, by_id: &HashMap<u64, &SpanRecord>) -> bool {
    let mut cursor = span.parent_id;
    let mut hops = 0;
    while let Some(p) = cursor {
        if p == ancestor {
            return true;
        }
        cursor = by_id.get(&p).and_then(|s| s.parent_id);
        hops += 1;
        if hops > 64 {
            return false; // defensive: a cycle would be a bug elsewhere
        }
    }
    false
}

/// The acceptance scenario: a chaos-soaked migration over the real TCP
/// multiplexer produces one connected span tree spanning both devices.
#[test]
fn chaos_tcp_migration_yields_one_connected_cross_device_span_tree() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    aide::trace::drain();

    let mut cfg = PlatformConfig::prototype(TEST_HEAP);
    cfg.transport = TransportKind::Tcp;
    let mut chaos = ChaosSchedule::seeded(42);
    chaos.drop = 0.05;
    chaos.delay = 0.10;
    chaos.max_delay = Duration::from_millis(3);
    chaos.duplicate = 0.05;
    cfg.chaos = Some(chaos);
    let report = Platform::new(javanote(TEST_SCALE).program, cfg).run();
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    assert!(report.offloaded(), "the scaled JavaNote must offload");

    let spans = aide::trace::drain();
    let migration = committed_migration(&spans).clone();
    let tree: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.trace_id == migration.trace_id)
        .collect();
    let by_id: HashMap<u64, &SpanRecord> = tree.iter().map(|s| (s.span_id, *s)).collect();

    // Connected: exactly one root, and every parent pointer resolves.
    let roots: Vec<&&SpanRecord> = tree.iter().filter(|s| s.parent_id.is_none()).collect();
    assert_eq!(
        roots.len(),
        1,
        "one root in the migration trace, got {:?}",
        roots.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
    );
    for s in &tree {
        if let Some(p) = s.parent_id {
            assert!(
                by_id.contains_key(&p),
                "span {} dangles from a parent that was never recorded",
                s.name
            );
        }
    }

    // Cross-device: the tree holds spans from both Perfetto lanes.
    assert!(
        tree.iter().any(|s| s.track == "client"),
        "client-side spans"
    );
    assert!(
        tree.iter().any(|s| s.track == "surrogate"),
        "surrogate-side spans in the same trace (wire context propagated)"
    );

    // The surrogate's serve spans hang underneath the client's migration
    // span — the causal chain survives retries and chaos.
    let serves: Vec<&&SpanRecord> = tree.iter().filter(|s| s.name == names::RPC_SERVE).collect();
    assert!(!serves.is_empty(), "the migration performed remote calls");
    assert!(
        serves
            .iter()
            .all(|s| has_ancestor(s, migration.span_id, &by_id)),
        "every serve span descends from the migration span"
    );
}

/// Satellite 4: the decision/migration span tree has the same shape over
/// the in-memory channel, the TCP multiplexer, and the emulated link —
/// and the trace-driven emulator stamps an isomorphic (coarser) tree at
/// virtual time.
#[test]
fn span_trees_are_isomorphic_across_backends() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let program = javanote(TEST_SCALE).program;

    let mut shapes: Vec<(TransportKind, String, String)> = Vec::new();
    for transport in [
        TransportKind::InProcess,
        TransportKind::Tcp,
        TransportKind::Emulated,
    ] {
        aide::trace::drain();
        let mut cfg = PlatformConfig::prototype(TEST_HEAP);
        cfg.transport = transport;
        let report = Platform::new(program.clone(), cfg).run();
        assert!(
            report.outcome.is_ok(),
            "{transport:?}: {:?}",
            report.outcome
        );
        assert!(report.offloaded(), "{transport:?}: must offload");
        let spans = aide::trace::drain();

        // Every live backend crosses the seam: serve spans join the
        // migration trace regardless of what carried the frames.
        let migration = committed_migration(&spans);
        assert!(
            spans
                .iter()
                .any(|s| s.trace_id == migration.trace_id && s.name == names::RPC_SERVE),
            "{transport:?}: serve spans share the migration trace"
        );

        shapes.push((
            transport,
            offload_shape(&spans, LIVE_SHAPE),
            offload_shape(&spans, EMU_SHAPE),
        ));
    }
    let (_, reference, coarse_reference) = shapes[0].clone();
    for (transport, shape, coarse) in &shapes {
        assert_eq!(
            shape, &reference,
            "{transport:?}: decision span tree diverges from InProcess"
        );
        assert_eq!(coarse, &coarse_reference);
    }

    // The emulator replays the same recorded program and stamps the same
    // (coarse) decision tree at virtual time.
    let trace = record_program("javanote", program, 64 << 20).expect("recording succeeds");
    aide::trace::drain();
    let report = Emulator::new(EmulatorConfig::paper_memory(TEST_HEAP)).replay(&trace);
    assert!(report.completed, "emulated rescue completes");
    assert!(report.offloaded(), "emulated run offloads");
    let spans = aide::trace::drain();
    assert_eq!(
        offload_shape(&spans, EMU_SHAPE),
        coarse_reference,
        "emulator-stamped tree is isomorphic to the live decision tree"
    );
}
