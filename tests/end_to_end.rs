//! Cross-crate integration tests: the application models, the prototype
//! platform, and the trace-driven emulator working together at reduced
//! scale (fast enough for debug-mode CI).

use aide::apps::{all_apps, biomer, biomer_cpu, dia, javanote, tracer, voxel, Scale};
use aide::core::{Platform, PlatformConfig};
use aide::emu::{record_program, Emulator, EmulatorConfig};
use aide::vm::VmError;

const TEST_SCALE: Scale = Scale(0.05);

#[test]
fn all_five_apps_build_and_record() {
    for app in all_apps(TEST_SCALE) {
        let trace = record_program(app.name, app.program.clone(), 64 << 20)
            .unwrap_or_else(|e| panic!("{} failed to record: {e}", app.name));
        assert!(!trace.is_empty(), "{} produced no events", app.name);
        assert!(
            trace.total_work_seconds() > 0.0,
            "{} produced no work",
            app.name
        );
        assert!(trace.interaction_count() > 0);
        assert_eq!(trace.classes.len(), app.program.class_count());
    }
}

#[test]
fn javanote_has_the_table2_class_structure() {
    // Class count is scale-independent: 138 classes at every scale.
    let app = javanote(TEST_SCALE);
    assert_eq!(app.program.class_count(), 138);
    // The editor widget layer is natively implemented (client-pinned).
    for name in [
        "Editor",
        "MenuSystem",
        "StatusBar",
        "ScrollView",
        "FontMetrics",
    ] {
        let id = app.program.class_by_name(name).expect(name);
        assert!(app.program.class(id).unwrap().native_impl, "{name} pinned");
    }
    // The text model is offloadable.
    for name in ["Document", "TextBuffer", "Paragraph", "CharArray"] {
        let id = app.program.class_by_name(name).expect(name);
        assert!(!app.program.class(id).unwrap().native_impl, "{name} free");
    }
    // The character arrays are primitive arrays (array enhancement).
    let chars = app.program.class_by_name("CharArray").unwrap();
    assert!(app.program.class(chars).unwrap().is_primitive_array);
}

#[test]
fn scaled_javanote_oom_and_rescue_on_the_prototype() {
    // 5% scale: 17 paragraphs x 20 KB ≈ 340 KB of document in 320 KB.
    let heap = 320 << 10;
    let mut plain = PlatformConfig::prototype(heap);
    plain.monitoring = false;
    let report = Platform::new(javanote(TEST_SCALE).program, plain).run();
    assert!(
        matches!(report.outcome, Err(VmError::OutOfMemory { .. })),
        "without the platform the scaled JavaNote must die, got {:?}",
        report.outcome
    );

    let report = Platform::new(
        javanote(TEST_SCALE).program,
        PlatformConfig::prototype(heap),
    )
    .run();
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    assert!(report.offloaded());
    let event = &report.offloads[0];
    // Pinned widgets stay home in the selected partitioning.
    let editor = event.graph.node_by_label("Editor").expect("editor node");
    assert!(event.partitioning.is_client(editor));
    assert!(report.surrogate_requests_served > 0, "real RPC traffic");
}

#[test]
fn prototype_and_emulator_agree_on_the_oom_verdict() {
    // The emulator's live-byte accounting and the prototype's real heap
    // must agree about whether a configuration is viable.
    let heap = 320 << 10;
    let app = javanote(TEST_SCALE);
    let trace = record_program(app.name, app.program.clone(), 64 << 20).unwrap();

    let mut emu_cfg = EmulatorConfig::paper_memory(heap);
    emu_cfg.max_offloads = 0;
    let emu_report = Emulator::new(emu_cfg).replay(&trace);
    assert!(!emu_report.completed, "emulator predicts OOM");

    let emu_report = Emulator::new(EmulatorConfig::paper_memory(heap)).replay(&trace);
    assert!(emu_report.completed, "emulator predicts rescue");
    assert!(emu_report.offloaded());
}

#[test]
fn memory_apps_offload_under_the_paper_policy_at_scale() {
    for app in [javanote(TEST_SCALE), dia(TEST_SCALE), biomer(TEST_SCALE)] {
        let trace = record_program(app.name, app.program.clone(), 64 << 20).unwrap();
        // Scale the heap with the workload: 5% of 6 MB.
        let heap = (6 << 20) / 18;
        let report = Emulator::new(EmulatorConfig::paper_memory(heap)).replay(&trace);
        assert!(report.completed, "{} must complete", app.name);
        if report.offloaded() {
            assert!(
                report.overhead_fraction() >= 0.0,
                "{} overhead is a cost",
                app.name
            );
            assert!(report.comm_seconds > 0.0);
        }
    }
}

#[test]
fn cpu_apps_respect_the_beneficial_gate_at_scale() {
    let eval = 2_000_000.0;
    // Voxel and Tracer offload; their enhanced configs beat the initial.
    for app in [voxel(TEST_SCALE), tracer(TEST_SCALE)] {
        let trace = record_program(app.name, app.program.clone(), 64 << 20).unwrap();
        let initial = Emulator::new(EmulatorConfig::paper_cpu(16 << 20, eval)).replay(&trace);
        let mut cfg = EmulatorConfig::paper_cpu(16 << 20, eval);
        cfg.stateless_natives_local = true;
        cfg.array_object_granularity = true;
        let combined = Emulator::new(cfg).replay(&trace);
        assert!(initial.completed && combined.completed);
        if initial.offloaded() && combined.offloaded() {
            assert!(
                combined.total_seconds() <= initial.total_seconds() + 1e-9,
                "{}: enhancements must not hurt ({} vs {})",
                app.name,
                combined.total_seconds(),
                initial.total_seconds()
            );
            assert!(
                combined.remote.remote_native_calls <= initial.remote.remote_native_calls,
                "{}: stateless natives stop bouncing",
                app.name
            );
        }
    }
    // Biomer's coupling must make the gate careful: if it offloads at all,
    // the predicted-beneficial outcome must not be a catastrophe.
    let app = biomer_cpu(TEST_SCALE);
    let trace = record_program(app.name, app.program.clone(), 64 << 20).unwrap();
    let mut cfg = EmulatorConfig::paper_cpu(16 << 20, eval);
    cfg.stateless_natives_local = true;
    cfg.array_object_granularity = true;
    let report = Emulator::new(cfg).replay(&trace);
    assert!(report.completed);
}

#[test]
fn trace_files_round_trip_through_disk() {
    let app = dia(TEST_SCALE);
    let trace = record_program(app.name, app.program, 64 << 20).unwrap();
    let dir = std::env::temp_dir().join("aide-test-traces");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dia.json");
    std::fs::write(&path, trace.to_json().unwrap()).unwrap();
    let loaded = aide::emu::Trace::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(trace, loaded);

    // A replay of the loaded trace is byte-identical in outcome.
    let a = Emulator::new(EmulatorConfig::paper_memory(1 << 20)).replay(&trace);
    let b = Emulator::new(EmulatorConfig::paper_memory(1 << 20)).replay(&loaded);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.total_seconds(), b.total_seconds());
    assert_eq!(a.remote, b.remote);
    std::fs::remove_file(path).ok();
}

#[test]
fn replays_are_deterministic() {
    let app = voxel(TEST_SCALE);
    let trace = record_program(app.name, app.program.clone(), 64 << 20).unwrap();
    let cfg = EmulatorConfig::paper_cpu(16 << 20, 2_000_000.0);
    let a = Emulator::new(cfg.clone()).replay(&trace);
    let b = Emulator::new(cfg).replay(&trace);
    assert_eq!(a.total_seconds(), b.total_seconds());
    assert_eq!(a.offloads.len(), b.offloads.len());

    // Recording is deterministic too: two recordings of the same app are
    // identical event-for-event.
    let trace2 = record_program(app.name, app.program, 64 << 20).unwrap();
    assert_eq!(trace, trace2);
}

#[test]
fn monitoring_overhead_is_visible_but_bounded() {
    let app = javanote(TEST_SCALE);
    let mut off = PlatformConfig::prototype(64 << 20);
    off.monitoring = false;
    let t_off = Platform::new(app.program.clone(), off).run();

    let mut on = PlatformConfig::prototype(64 << 20);
    on.max_offloads = 0;
    on.monitor_event_micros = 16.5;
    let t_on = Platform::new(app.program, on).run();

    let (a, b) = (t_off.total_seconds(), t_on.total_seconds());
    assert!(b > a, "monitoring must cost something");
    assert!(b / a < 1.35, "but not more than ~35% ({})", b / a);
}
