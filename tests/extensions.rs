//! Tests of the paper's §8 future-work extensions: dynamic policy
//! selection, global placement (return migration), and multi-surrogate
//! offloading.

use std::collections::HashSet;
use std::sync::Arc;

use aide::apps::{biomer, javanote, Scale};
use aide::core::{Monitor, PolicySelector, TriggerConfig, WorkloadProfile};
use aide::emu::{
    record_program, MultiSurrogateConfig, MultiSurrogateEmulator, SurrogateSpec, TraceEvent,
};
use aide::graph::{CommParams, ResourceSnapshot};
use aide::vm::{Interaction, InteractionKind, RuntimeHooks};

const TEST_SCALE: Scale = Scale(0.05);

/// Replays a recorded trace into a fresh monitor (no placement) and
/// returns it for graph inspection.
fn monitor_for(app: aide::apps::App) -> Monitor {
    let trace = record_program(app.name, app.program, 64 << 20).unwrap();
    let program = Arc::new(trace.skeleton_program().unwrap());
    let monitor = Monitor::new(program, TriggerConfig::default(), HashSet::new());
    for event in &trace.events {
        match event {
            TraceEvent::Interaction {
                caller,
                callee,
                target,
                invocation,
                bytes,
            } => monitor.on_interaction(Interaction {
                caller: *caller,
                callee: *callee,
                target: *target,
                kind: if *invocation {
                    InteractionKind::Invocation
                } else {
                    InteractionKind::FieldAccess
                },
                bytes: *bytes,
                remote: false,
            }),
            TraceEvent::Alloc {
                class,
                object,
                bytes,
            } => monitor.on_alloc(*class, *object, *bytes),
            TraceEvent::Free {
                class,
                objects,
                bytes,
            } => monitor.on_free(*class, *objects, *bytes),
            TraceEvent::Work { class, micros } => monitor.on_work(*class, *micros),
            _ => {}
        }
    }
    monitor
}

#[test]
fn selector_recognizes_javanote_as_cold_bulk() {
    let monitor = monitor_for(javanote(TEST_SCALE));
    let (graph, _) = monitor.snapshot();
    let rec = PolicySelector::new().recommend(&graph, ResourceSnapshot::new(6 << 20, 3 << 20));
    assert_eq!(
        rec.profile,
        WorkloadProfile::ColdBulkData,
        "JavaNote's memory is concentrated in cold character arrays"
    );
    // The recommendation matches the paper's Figure 7 best for JavaNote.
    assert!((rec.trigger.low_free_fraction - 0.05).abs() < 1e-9);
    assert_eq!(rec.trigger.consecutive_reports, 3);
}

#[test]
fn selector_recognizes_biomer_as_hot() {
    let monitor = monitor_for(biomer(TEST_SCALE));
    let (graph, _) = monitor.snapshot();
    let rec = PolicySelector::new().recommend(&graph, ResourceSnapshot::new(6 << 20, 3 << 20));
    assert_eq!(
        rec.profile,
        WorkloadProfile::HotDiffuseData,
        "Biomer's model chatter makes its memory hot"
    );
    assert_eq!(rec.trigger.consecutive_reports, 1);
}

#[test]
fn multi_surrogate_fleet_rescues_a_spilling_workload() {
    let app = javanote(Scale(0.2));
    let trace = record_program(app.name, app.program, 64 << 20).unwrap();
    // Two surrogates, neither large enough alone would be fine too — here
    // the near one is deliberately tiny so the spill is exercised.
    let report = MultiSurrogateEmulator::new(MultiSurrogateConfig {
        client_heap: 700 << 10,
        surrogates: vec![
            SurrogateSpec {
                name: "near-small".into(),
                speed: 3.5,
                comm: CommParams::new(11.0e6, 2.4e-3),
                heap: 300 << 10,
            },
            SurrogateSpec {
                name: "far-big".into(),
                speed: 3.5,
                comm: CommParams::new(11.0e6, 6.0e-3),
                heap: 64 << 20,
            },
        ],
        trigger: TriggerConfig::default(),
        min_free_fraction: 0.20,
        handoff: None,
    })
    .replay(&trace);
    assert!(report.completed);
    assert!(report.surrogates_used() >= 1);
    // The near surrogate never exceeds its allowance.
    assert!(report.surrogates[0].bytes_hosted <= 300 << 10);
}

#[test]
fn multi_report_serializes() {
    let app = javanote(TEST_SCALE);
    let trace = record_program(app.name, app.program, 64 << 20).unwrap();
    let report = MultiSurrogateEmulator::new(MultiSurrogateConfig {
        client_heap: 64 << 20,
        surrogates: vec![SurrogateSpec {
            name: "s0".into(),
            speed: 3.5,
            comm: CommParams::WAVELAN,
            heap: 8 << 20,
        }],
        trigger: TriggerConfig::default(),
        min_free_fraction: 0.2,
        handoff: None,
    })
    .replay(&trace);
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"completed\":true"));
}
