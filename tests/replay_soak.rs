//! Record/replay soak: platform runs under seeded chaos, recorded through
//! the nondeterminism seams, must replay with zero divergences and a
//! bit-identical flight-recorder timeline — at every hostile seed.

use std::time::Duration;

use aide::apps::{javanote, Scale};
use aide::core::{Platform, PlatformConfig};
use aide::replay::{decode, record_platform_run, replay, to_binary, verify_chaos_draws};
use aide::rpc::ChaosSchedule;
use aide::telemetry::render_timeline;

/// Hostile weather without loss: duplicates, reordering, and delay keep
/// the chaos RNG busy on every frame while the workload still finishes
/// quickly (replay fidelity does not depend on which faults fire).
fn hostile_lossless(seed: u64) -> ChaosSchedule {
    let mut s = ChaosSchedule::seeded(seed);
    s.delay = 0.10;
    s.max_delay = Duration::from_millis(2);
    s.duplicate = 0.08;
    s.reorder = 0.08;
    s
}

#[test]
fn chaotic_platform_runs_replay_bit_identically_at_three_seeds() {
    for seed in [0xDEADu64, 0xBEEF, 41] {
        let mut cfg = PlatformConfig::prototype(3 << 20);
        cfg.chaos = Some(hostile_lossless(seed));
        let platform = Platform::new(javanote(Scale(0.5)).program, cfg);
        let (report, trace) = record_platform_run(platform, "javanote-chaos");
        report
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("seed {seed:#x}: chaotic run failed: {e}"));
        assert!(report.offloaded(), "seed {seed:#x}: the run must offload");
        assert!(
            trace.trigger_count() >= 1,
            "seed {seed:#x}: a decision is on tape"
        );

        // The recorded chaos draws are internally consistent xorshift64
        // streams...
        let draws = verify_chaos_draws(&trace)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: chaos stream inconsistent: {e}"));
        assert!(draws > 0, "seed {seed:#x}: chaos draws were recorded");

        // ...and the decision pipeline replays them to a bit-identical
        // timeline, with zero divergences, even after a binary round-trip.
        let outcome =
            replay(&trace, None).unwrap_or_else(|e| panic!("seed {seed:#x}: replay diverged: {e}"));
        assert_eq!(
            outcome.timeline, trace.baseline,
            "seed {seed:#x}: timeline must be bit-identical"
        );
        assert_eq!(
            render_timeline(&outcome.timeline),
            report.timeline(),
            "seed {seed:#x}: rendered timelines identical"
        );

        let decoded = decode(&to_binary(&trace))
            .unwrap_or_else(|e| panic!("seed {seed:#x}: binary round-trip failed: {e}"));
        let outcome = replay(&decoded, None)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: decoded replay diverged: {e}"));
        assert_eq!(outcome.timeline, trace.baseline);
    }
}
