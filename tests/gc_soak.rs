//! GC leak soak: cross-VM references driven through seeded hostile links
//! must always be reclaimed — by release, by lease expiry, or by epoch
//! fencing — and never double-unpinned.
//!
//! The workload exports client objects to a surrogate holder, then mixes
//! every hostile path the lease machinery defends against: releases that
//! chaos duplicates and reorders, deliberate resends of the same release
//! watermark, stale-epoch releases from a fenced-off session, releases
//! naming long-gone objects, renewal via ordinary stamped traffic, and
//! finally silence — leases running out with nobody left to release them.
//! After every seed both reference tables must be empty, every external
//! root pin must be gone, and the VM's unpin audit must show zero
//! unbalanced (double) unpins.

use std::sync::Arc;
use std::time::Duration;

use aide::core::{RefTables, VmDispatcher};
use aide::graph::CommParams;
use aide::rpc::{
    chaos_pair, ChaosSchedule, Endpoint, EndpointConfig, GcClock, Request, RetryPolicy,
};
use aide::vm::{
    ClassId, Machine, MethodDef, MethodId, ObjectId, ObjectRecord, Program, ProgramBuilder,
    VmConfig,
};

const DOCS: u64 = 8;
const TTL_MS: u64 = 200;

fn tiny_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let _doc = b.add_class("Doc");
    b.add_method(main, MethodDef::new("main", vec![]));
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        attempt_timeout: Duration::from_millis(100),
        base_backoff: Duration::from_millis(2),
        backoff_factor: 2.0,
        max_backoff: Duration::from_millis(50),
        jitter: 0.25,
        deadline: Duration::from_secs(30),
        seed: 0xC0FFEE,
    }
}

fn soak_endpoint_config() -> EndpointConfig {
    EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(100),
        retry: soak_retry(),
    }
}

struct Side {
    machine: Machine,
    tables: Arc<RefTables>,
    dispatcher: Arc<VmDispatcher>,
    endpoint: Arc<Endpoint>,
}

/// One full hostile-seed run of the lease workload.
fn run_seed(seed: u64) {
    let mut schedule = ChaosSchedule::hostile(seed);
    schedule.max_delay = Duration::from_millis(5);
    let (link, ct, st, _stats) = chaos_pair(CommParams::WAVELAN, schedule);

    let build = |session, kind_client: bool| {
        let machine = if kind_client {
            Machine::new(tiny_program(), VmConfig::client(1 << 20))
        } else {
            Machine::new(tiny_program(), VmConfig::surrogate(16 << 20))
        };
        let tables = Arc::new(RefTables::with_clock(Arc::new(GcClock::new())));
        tables.exports.set_ttl_ms(TTL_MS);
        let dispatcher = Arc::new(VmDispatcher::new(machine.clone(), tables.clone()));
        let endpoint = Endpoint::start(
            session,
            link.params,
            link.clock.clone(),
            dispatcher.clone(),
            soak_endpoint_config(),
        );
        tables.attach_to(&endpoint);
        Side {
            machine,
            tables,
            dispatcher,
            endpoint,
        }
    };
    let client = build(ct, true);
    let surrogate = build(st, false);

    // Phase A: the client exports DOCS objects; the surrogate records the
    // matching imports. Exports pin their objects against local GC.
    {
        let vm = client.machine.vm();
        let mut vm = vm.lock();
        for i in 0..DOCS {
            let id = ObjectId::client(i);
            vm.heap_mut()
                .insert(id, ObjectRecord::new(ClassId(1), 512, 1))
                .unwrap();
            if client.tables.exports.export(id) {
                vm.external_root_inc(id);
            }
            surrogate.tables.imports.import(id);
        }
        assert_eq!(vm.external_root_count(), DOCS as usize);
    }
    assert_eq!(client.tables.exports.len(), DOCS as usize);

    // Phase B: the surrogate drops the even half and releases it over the
    // chaotic link. Retries may duplicate the frame in flight; the
    // watermark makes every duplicate a counted no-op.
    let dropped: Vec<ObjectId> = (0..DOCS)
        .filter(|i| i % 2 == 0)
        .map(ObjectId::client)
        .collect();
    for id in &dropped {
        surrogate.tables.imports.remove(*id);
    }
    let epoch = surrogate.tables.imports.advertised_epoch();
    let release_seq = surrogate.tables.imports.next_release_seq();
    let release = Request::GcReleaseSeq {
        epoch,
        release_seq,
        objects: dropped.clone(),
    };
    surrogate
        .endpoint
        .call_with_retry(release.clone())
        .expect("release survives chaos");
    // Deliberate resend of the same watermark: must be absorbed.
    surrogate
        .endpoint
        .call_with_retry(release)
        .expect("duplicate release survives chaos");
    // A release from before the epoch fence: the client counts it stale.
    surrogate.tables.imports.begin_epoch();
    surrogate
        .endpoint
        .call_with_retry(Request::GcRenew {
            epoch: surrogate.tables.imports.advertised_epoch(),
        })
        .expect("renew survives chaos");
    surrogate
        .endpoint
        .call_with_retry(Request::GcReleaseSeq {
            epoch,
            release_seq: surrogate.tables.imports.next_release_seq(),
            objects: vec![ObjectId::client(1)],
        })
        .expect("stale release survives chaos");
    // A release naming an object nobody ever exported: counted, ignored.
    surrogate
        .endpoint
        .call_with_retry(Request::GcReleaseSeq {
            epoch: surrogate.tables.imports.advertised_epoch(),
            release_seq: surrogate.tables.imports.next_release_seq(),
            objects: vec![ObjectId::client(999)],
        })
        .expect("unknown release survives chaos");

    {
        let vm = client.machine.vm();
        let vm = vm.lock();
        assert_eq!(
            vm.external_root_count(),
            (DOCS / 2) as usize,
            "seed {seed}: exactly the released half is unpinned — \
             duplicates, stale epochs, and unknown ids change nothing"
        );
        assert_eq!(vm.external_root_audit().unbalanced_unpins, 0);
    }
    assert_eq!(client.tables.exports.len(), (DOCS / 2) as usize);
    // The stale release must NOT have dropped object 1.
    assert!(client.tables.exports.contains(ObjectId::client(1)));

    // Phase C: ordinary stamped traffic renews the surviving leases.
    client.tables.exports.clock().advance_ms(TTL_MS - 10);
    surrogate
        .endpoint
        .call_with_retry(Request::Ping)
        .expect("ping survives chaos");
    let (expired, stale) = client.dispatcher.sweep_expired_exports();
    assert_eq!(
        (expired, stale),
        (0, 0),
        "seed {seed}: renewed leases must not expire"
    );

    // Phase D: silence. The surrogate dies without releasing; the leases
    // run out and the sweep hands every surviving export back. Let any
    // chaos-delayed duplicate frames land first — a straggler arriving
    // after the clock jump would legitimately renew the leases.
    std::thread::sleep(Duration::from_millis(20));
    client.tables.exports.clock().advance_ms(TTL_MS + TTL_MS);
    let (expired, _) = client.dispatcher.sweep_expired_exports();
    assert_eq!(
        expired,
        (DOCS / 2) as usize,
        "seed {seed}: every unrenewed lease expires"
    );
    // The dead surrogate's backlog finally arrives: releases for objects
    // that expiry already reclaimed are counted no-ops, not double unpins.
    surrogate
        .endpoint
        .call_with_retry(Request::GcReleaseSeq {
            epoch: surrogate.tables.imports.advertised_epoch(),
            release_seq: surrogate.tables.imports.next_release_seq(),
            objects: (0..DOCS)
                .filter(|i| i % 2 == 1)
                .map(ObjectId::client)
                .collect(),
        })
        .expect("late release survives chaos");
    for i in 0..DOCS {
        if i % 2 == 1 {
            surrogate.tables.imports.remove(ObjectId::client(i));
        }
    }

    // Final accounting: nothing leaked, nothing double-freed — on either
    // side, under every seed.
    for (name, side) in [("client", &client), ("surrogate", &surrogate)] {
        assert!(
            side.tables.exports.is_empty() && side.tables.imports.is_empty(),
            "seed {seed}: {name} reference tables must drain to empty \
             (exports={}, imports={})",
            side.tables.exports.len(),
            side.tables.imports.len(),
        );
        let vm = side.machine.vm();
        let vm = vm.lock();
        assert_eq!(
            vm.external_root_count(),
            0,
            "seed {seed}: {name} VM must hold no leftover external pins"
        );
        assert_eq!(
            vm.external_root_audit().unbalanced_unpins,
            0,
            "seed {seed}: {name} VM must never double-unpin"
        );
    }

    client.endpoint.shutdown();
    surrogate.endpoint.shutdown();
    client.endpoint.join();
    surrogate.endpoint.join();
}

#[test]
fn reference_tables_return_to_baseline_after_every_hostile_seed() {
    for seed in [1u64, 7, 1234] {
        // Record every chaos draw: a failing seed leaves a replayable
        // trace behind instead of just a backtrace (the golden
        // `traces/gc.trace.jsonl` was distilled from such a dump).
        let guard = aide::replay::recording_guard();
        let source = Arc::new(aide::replay::RecordingSource::new());
        aide::rpc::set_rpc_observer(Some(source.clone()));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_seed(seed);
        }));
        aide::rpc::set_rpc_observer(None);
        drop(guard);
        if let Err(panic) = run {
            let mut cfg = aide::core::PlatformConfig::prototype(3 << 20);
            cfg.chaos = Some(ChaosSchedule::hostile(seed));
            let trace = source.into_trace("gc-soak", cfg, Vec::new());
            let path = format!("target/replay/gc-{seed}.trace");
            match aide::replay::save(&trace, &path) {
                Ok(()) => {
                    eprintln!("gc soak failed at seed {seed}; inputs dumped to {path}");
                    eprintln!("replay with: cargo run --release --example replay -- replay {path}");
                }
                Err(e) => eprintln!("gc soak failed at seed {seed}; trace dump failed: {e}"),
            }
            std::panic::resume_unwind(panic);
        }
    }

    // The process-wide leak gauges must balance: every entry any table in
    // this test ever held was eventually removed.
    let snapshot = aide::telemetry::global().snapshot();
    assert_eq!(
        snapshot.gauge(aide::telemetry::names::GC_EXPORT_ENTRIES),
        0,
        "export-table leak gauge must end at zero"
    );
    assert_eq!(
        snapshot.gauge(aide::telemetry::names::GC_IMPORT_ENTRIES),
        0,
        "import-table leak gauge must end at zero"
    );
    assert_eq!(
        snapshot.counter(aide::telemetry::names::VM_UNPIN_UNBALANCED),
        0,
        "no VM anywhere in this process double-unpinned"
    );
}
