//! Fleet soak: N clients × M daemons over real TCP under the hostile
//! seeds, exercising the whole fleet-serving surface at once — sharded
//! worker pools, load-aware placement, `Busy` admission control with
//! client-side backoff-and-replace, a mid-run daemon crash with failover,
//! and the store-and-forward relay for a client that starts with no
//! reachable surrogate at all.
//!
//! The assertions are invariants, not schedules: every client session
//! must complete or fail over with zero lost objects, every relay queue
//! must drain (delivered, or recalled at end of run — never expired,
//! since nobody advances the relay clock), and no VM anywhere in the
//! process may ever double-unpin. A failing seed dumps a replayable
//! trace, the same diagnostic path the GC soak uses (the golden
//! `traces/fleet.trace.jsonl` was distilled from such a run).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aide::core::{BackoffConfig, FailoverConfig, Platform, PlatformConfig, PlatformReport};
use aide::graph::CommParams;
use aide::rpc::{
    Dispatcher, Endpoint, EndpointConfig, NetClock, Reply, Request, RpcError, TcpTransport,
    Transport,
};
use aide::surrogate::{
    DaemonConfig, RegistryConfig, RelayConfig, RelayQueue, ShardConfig, SurrogateDaemon,
    SurrogateRegistry,
};
use aide::vm::{GcConfig, MethodDef, MethodId, Op, Program, ProgramBuilder, Reg};

const DOC_BYTES: u32 = 4_000;
const HEAP: u64 = 256 * 1024;
const CLIENTS: usize = 4;

/// The document-store pressure workload: fill past the heap (offload),
/// drop half (GC release), read survivors (hits a dead surrogate after
/// the crash), fill again (re-offload), read everything.
fn doc_store_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");

    let mut ops = Vec::new();
    let new_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot { slot, src: Reg(1) });
        ops.push(Op::Work { micros: 20 });
    };
    let read_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::GetSlot { slot, dst: Reg(2) });
        ops.push(Op::Read {
            obj: Reg(2),
            bytes: 64,
        });
    };

    for i in 0..70 {
        new_doc(&mut ops, i);
        if i % 8 == 0 {
            read_doc(&mut ops, i);
        }
    }
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..50 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    for i in 70..80 {
        new_doc(&mut ops, i);
    }
    for i in 55..60 {
        read_doc(&mut ops, i);
    }
    for i in 80..120 {
        new_doc(&mut ops, i);
    }
    for i in [55, 60, 75, 90, 118] {
        read_doc(&mut ops, i);
    }

    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 120).unwrap())
}

/// A lighter store whose final live set always fits back into the client
/// heap — the relay client's workload, so an end-of-run recall of parked
/// shipments can never overflow (and never lose objects).
fn relay_store_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");

    let mut ops = Vec::new();
    let new_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot { slot, src: Reg(1) });
        ops.push(Op::Work { micros: 20 });
    };
    for i in 0..60 {
        new_doc(&mut ops, i);
        if i % 8 == 0 {
            ops.push(Op::GetSlot {
                slot: i,
                dst: Reg(2),
            });
            ops.push(Op::Read {
                obj: Reg(2),
                bytes: 64,
            });
        }
    }
    // Drop nearly everything, twice around: the end-of-run live set is a
    // handful of documents, far under the heap limit.
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..55 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    for i in 0..35 {
        new_doc(&mut ops, i);
    }
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..30 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 60).unwrap())
}

fn platform_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::prototype(HEAP);
    cfg.gc = GcConfig {
        trigger_alloc_count: 8,
        trigger_alloc_bytes: 64 * 1024,
        cost_micros_per_object: 0.05,
    };
    cfg
}

fn failover_config() -> FailoverConfig {
    FailoverConfig {
        heartbeat_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(250),
        backoff: BackoffConfig {
            base: Duration::ZERO,
            factor: 2.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 1,
        },
    }
}

struct NullDispatcher;

impl Dispatcher for NullDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// Deterministic admission-control check against a real sharded daemon
/// with `max_sessions == 1`: the first session is admitted and served,
/// the second is answered `Busy` carrying the daemon's configured hint.
fn assert_admission_control(addr: std::net::SocketAddr, busy_retry_ms: u32) {
    let transport = TcpTransport::connect(addr, Duration::from_secs(2)).expect("connect daemon");
    let clock = Arc::new(NetClock::new());
    let mut endpoints = Vec::new();
    for _ in 0..2 {
        let session = transport.open_session().expect("open mux session");
        endpoints.push(Endpoint::start(
            session,
            CommParams::WAVELAN,
            clock.clone(),
            Arc::new(NullDispatcher),
            EndpointConfig {
                workers: 1,
                ..EndpointConfig::default()
            },
        ));
    }
    assert_eq!(
        endpoints[0].call(Request::Ping),
        Ok(Reply::Unit),
        "first session is admitted"
    );
    match endpoints[1].call(Request::Ping) {
        Err(RpcError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, busy_retry_ms),
        other => panic!("second session past the limit must be Busy, got {other:?}"),
    }
    for endpoint in endpoints {
        endpoint.shutdown();
        endpoint.join();
    }
    transport.killer().kill();
}

fn assert_session_ok(who: &str, seed: u64, report: &PlatformReport) {
    assert!(
        report.outcome.is_ok(),
        "seed {seed}: {who} must complete or fail over: {:?}",
        report.outcome
    );
    if let Some(failover) = report.failover.as_ref() {
        assert_eq!(
            failover.objects_lost, 0,
            "seed {seed}: {who} lost objects: {failover:?}"
        );
    }
}

/// One full fleet scenario at one seed.
fn run_seed(seed: u64) {
    let program = doc_store_program();

    // d0: sharded, deliberately tiny admission limit — the saturation
    // target. d1: threaded and seed-scheduled to crash mid-run. d2:
    // sharded and healthy, the fleet's safety net.
    let shard = ShardConfig {
        shards: 1 + (seed as usize % 3),
        max_sessions: 1,
        busy_retry_ms: 10,
        dedup_capacity: 128,
    };
    let d0 = SurrogateDaemon::start(DaemonConfig::new("d0", program.clone()).sharded(shard))
        .expect("start d0");
    let mut c1 = DaemonConfig::new("d1", program.clone());
    c1.fail_after_requests = Some(1 + (seed % 4));
    let d1 = SurrogateDaemon::start(c1).expect("start d1");
    let d2 = SurrogateDaemon::start(
        DaemonConfig::new("d2", program.clone()).sharded(ShardConfig::default()),
    )
    .expect("start d2");

    // Deterministic Busy handshake before the concurrent churn.
    assert_admission_control(d0.local_addr(), 10);

    // The doc-store clients: every registry knows the whole fleet. With
    // d0 admitting one session and d1 crashing, completion requires the
    // busy-cooldown and failover paths to actually work.
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let program = program.clone();
        let addrs = [d0.local_addr(), d1.local_addr(), d2.local_addr()];
        handles.push(std::thread::spawn(move || {
            let registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
            for (name, addr) in ["d0", "d1", "d2"].iter().zip(addrs) {
                registry.add_static(name, addr, 64 << 20);
            }
            // Stagger candidate order per client via a probe round for
            // half of them: placement stays deterministic, but the soak
            // visits both the probed and unprobed orderings.
            if client % 2 == 0 {
                registry.probe_all();
                registry.refresh_load();
            }
            Platform::with_surrogates(program, platform_config(), registry)
                .with_failover_config(failover_config())
                .run()
        }));
    }

    // The relay client: starts with an EMPTY registry — the first
    // pressure has nowhere to go and must park on the relay. A watcher
    // registers the healthy daemon only after a shipment is parked, so
    // the queued-then-delivered path is reachable; whatever is still
    // parked when the program ends is recalled, never stranded.
    let relay = Arc::new(RelayQueue::new(RelayConfig {
        ttl_ms: 60 * 60 * 1000, // nobody advances the clock: expiry never fires
        max_depth: 64,
    }));
    let relay_registry = Arc::new(SurrogateRegistry::new(RegistryConfig::default()));
    let done = Arc::new(AtomicBool::new(false));
    let watcher = {
        let relay = relay.clone();
        let registry = relay_registry.clone();
        let done = done.clone();
        let addr = d2.local_addr();
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                if relay.stats().queued_total > 0 {
                    registry.add_static("d2", addr, 64 << 20);
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let relay_report = Platform::with_surrogates(
        relay_store_program(),
        platform_config(),
        relay_registry.clone(),
    )
    .with_failover_config(failover_config())
    .with_relay(relay.clone())
    .run();
    done.store(true, Ordering::SeqCst);
    watcher.join().unwrap();

    for (client, handle) in handles.into_iter().enumerate() {
        let report = handle.join().expect("client thread");
        assert_session_ok(&format!("client {client}"), seed, &report);
    }
    assert_session_ok("relay client", seed, &relay_report);

    // Relay accounting: at least one migration parked (the registry was
    // empty at first pressure), the queue fully drained, and every parked
    // shipment is accounted for — delivered, recalled, or expired (and
    // expiry never fires here).
    let failover = relay_report.failover.as_ref().expect("provider-backed run");
    assert!(
        failover.migrations_queued >= 1,
        "seed {seed}: first pressure had no surrogate and must queue: {failover:?}"
    );
    assert_eq!(
        failover.migrations_queued,
        failover.migrations_relayed + failover.relay_expired + failover.relay_recalled,
        "seed {seed}: every parked shipment delivered or reinstated: {failover:?}"
    );
    assert_eq!(failover.relay_expired, 0, "seed {seed}: {failover:?}");
    let stats = relay.stats();
    assert_eq!(stats.depth, 0, "seed {seed}: relay queue drains: {stats:?}");
    assert_eq!(stats.expired_total, 0, "seed {seed}: {stats:?}");

    // The sharded daemons' pools wind down with no stuck sessions.
    d0.shutdown();
    d1.shutdown();
    d2.shutdown();
    assert_eq!(d0.live_sessions(), 0, "seed {seed}");
    assert_eq!(d2.live_sessions(), 0, "seed {seed}");
}

#[test]
fn fleet_survives_saturation_crashes_and_lost_surrogates_at_every_seed() {
    for seed in [1u64, 7, 1234] {
        // Record every nondeterministic input: a failing seed leaves a
        // replayable trace, not just a backtrace.
        let guard = aide::replay::recording_guard();
        let source = Arc::new(aide::replay::RecordingSource::new());
        aide::rpc::set_rpc_observer(Some(source.clone()));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_seed(seed);
        }));
        aide::rpc::set_rpc_observer(None);
        drop(guard);
        if let Err(panic) = run {
            let cfg = platform_config();
            let trace = source.into_trace("fleet-soak", cfg, Vec::new());
            let path = format!("target/replay/fleet-{seed}.trace");
            match aide::replay::save(&trace, &path) {
                Ok(()) => {
                    eprintln!("fleet soak failed at seed {seed}; inputs dumped to {path}");
                    eprintln!("replay with: cargo run --release --example replay -- replay {path}");
                }
                Err(e) => eprintln!("fleet soak failed at seed {seed}; trace dump failed: {e}"),
            }
            std::panic::resume_unwind(panic);
        }
    }

    // Process-wide accounting across all seeds: no VM anywhere ever
    // double-unpinned, no relay entry expired (nobody advanced a relay
    // clock), and the fleet queue-depth gauge balanced back to zero.
    let snapshot = aide::telemetry::global().snapshot();
    assert_eq!(
        snapshot.counter(aide::telemetry::names::VM_UNPIN_UNBALANCED),
        0,
        "no VM in this process double-unpinned"
    );
    assert_eq!(
        snapshot.counter(aide::telemetry::names::FLEET_RELAY_EXPIRED),
        0,
        "no relay entry may expire in this soak"
    );
    assert_eq!(
        snapshot.gauge(aide::telemetry::names::FLEET_RELAY_QUEUE_DEPTH),
        0,
        "every relay queue drained"
    );
}
