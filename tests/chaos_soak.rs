//! Chaos soak: a deterministic workload driven through the full RPC stack
//! over seeded hostile links must land in exactly the state a fault-free
//! run produces — no lost writes, no double execution, no panics.
//!
//! Three layers carry the workload through the weather: CRC32 framing
//! rejects corruption and truncation, `call_with_retry` masks loss and
//! delay, and the serving side's at-most-once cache absorbs duplicates and
//! retransmissions. A separate scenario injects a hard connection reset in
//! the middle of a two-phase migration and checks the rollback restores
//! the pre-offload placement byte-for-byte.

use std::sync::Arc;
use std::time::Duration;

use aide::core::{execute_offload_tracked, NodeKey, RefTables, VmDispatcher};
use aide::graph::{
    candidate_partitionings, CommParams, EdgeInfo, ExecutionGraph, MemoryPolicy, NodeInfo,
    PartitionPolicy, PinReason, ResourceSnapshot,
};
use aide::rpc::{
    chaos_pair, chaos_wrap, ChaosSchedule, Dispatcher, Endpoint, EndpointConfig, Link, Reply,
    Request, RetryPolicy, Session,
};
use aide::telemetry::{FlightRecorder, PlatformEvent};
use aide::vm::{
    ClassId, Machine, MethodDef, MethodId, ObjectId, ObjectRecord, Program, ProgramBuilder,
    VmConfig,
};

const DOCS: u64 = 10;

fn tiny_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let _doc = b.add_class("Doc");
    b.add_method(main, MethodDef::new("main", vec![]));
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

/// The client never serves; it only calls.
struct NullDispatcher;
impl Dispatcher for NullDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// A retry policy aggressive enough that the workload survives hostile
/// loss rates by persistence, not luck.
fn soak_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        attempt_timeout: Duration::from_millis(100),
        base_backoff: Duration::from_millis(2),
        backoff_factor: 2.0,
        max_backoff: Duration::from_millis(50),
        jitter: 0.25,
        deadline: Duration::from_secs(30),
        seed: 0xC0FFEE,
    }
}

fn soak_endpoint_config() -> EndpointConfig {
    EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(100),
        retry: soak_retry(),
    }
}

struct Harness {
    client_ep: Arc<Endpoint>,
    surrogate_ep: Arc<Endpoint>,
    /// Kept so final state can be read directly, bypassing the chaotic
    /// link.
    surrogate_dispatcher: Arc<VmDispatcher>,
}

fn start_endpoints(link: &Link, ct: Session, st: Session) -> Harness {
    let surrogate_vm = Machine::new(tiny_program(), VmConfig::surrogate(16 << 20));
    let surrogate_dispatcher =
        Arc::new(VmDispatcher::new(surrogate_vm, Arc::new(RefTables::new())));
    let client_ep = Endpoint::start(
        ct,
        link.params,
        link.clock.clone(),
        Arc::new(NullDispatcher),
        soak_endpoint_config(),
    );
    let surrogate_ep = Endpoint::start(
        st,
        link.params,
        link.clock.clone(),
        surrogate_dispatcher.clone(),
        soak_endpoint_config(),
    );
    Harness {
        client_ep,
        surrogate_ep,
        surrogate_dispatcher,
    }
}

/// The deterministic workload: two-phase-migrate `DOCS` documents into the
/// surrogate, then interleave slot writes (including overwrites and
/// clears). Every call is non-idempotent, so a single re-execution would
/// corrupt the final state.
fn run_workload(h: &Harness) -> u64 {
    let objects: Vec<(ObjectId, ObjectRecord)> = (0..DOCS)
        .map(|i| {
            let mut rec = ObjectRecord::new(ClassId(1), 1_000, 2);
            rec.slots[0] = Some(ObjectId::client((i + 1) % DOCS));
            (ObjectId::client(i), rec)
        })
        .collect();
    let mut calls = 0u64;
    h.client_ep
        .call_with_retry(Request::MigratePrepare { txn: 77, objects })
        .expect("PREPARE survives chaos");
    calls += 1;
    h.client_ep
        .call_with_retry(Request::MigrateCommit { txn: 77 })
        .expect("COMMIT survives chaos");
    calls += 1;
    for i in 0..(DOCS * 2) {
        let value = if i % 3 == 0 {
            None
        } else {
            Some(ObjectId::client((i * 7 + 3) % DOCS))
        };
        h.client_ep
            .call_with_retry(Request::PutSlot {
                target: ObjectId::client(i % DOCS),
                slot: (i % 2) as u16,
                value,
            })
            .expect("PutSlot survives chaos");
        calls += 1;
    }
    calls
}

/// Final placement signature, read directly from the surrogate VM (not
/// over the chaotic link): every document's two slots.
fn final_state(h: &Harness) -> Vec<Option<ObjectId>> {
    let mut state = Vec::new();
    for i in 0..DOCS {
        for slot in 0..2u16 {
            match h
                .surrogate_dispatcher
                .dispatch(Request::GetSlot {
                    target: ObjectId::client(i),
                    slot,
                })
                .expect("document resident on the surrogate")
            {
                Reply::Slot(v) => state.push(v),
                other => panic!("unexpected GetSlot reply {other:?}"),
            }
        }
    }
    state
}

fn shut_down(h: Harness) {
    h.client_ep.shutdown();
    h.client_ep.join();
    h.surrogate_ep.shutdown();
    h.surrogate_ep.join();
}

/// Fault-free reference run: the state every chaotic run must reproduce.
fn reference_run() -> (Vec<Option<ObjectId>>, u64) {
    let (link, ct, st) = Link::pair(CommParams::WAVELAN);
    let h = start_endpoints(&link, ct, st);
    let calls = run_workload(&h);
    assert_eq!(h.surrogate_ep.requests_served(), calls);
    assert_eq!(h.client_ep.retries(), 0);
    let state = final_state(&h);
    shut_down(h);
    (state, calls)
}

#[test]
fn workload_state_is_identical_under_seeded_chaos() {
    let (reference, calls) = reference_run();
    for seed in [1u64, 7, 1234] {
        let mut schedule = ChaosSchedule::hostile(seed);
        schedule.max_delay = Duration::from_millis(5);

        // Record every chaos draw and RPC completion: a failing seed
        // leaves a replayable trace behind instead of just a backtrace.
        let guard = aide::replay::recording_guard();
        let source = Arc::new(aide::replay::RecordingSource::new());
        aide::rpc::set_rpc_observer(Some(source.clone()));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let (link, ct, st, _stats) = chaos_pair(CommParams::WAVELAN, schedule);
            let h = start_endpoints(&link, ct, st);
            let chaotic_calls = run_workload(&h);
            assert_eq!(chaotic_calls, calls);
            assert_eq!(
                h.surrogate_ep.requests_served(),
                calls,
                "seed {seed}: every logical request executes exactly once \
                 (at-most-once cache absorbed the rest)"
            );
            assert_eq!(
                final_state(&h),
                reference,
                "seed {seed}: chaotic run must land in the fault-free state"
            );
            shut_down(h);
        }));
        aide::rpc::set_rpc_observer(None);
        drop(guard);
        if let Err(panic) = run {
            let mut cfg = aide::core::PlatformConfig::prototype(3 << 20);
            cfg.chaos = Some(schedule);
            let trace = source.into_trace("chaos-soak", cfg, Vec::new());
            let path = format!("target/replay/{seed}.trace");
            match aide::replay::save(&trace, &path) {
                Ok(()) => {
                    eprintln!("chaos soak failed at seed {seed}; recorded inputs dumped to {path}");
                    eprintln!("replay with: cargo run --release --example replay -- replay {path}");
                }
                Err(e) => eprintln!("chaos soak failed at seed {seed}; trace dump failed: {e}"),
            }
            std::panic::resume_unwind(panic);
        }
    }
}

#[test]
fn reply_loss_is_fully_accounted_by_the_dedup_cache() {
    let (reference, calls) = reference_run();
    // Asymmetric chaos: only surrogate → client frames are lost, so every
    // request arrives and executes exactly once; each client retry must
    // therefore be answered from the at-most-once cache.
    let (link, ct, st) = Link::pair(CommParams::WAVELAN);
    let mut schedule = ChaosSchedule::seeded(99);
    schedule.drop = 0.3;
    let (st, _stats) = chaos_wrap(st, schedule);
    let h = start_endpoints(&link, ct, st);

    let chaotic_calls = run_workload(&h);
    assert_eq!(chaotic_calls, calls);
    let retries = h.client_ep.retries();
    assert!(retries > 0, "a 30% reply-loss run must retry at least once");
    assert_eq!(h.surrogate_ep.requests_served(), calls);
    assert_eq!(
        h.surrogate_ep.dedup_hits(),
        retries,
        "every retry of a non-idempotent request must be a dedup hit"
    );
    assert_eq!(final_state(&h), reference);
    shut_down(h);
}

/// Builds a two-node graph (pinned Main, offloadable Doc) and a selection
/// offloading Doc — the same shape the platform's partitioner produces.
fn doc_selection(doc_bytes: u64) -> (aide::graph::SelectedPartition, Vec<NodeKey>) {
    let mut g = ExecutionGraph::new();
    let main = g.add_node(NodeInfo::pinned("Main", PinReason::NativeMethods));
    let doc = g.add_node(NodeInfo::new("Doc"));
    g.node_mut(doc).memory_bytes = doc_bytes;
    g.record_interaction(main, doc, EdgeInfo::new(5, 100));
    let cands = candidate_partitionings(&g);
    let sel = MemoryPolicy::new(1e-6)
        .select(&g, ResourceSnapshot::new(1 << 20, 1 << 19), &cands)
        .expect("feasible");
    (
        sel,
        vec![NodeKey::Class(ClassId(0)), NodeKey::Class(ClassId(1))],
    )
}

#[test]
fn mid_migration_reset_rolls_back_the_client_heap() {
    let program = tiny_program();
    let client = Machine::new(program.clone(), VmConfig::client(1 << 20));
    let surrogate = Machine::new(program, VmConfig::surrogate(16 << 20));

    let (link, ct, st) = Link::pair(CommParams::WAVELAN);
    // The first outbound frame (the PREPARE) passes; the second (the
    // COMMIT) trips a hard reset — the crash window where staged objects
    // exist remotely but nothing has been installed.
    let mut schedule = ChaosSchedule::seeded(5);
    schedule.reset_after_frames = Some(1);
    let (ct, cstats) = chaos_wrap(ct, schedule);

    let tables = Arc::new(RefTables::new());
    let client_ep = Endpoint::start(
        ct,
        link.params,
        link.clock.clone(),
        Arc::new(NullDispatcher),
        EndpointConfig {
            workers: 2,
            call_timeout: Duration::from_secs(1),
            drain_timeout: Duration::from_millis(100),
            retry: RetryPolicy {
                max_attempts: 2,
                attempt_timeout: Duration::from_millis(150),
                deadline: Duration::from_secs(2),
                ..RetryPolicy::default()
            },
        },
    );
    let _surrogate_ep = Endpoint::start(
        st,
        link.params,
        link.clock.clone(),
        Arc::new(VmDispatcher::new(
            surrogate.clone(),
            Arc::new(RefTables::new()),
        )),
        soak_endpoint_config(),
    );

    // Three documents, one of which points back at a pinned Main object.
    let (used_before, roots_before) = {
        let vm = client.vm();
        let mut vm = vm.lock();
        for i in 0..3u64 {
            let mut rec = ObjectRecord::new(ClassId(1), 100_000, 1);
            if i == 0 {
                rec.slots[0] = Some(ObjectId::client(10));
            }
            vm.heap_mut().insert(ObjectId::client(i), rec).unwrap();
        }
        vm.heap_mut()
            .insert(ObjectId::client(10), ObjectRecord::new(ClassId(0), 64, 0))
            .unwrap();
        (vm.heap().stats().used_bytes, vm.external_root_count())
    };

    let (sel, keys) = doc_selection(300_000);
    let recorder = FlightRecorder::new(32);
    let result =
        execute_offload_tracked(&sel, &keys, &client, &client_ep, &tables, Some(&recorder));
    assert!(
        result.is_err(),
        "a reset mid-migration must fail the offload"
    );
    assert_eq!(cstats.resets(), 1, "the schedule injected its reset");

    // Rollback restored the pre-offload placement exactly.
    {
        let vm = client.vm();
        let vm = vm.lock();
        for i in 0..3u64 {
            assert!(
                vm.heap().contains(ObjectId::client(i)),
                "doc {i} reinstated"
            );
        }
        assert!(vm.heap().contains(ObjectId::client(10)));
        assert_eq!(vm.heap().stats().used_bytes, used_before);
        assert_eq!(
            vm.external_root_count(),
            roots_before,
            "back-reference pins released"
        );
    }
    assert_eq!(tables.imports.len(), 0, "no phantom imports survive");
    // Nothing was ever installed on the surrogate: staged != resident.
    assert_eq!(surrogate.vm().lock().heap().stats().migrated_in, 0);

    let events: Vec<PlatformEvent> = recorder.events().into_iter().map(|e| e.event).collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, PlatformEvent::MigrationAborted { .. })),
        "flight recorder logs the abort: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, PlatformEvent::MigrationRolledBack { objects: 3, .. })),
        "flight recorder logs the rollback: {events:?}"
    );

    client_ep.shutdown();
    client_ep.join();
}
