//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Each span becomes one complete (`"ph":"X"`) event; track labels become
//! process lanes via `process_name` metadata events, so a single-process
//! run that plays both platform roles still renders as distinct "client"
//! and "surrogate" tracks.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::SpanRecord;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape(key, out);
    out.push_str("\":\"");
    escape(value, out);
    out.push('"');
}

/// Renders `spans` as a Chrome trace-event JSON object. Load the result
/// in Perfetto (`ui.perfetto.dev`, "Open trace file") or
/// `chrome://tracing`.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    // Stable pid per track label, in order of first appearance.
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    for span in spans {
        let next = pids.len() as u64 + 1;
        pids.entry(span.track.as_str()).or_insert(next);
    }

    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (track, pid) in &pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{"
        );
        push_str_field(&mut out, "name", track);
        out.push_str("}}");
    }
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let pid = pids.get(span.track.as_str()).copied().unwrap_or(0);
        out.push('{');
        push_str_field(&mut out, "name", &span.name);
        out.push(',');
        push_str_field(&mut out, "cat", span.cat);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
            span.start_micros, span.duration_micros, pid, span.thread
        );
        let _ = write!(
            out,
            "\"trace_id\":\"{:#x}\",\"span_id\":\"{:#x}\"",
            span.trace_id, span.span_id
        );
        if let Some(parent) = span.parent_id {
            let _ = write!(out, ",\"parent_id\":\"{parent:#x}\"");
        }
        for (k, v) in &span.args {
            out.push(',');
            push_str_field(&mut out, k, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}
