//! Critical-path latency attribution for two-phase migrations.
//!
//! Given a span forest (typically [`crate::drain`]'s output), every
//! `migration` root is decomposed into the phases the paper's fig8/fig10
//! overhead story needs: time under the VM lock serializing victims, time
//! on the wire (RPC attempt minus remote service), retry loss (failed
//! attempts plus backoff sleeps), remote instantiation (the surrogate
//! serving PREPARE), and commit. Whatever the phases do not cover is
//! reported as `unattributed` rather than silently absorbed.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::names;
use crate::span::SpanRecord;

/// Per-migration phase attribution, all in microseconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MigrationBreakdown {
    /// The trace the migration belongs to.
    pub trace_id: u64,
    /// The migration root span.
    pub span_id: u64,
    /// End-to-end migration duration.
    pub total_micros: u64,
    /// Victim gathering under the VM lock.
    pub serialize_micros: u64,
    /// Time on the wire: successful RPC attempts minus the remote
    /// service time nested inside them (includes chaos delays).
    pub wire_micros: u64,
    /// Retry loss: timed-out attempts plus backoff sleeps.
    pub retry_micros: u64,
    /// The surrogate serving `MigratePrepare` (staging the objects).
    pub instantiate_micros: u64,
    /// The surrogate serving `MigrateCommit` (installing the objects).
    pub commit_micros: u64,
    /// Remainder of the root span the phases above do not cover.
    pub unattributed_micros: u64,
}

/// Walks the span forest and attributes every `migration` root.
/// Spans from other traces are ignored, so a drained buffer holding
/// unrelated RPC chatter still attributes cleanly.
pub fn critical_path(spans: &[SpanRecord]) -> Vec<MigrationBreakdown> {
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for span in spans {
        if let Some(parent) = span.parent_id {
            children.entry(parent).or_default().push(span);
        }
    }

    let mut out = Vec::new();
    for root in spans.iter().filter(|s| s.name == names::MIGRATION) {
        let mut b = MigrationBreakdown {
            trace_id: root.trace_id,
            span_id: root.span_id,
            total_micros: root.duration_micros,
            ..MigrationBreakdown::default()
        };
        // Collect the migration subtree.
        let mut frontier = vec![root.span_id];
        let mut tree: Vec<&SpanRecord> = Vec::new();
        while let Some(id) = frontier.pop() {
            if let Some(kids) = children.get(&id) {
                for kid in kids {
                    frontier.push(kid.span_id);
                    tree.push(kid);
                }
            }
        }
        for span in &tree {
            match span.name.as_str() {
                names::MIGRATE_SERIALIZE => b.serialize_micros += span.duration_micros,
                names::RPC_BACKOFF => b.retry_micros += span.duration_micros,
                names::RPC_ATTEMPT => {
                    if span.arg("outcome") == Some("ok") {
                        b.wire_micros += net_of_service(span, &children);
                    } else {
                        b.retry_micros += span.duration_micros;
                    }
                }
                names::RPC_CALL => b.wire_micros += net_of_service(span, &children),
                names::RPC_SERVE => match span.arg("kind") {
                    Some("MigratePrepare") | Some("Migrate") => {
                        b.instantiate_micros += span.duration_micros
                    }
                    Some("MigrateCommit") => b.commit_micros += span.duration_micros,
                    _ => {}
                },
                _ => {}
            }
        }
        let attributed = b.serialize_micros
            + b.wire_micros
            + b.retry_micros
            + b.instantiate_micros
            + b.commit_micros;
        b.unattributed_micros = b.total_micros.saturating_sub(attributed);
        out.push(b);
    }
    out
}

/// An attempt's wire share: its duration minus the remote service spans
/// nested directly under it (clamped at zero — cross-process clocks are
/// not perfectly aligned).
fn net_of_service(attempt: &SpanRecord, children: &HashMap<u64, Vec<&SpanRecord>>) -> u64 {
    let service: u64 = children
        .get(&attempt.span_id)
        .map(|kids| {
            kids.iter()
                .filter(|k| k.name == names::RPC_SERVE || k.name == names::RPC_DEDUP)
                .map(|k| k.duration_micros)
                .sum()
        })
        .unwrap_or(0);
    attempt.duration_micros.saturating_sub(service)
}

/// Renders breakdowns as JSON lines (one object per migration), the
/// format `BENCH_trace.json` carries.
pub fn breakdown_json(breakdowns: &[MigrationBreakdown]) -> String {
    let mut out = String::new();
    for b in breakdowns {
        let _ = writeln!(
            out,
            "{{\"kind\":\"migration_critical_path\",\"trace_id\":\"{:#x}\",\
             \"total_micros\":{},\"serialize_micros\":{},\"wire_micros\":{},\
             \"retry_micros\":{},\"instantiate_micros\":{},\"commit_micros\":{},\
             \"unattributed_micros\":{}}}",
            b.trace_id,
            b.total_micros,
            b.serialize_micros,
            b.wire_micros,
            b.retry_micros,
            b.instantiate_micros,
            b.commit_micros,
            b.unattributed_micros,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        name: &str,
        trace: u64,
        id: u64,
        parent: Option<u64>,
        dur: u64,
        args: &[(&str, &str)],
    ) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.to_string(),
            cat: "test",
            start_micros: 0,
            duration_micros: dur,
            track: "client".to_string(),
            thread: 1,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn attributes_every_phase_of_a_retried_migration() {
        let spans = vec![
            span(names::MIGRATION, 7, 1, None, 1_000, &[]),
            span(names::MIGRATE_SERIALIZE, 7, 2, Some(1), 100, &[]),
            span(names::MIGRATE_PREPARE, 7, 3, Some(1), 700, &[]),
            // First attempt timed out, then backoff, then success.
            span(
                names::RPC_ATTEMPT,
                7,
                4,
                Some(3),
                200,
                &[("outcome", "timeout")],
            ),
            span(names::RPC_BACKOFF, 7, 5, Some(3), 50, &[("micros", "50")]),
            span(names::RPC_ATTEMPT, 7, 6, Some(3), 300, &[("outcome", "ok")]),
            // The surrogate staged the batch inside the winning attempt.
            span(
                names::RPC_SERVE,
                7,
                7,
                Some(6),
                120,
                &[("kind", "MigratePrepare")],
            ),
            span(names::MIGRATE_COMMIT, 7, 8, Some(1), 150, &[]),
            span(names::RPC_ATTEMPT, 7, 9, Some(8), 140, &[("outcome", "ok")]),
            span(
                names::RPC_SERVE,
                7,
                10,
                Some(9),
                60,
                &[("kind", "MigrateCommit")],
            ),
            // Noise from an unrelated trace must not leak in.
            span(names::MIGRATE_SERIALIZE, 8, 11, None, 9_999, &[]),
        ];
        let breakdowns = critical_path(&spans);
        assert_eq!(breakdowns.len(), 1);
        let b = &breakdowns[0];
        assert_eq!(b.total_micros, 1_000);
        assert_eq!(b.serialize_micros, 100);
        assert_eq!(b.retry_micros, 250, "failed attempt + backoff");
        assert_eq!(b.wire_micros, (300 - 120) + (140 - 60));
        assert_eq!(b.instantiate_micros, 120);
        assert_eq!(b.commit_micros, 60);
        assert_eq!(b.unattributed_micros, 1_000 - (100 + 250 + 260 + 120 + 60));
        let json = breakdown_json(&breakdowns);
        assert!(json.contains("\"serialize_micros\":100"));
        assert!(json.contains("migration_critical_path"));
    }
}
