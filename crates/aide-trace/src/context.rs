//! Per-thread span context: the ambient stack, RAII guards, and track
//! labels.

use std::cell::RefCell;
use std::fmt::Display;
use std::sync::{Mutex, OnceLock};

use crate::span::{next_span_id, next_trace_id, now_micros, SpanContext, SpanRecord};

thread_local! {
    /// The ambient span stack: the top is the parent of any span (or
    /// recorder event) created on this thread.
    static STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
    /// This thread's track label override, when set.
    static TRACK: RefCell<Option<String>> = const { RefCell::new(None) };
    /// A small per-thread serial for the exporter's `tid` lane.
    static THREAD_LANE: u64 = next_thread_lane();
}

fn next_thread_lane() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn process_label_cell() -> &'static Mutex<String> {
    static LABEL: OnceLock<Mutex<String>> = OnceLock::new();
    LABEL.get_or_init(|| Mutex::new("aide".to_string()))
}

/// Sets the default track label for every thread of this process that
/// has no per-thread override ("client", "surrogate", ...).
pub fn set_process_label(label: &str) {
    *process_label_cell()
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = label.to_string();
}

/// Overrides the track label for the calling thread. Threads a component
/// spawns should inherit the spawner's track (see [`current_track`]).
pub fn set_thread_track(track: &str) {
    TRACK.with(|t| *t.borrow_mut() = Some(track.to_string()));
}

/// The calling thread's effective track label: its override if set,
/// otherwise the process label.
pub fn current_track() -> String {
    TRACK.with(|t| t.borrow().clone()).unwrap_or_else(|| {
        process_label_cell()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    })
}

/// The calling thread's innermost active span context, if any. This is
/// what aide-rpc stamps into outgoing frames and what the recorder
/// annotator attaches to flight-recorder events.
pub fn current_context() -> Option<SpanContext> {
    if !crate::enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied())
}

/// An active span. Created by [`span`] or [`child_of`]; the span is
/// completed and handed to the collector when the guard drops. While the
/// guard lives, its context is the thread's ambient parent.
#[must_use = "a span measures the scope of its guard; dropping it immediately records an empty span"]
pub struct SpanGuard {
    /// `None` for inert guards (tracing disabled at creation).
    record: Option<SpanRecord>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.record {
            Some(r) => f
                .debug_struct("SpanGuard")
                .field("name", &r.name)
                .field("trace_id", &r.trace_id)
                .field("span_id", &r.span_id)
                .finish(),
            None => f.debug_struct("SpanGuard").field("inert", &true).finish(),
        }
    }
}

impl SpanGuard {
    /// This span's portable context (zeros when tracing is disabled).
    pub fn context(&self) -> SpanContext {
        match &self.record {
            Some(r) => SpanContext {
                trace_id: r.trace_id,
                span_id: r.span_id,
            },
            None => SpanContext {
                trace_id: 0,
                span_id: 0,
            },
        }
    }

    /// Attaches a key/value annotation to the span.
    pub fn arg(&mut self, key: &str, value: impl Display) {
        if let Some(r) = &mut self.record {
            r.args.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut record) = self.record.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame. RAII guarantees LIFO order per thread.
            if let Some(top) = stack.last() {
                if top.span_id == record.span_id {
                    stack.pop();
                }
            }
        });
        record.duration_micros = now_micros().saturating_sub(record.start_micros);
        crate::buffer::record(record);
    }
}

fn start(name: &str, cat: &'static str, parent: Option<SpanContext>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { record: None };
    }
    let (trace_id, parent_id) = match parent {
        Some(p) => (p.trace_id, Some(p.span_id)),
        None => (next_trace_id(), None),
    };
    let ctx = SpanContext {
        trace_id,
        span_id: next_span_id(),
    };
    STACK.with(|s| s.borrow_mut().push(ctx));
    SpanGuard {
        record: Some(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id,
            name: name.to_string(),
            cat,
            start_micros: now_micros(),
            duration_micros: 0,
            track: current_track(),
            thread: THREAD_LANE.with(|l| *l),
            args: Vec::new(),
        }),
    }
}

/// Opens a span parented to the thread's ambient span (a new trace root
/// when there is none).
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    start(name, cat, current_context())
}

/// Opens a span under an explicit parent — the serving side of an RPC
/// adopts the caller's wire context this way. `None` falls back to the
/// ambient parent (a legacy v2 peer sent no context).
pub fn child_of(parent: Option<SpanContext>, name: &str, cat: &'static str) -> SpanGuard {
    start(name, cat, parent.or_else(current_context))
}
