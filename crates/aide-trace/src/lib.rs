//! Causal distributed tracing for the AIDE platform.
//!
//! Metrics (aide-telemetry) aggregate and the flight recorder orders
//! events on one node; neither reconstructs the causal chain
//! `TriggerFired → partition → MigratePrepare → remote instantiate →
//! MigrateCommit` once it crosses the RPC seam. This crate supplies the
//! missing layer:
//!
//! * [`SpanContext`] — an explicit `(trace_id, span_id)` pair small enough
//!   to ride in every RPC frame (aide-rpc stamps it into the v3 wire
//!   header), so the serving side can parent its dispatch span under the
//!   caller's span even across processes.
//! * [`span`] / [`child_of`] — RAII span guards over a per-thread context
//!   stack. Guards nest: a migration span opened in the offload engine
//!   automatically parents the RPC call spans the engine performs.
//! * a bounded, lock-cheap collector ([`drain`] / [`snapshot`]): spans
//!   buffer per-thread and flush to a process-global store in batches;
//!   overflow drops (never blocks) and is accounted in
//!   `aide_trace_spans_dropped_total`.
//! * [`chrome_trace`] — a Chrome trace-event JSON exporter; the output
//!   loads directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! * [`critical_path`] — a per-migration latency attribution pass over a
//!   span forest: time split into serialize / wire / retry+backoff /
//!   remote instantiate / commit, emitted as `BENCH_trace.json` by the
//!   `exp_trace_overhead` bench.
//!
//! The crate is std-only (atomics, thread-locals, hand-rolled JSON); its
//! single dependency is aide-telemetry, so span-buffer accounting shows
//! up in the same Prometheus/STATS scrape as every other platform metric.
//!
//! # Examples
//!
//! ```
//! let parent = {
//!     let mut guard = aide_trace::span(aide_trace::names::MIGRATION, "core");
//!     guard.arg("bytes", 4096);
//!     let _child = aide_trace::span(aide_trace::names::RPC_CALL, "rpc");
//!     guard.context()
//! };
//! let spans = aide_trace::snapshot();
//! let call = spans.iter().find(|s| s.name == "rpc.call").unwrap();
//! assert_eq!(call.trace_id, parent.trace_id);
//! assert_eq!(call.parent_id, Some(parent.span_id));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod context;
mod critical;
mod export;
mod span;

pub use buffer::{
    clear, drain, dropped_total, flush_thread, record_raw, recorded_total, set_capacity, snapshot,
};
pub use context::{
    child_of, current_context, current_track, set_process_label, set_thread_track, span, SpanGuard,
};
pub use critical::{breakdown_json, critical_path, MigrationBreakdown};
pub use export::chrome_trace;
pub use span::{SpanContext, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};

/// Well-known span names, shared by the instrumentation sites and the
/// critical-path analyzer so attribution never drifts out of sync with
/// emission.
pub mod names {
    /// One `Endpoint::call` (single-attempt) on the client side.
    pub const RPC_CALL: &str = "rpc.call";
    /// The whole retry loop of one `Endpoint::call_with_retry`.
    pub const RPC_RETRY: &str = "rpc.retry";
    /// One attempt inside a retry loop (args: `attempt`, `outcome`,
    /// `backoff_micros`).
    pub const RPC_ATTEMPT: &str = "rpc.attempt";
    /// The backoff sleep between two attempts.
    pub const RPC_BACKOFF: &str = "rpc.backoff";
    /// The serving side executing one request (child of the caller's
    /// attempt span via the wire context).
    pub const RPC_SERVE: &str = "rpc.serve";
    /// The serving side answering a retransmission from the at-most-once
    /// cache instead of re-executing (child of the originating trace).
    pub const RPC_DEDUP: &str = "rpc.dedup";
    /// One pass of the offload controller's decision pipeline.
    pub const DECISION: &str = "decision";
    /// Drain of monitor deltas plus the trigger sample feeding a decision.
    pub const TRIGGER_SAMPLE: &str = "trigger.sample";
    /// One incremental-partitioner epoch (skip or full evaluation).
    pub const PARTITION_EPOCH: &str = "partition.epoch";
    /// One two-phase class migration, end to end.
    pub const MIGRATION: &str = "migration";
    /// Victim gathering under the VM lock (the serialize phase).
    pub const MIGRATE_SERIALIZE: &str = "migrate.serialize";
    /// The PREPARE batches of a migration (client side, RPC inclusive).
    pub const MIGRATE_PREPARE: &str = "migrate.prepare";
    /// The COMMIT of a migration (client side, RPC inclusive).
    pub const MIGRATE_COMMIT: &str = "migrate.commit";
    /// Rollback after a failed migration (abort + shadow reinstatement).
    pub const MIGRATE_ROLLBACK: &str = "migrate.rollback";
    /// One garbage-collection pause.
    pub const VM_GC: &str = "vm.gc";
    /// Surrogate daemon standing up one logical session (VM + tables +
    /// dispatcher + endpoint).
    pub const DAEMON_SESSION: &str = "daemon.session";
    /// Recovery from a dead surrogate: shadow reinstatement, pin release,
    /// and lease retirement.
    pub const FAILOVER: &str = "failover";
}

/// Process-wide tracing switch. Defaults to on; when off, span guards are
/// inert (no context is pushed, nothing is recorded) and
/// [`current_context`] returns `None`, so frames carry no context either.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables span recording process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Wires the flight recorder to this crate: recorder events get stamped
/// with the recording thread's active `(trace_id, span_id)`, so
/// `PlatformReport::timeline()` rows link back to spans. Idempotent;
/// call once per process (the platform does this on construction).
pub fn install_recorder_annotator() {
    aide_telemetry::set_trace_annotator(annotate);
}

fn annotate() -> Option<(u64, u64)> {
    current_context().map(|ctx| (ctx.trace_id, ctx.span_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests that drain or count must
    /// not interleave. Serialize them on one mutex.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn spans_nest_on_the_thread_stack() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let (root_ctx, child_ctx) = {
            let root = span("outer", "test");
            let root_ctx = root.context();
            let child = span("inner", "test");
            let child_ctx = child.context();
            (root_ctx, child_ctx)
        };
        assert_eq!(root_ctx.trace_id, child_ctx.trace_id);
        assert_ne!(root_ctx.span_id, child_ctx.span_id);
        let spans = snapshot();
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(inner.parent_id, Some(root_ctx.span_id));
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(outer.parent_id, None);
    }

    #[test]
    fn child_of_adopts_a_remote_parent() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let remote = SpanContext {
            trace_id: 0xABCD,
            span_id: 0x1234,
        };
        let ctx = {
            let serve = child_of(Some(remote), names::RPC_SERVE, "rpc");
            serve.context()
        };
        assert_eq!(ctx.trace_id, 0xABCD);
        let spans = snapshot();
        let serve = spans
            .iter()
            .find(|s| s.span_id == ctx.span_id)
            .expect("serve span recorded");
        assert_eq!(serve.parent_id, Some(0x1234));
        assert_eq!(serve.trace_id, 0xABCD);
    }

    #[test]
    fn disabled_tracing_records_nothing_and_carries_no_context() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        flush_thread();
        let before = recorded_total();
        set_enabled(false);
        {
            let _g = span("ghost", "test");
            assert!(current_context().is_none());
        }
        set_enabled(true);
        flush_thread();
        assert_eq!(recorded_total(), before);
    }

    #[test]
    fn overflow_drops_and_accounts() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        drain(); // start from an empty store
        set_capacity(4);
        let dropped_before = dropped_total();
        for i in 0..16 {
            let mut g = span("burst", "test");
            g.arg("i", i);
        }
        flush_thread();
        assert!(snapshot().len() <= 4);
        assert!(dropped_total() > dropped_before, "overflow was counted");
        set_capacity(1 << 16);
        drain();
    }

    #[test]
    fn chrome_export_is_loadable_json_shape() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        {
            let mut g = span("export \"quoted\"", "test");
            g.arg("k", "v\\w");
        }
        let spans = snapshot();
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("export \\\"quoted\\\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn recorded_counter_reaches_the_telemetry_registry() {
        let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _g = span("counted", "test");
        }
        flush_thread();
        let snap = aide_telemetry::global().snapshot();
        assert!(snap.counter("aide_trace_spans_recorded_total") >= 1);
    }
}
