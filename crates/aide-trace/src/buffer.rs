//! The span collector: bounded per-thread buffers drained into one
//! process-global store.
//!
//! The hot path (a span guard dropping) pushes into a thread-local `Vec`
//! and only touches the global mutex once per [`FLUSH_BATCH`] spans — or
//! when the thread exits, via the thread-local's destructor, so worker
//! threads that are joined before export never strand spans. The global
//! store is bounded: overflow drops the newest spans (never blocks a
//! hot path) and accounts the loss in `aide_trace_spans_dropped_total`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::span::SpanRecord;

/// Spans buffered per thread before a flush to the global store.
const FLUSH_BATCH: usize = 32;

/// Default bound on the global store.
const DEFAULT_CAPACITY: usize = 1 << 16;

struct Collector {
    spans: Mutex<Vec<SpanRecord>>,
    capacity: AtomicUsize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        spans: Mutex::new(Vec::new()),
        capacity: AtomicUsize::new(DEFAULT_CAPACITY),
        recorded: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

/// A thread-local holding pen whose destructor flushes, so spans on
/// short-lived threads (endpoint workers, daemon sessions) survive the
/// thread.
struct LocalBuf {
    spans: Vec<SpanRecord>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        flush_records(std::mem::take(&mut self.spans));
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf { spans: Vec::new() })
    };
}

fn flush_records(batch: Vec<SpanRecord>) {
    if batch.is_empty() {
        return;
    }
    let c = collector();
    let capacity = c.capacity.load(Ordering::Relaxed);
    let mut store = c.spans.lock().unwrap_or_else(|e| e.into_inner());
    let room = capacity.saturating_sub(store.len());
    let keep = batch.len().min(room);
    let dropped = batch.len() - keep;
    store.extend(batch.into_iter().take(keep));
    let len = store.len();
    drop(store);
    c.recorded.fetch_add(keep as u64, Ordering::Relaxed);
    let telemetry = aide_telemetry::global();
    telemetry
        .counter(aide_telemetry::names::TRACE_SPANS_RECORDED)
        .add(keep as u64);
    if dropped > 0 {
        c.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        telemetry
            .counter(aide_telemetry::names::TRACE_SPANS_DROPPED)
            .add(dropped as u64);
    }
    telemetry
        .gauge(aide_telemetry::names::TRACE_BUFFER_SPANS)
        .set(i64::try_from(len).unwrap_or(i64::MAX));
}

/// Accepts a completed span from a guard (crate-internal hot path).
pub(crate) fn record(span: SpanRecord) {
    LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        local.spans.push(span);
        if local.spans.len() >= FLUSH_BATCH {
            flush_records(std::mem::take(&mut local.spans));
        }
    });
}

/// Records a pre-built span directly — the emulator uses this to stamp
/// spans at *virtual* time, so emulated runs export the same trace shape
/// as live TCP runs. Ignored while tracing is disabled.
pub fn record_raw(span: SpanRecord) {
    if !crate::enabled() {
        return;
    }
    record(span);
}

/// Flushes the calling thread's buffered spans to the global store. Call
/// before [`snapshot`]/[`drain`] on the same thread; other threads flush
/// when their batch fills or when they exit.
pub fn flush_thread() {
    LOCAL.with(|l| flush_records(std::mem::take(&mut l.borrow_mut().spans)));
}

/// Flushes the calling thread, then removes and returns every collected
/// span (oldest first).
pub fn drain() -> Vec<SpanRecord> {
    flush_thread();
    let c = collector();
    let spans = std::mem::take(&mut *c.spans.lock().unwrap_or_else(|e| e.into_inner()));
    aide_telemetry::global()
        .gauge(aide_telemetry::names::TRACE_BUFFER_SPANS)
        .set(0);
    spans
}

/// Flushes the calling thread, then returns a copy of the collected
/// spans without clearing them (for tests that must not steal spans from
/// concurrent scenarios).
pub fn snapshot() -> Vec<SpanRecord> {
    flush_thread();
    collector()
        .spans
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Drops every collected span (the counters are unaffected).
pub fn clear() {
    drain();
}

/// Rebounds the global store. Spans beyond the new capacity are dropped
/// on the next flush, not retroactively.
pub fn set_capacity(capacity: usize) {
    collector()
        .capacity
        .store(capacity.max(1), Ordering::Relaxed);
}

/// Spans accepted into the global store over the process lifetime.
pub fn recorded_total() -> u64 {
    collector().recorded.load(Ordering::Relaxed)
}

/// Spans dropped on overflow over the process lifetime.
pub fn dropped_total() -> u64 {
    collector().dropped.load(Ordering::Relaxed)
}
