//! Span identity and the completed-span record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The portable part of a span: enough to parent a child span in another
/// process. This is what aide-rpc carries in the v3 frame header
/// (17 bytes: a presence flag plus two little-endian u64s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Identifies the whole causal tree (constant across processes).
    pub trace_id: u64,
    /// Identifies one span within the tree.
    pub span_id: u64,
}

/// A completed span as stored in the collector.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's identity.
    pub span_id: u64,
    /// The parent span, if any (`None` marks a trace root).
    pub parent_id: Option<u64>,
    /// Operation name (see [`crate::names`]).
    pub name: String,
    /// Coarse category, used as the Chrome `cat` field.
    pub cat: &'static str,
    /// Start timestamp in microseconds — wall clock since process trace
    /// origin for live spans, virtual time for emulator-stamped spans.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Process lane for the exporter ("client", "surrogate", ...): spans
    /// from different platform roles land in different Perfetto tracks
    /// even when they share one OS process.
    pub track: String,
    /// Thread lane within the track.
    pub thread: u64,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// Looks up an annotation by key.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl SpanContext {
    /// Mints a fresh root context (new trace id, new span id). Used by
    /// callers that build [`SpanRecord`]s by hand — the emulator stamps
    /// virtual-time spans this way via [`crate::record_raw`].
    pub fn fresh() -> Self {
        SpanContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        }
    }

    /// Mints a child context in the same trace.
    pub fn child(&self) -> Self {
        SpanContext {
            trace_id: self.trace_id,
            span_id: next_span_id(),
        }
    }
}

/// Monotonic id springs. Span and trace ids are salted with the OS
/// process id so two platform processes participating in one trace never
/// mint colliding span ids.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

fn salt() -> u64 {
    (std::process::id() as u64) << 40
}

/// Mints a fresh trace id.
pub(crate) fn next_trace_id() -> u64 {
    salt() | NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// Mints a fresh span id.
pub(crate) fn next_span_id() -> u64 {
    salt() | NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// Wall-clock microseconds since the process's trace origin. All live
/// spans in one process share this origin, so Chrome renders them on one
/// coherent timeline.
pub(crate) fn now_micros() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    let origin = ORIGIN.get_or_init(Instant::now);
    u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
}
