//! Trace-driven emulation of the AIDE distributed platform.
//!
//! The paper evaluates AIDE with two artifacts that share the same three
//! platform modules: a *prototype* (two modified JVMs) and an *emulator*
//! that "is able to repeatedly repartition an application" by replaying
//! recorded execution traces (§4). This crate is the emulator:
//!
//! * [`Trace`] / [`TraceEvent`] — the self-contained recording format
//!   (JSON-serializable for record-once / replay-many workflows).
//! * [`Recorder`] / [`record_program`] — capture a full event stream from
//!   an unconstrained single-VM run.
//! * [`Emulator`] — replays a trace under configurable constraints (heap
//!   size, WaveLAN link, 3.5× surrogate, policies, enhancements), driving
//!   the *same* [`aide_core::Monitor`] and partitioning modules as the
//!   prototype and stretching simulated time for remote interactions.
//! * [`sweep_memory_policies`] — the Figure 7 grid search over triggering
//!   thresholds, tolerances, and minimum-memory-freed fractions.
//!
//! # Examples
//!
//! Record a run, then replay it under a constrained heap:
//!
//! ```
//! use std::sync::Arc;
//! use aide_emu::{record_program, Emulator, EmulatorConfig};
//! use aide_vm::{MethodDef, Op, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.add_class("Main");
//! b.add_method(main, MethodDef::new("main", vec![Op::Work { micros: 1_000 }]));
//! let program = Arc::new(b.build(main, aide_vm::MethodId(0), 64, 4)?);
//!
//! let trace = record_program("tiny", program, 8 << 20)?;
//! let report = Emulator::new(EmulatorConfig::paper_memory(6 << 20)).replay(&trace);
//! assert!(report.completed);
//! # Ok::<(), aide_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emulator;
mod multi;
mod netlink;
mod record;
mod sweep;
mod trace;

pub use emulator::{
    EmuChaos, EmuFailover, EmuRemoteStats, EmulatedOffload, Emulator, EmulatorConfig,
    EmulatorReport, FailureSchedule,
};
pub use multi::{
    Handoff, HandoffStrategy, MultiReport, MultiSurrogateConfig, MultiSurrogateEmulator,
    SurrogateSpec, SurrogateUse,
};
pub use netlink::EmuNet;
pub use record::{record_program, record_program_in_mode, Recorder};
pub use sweep::{best_point, sweep_memory_policies, PolicyGrid, PolicyParams, SweepPoint};
pub use trace::{ClassMeta, Trace, TraceEvent};
