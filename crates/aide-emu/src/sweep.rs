//! Policy-parameter sweeps (the experiment behind Figure 7).
//!
//! "The partition triggering threshold was varied from when 2% to 50% of
//! memory remained free, the tolerance to low-memory signals was varied
//! from one to three events, and the minimum amount of memory to free was
//! varied from 10% to 80%." The emulator's repeatable replays make this a
//! grid search over [`EmulatorConfig`] variants.

use serde::{Deserialize, Serialize};

use aide_core::{PolicyKind, TriggerConfig};

use crate::emulator::{Emulator, EmulatorConfig, EmulatorReport};
use crate::trace::Trace;

/// One memory-policy parameter combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Trigger when less than this fraction of memory remains free.
    pub trigger_free_fraction: f64,
    /// Successive low-memory reports required (tolerance).
    pub tolerance: u32,
    /// Minimum fraction of the heap a partitioning must free.
    pub min_free_fraction: f64,
}

impl std::fmt::Display for PolicyParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trigger<{:.0}% x{} free>={:.0}%",
            self.trigger_free_fraction * 100.0,
            self.tolerance,
            self.min_free_fraction * 100.0
        )
    }
}

/// The grid the paper sweeps in Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyGrid {
    /// Trigger thresholds (fraction of memory still free).
    pub trigger_free: Vec<f64>,
    /// Tolerances (successive low-memory reports).
    pub tolerance: Vec<u32>,
    /// Minimum memory-freed fractions.
    pub min_free: Vec<f64>,
}

impl Default for PolicyGrid {
    fn default() -> Self {
        PolicyGrid {
            trigger_free: vec![0.02, 0.05, 0.10, 0.20, 0.35, 0.50],
            tolerance: vec![1, 2, 3],
            min_free: vec![0.10, 0.20, 0.40, 0.60, 0.80],
        }
    }
}

impl PolicyGrid {
    /// Enumerates every parameter combination.
    pub fn combinations(&self) -> Vec<PolicyParams> {
        let mut out = Vec::new();
        for &t in &self.trigger_free {
            for &tol in &self.tolerance {
                for &mf in &self.min_free {
                    out.push(PolicyParams {
                        trigger_free_fraction: t,
                        tolerance: tol,
                        min_free_fraction: mf,
                    });
                }
            }
        }
        out
    }
}

/// A sweep result: the parameters and the replay they produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The policy parameters of this point.
    pub params: PolicyParams,
    /// The replay under those parameters.
    pub report: EmulatorReport,
}

/// Replays `trace` under every combination in `grid`, holding the rest of
/// `base` fixed.
pub fn sweep_memory_policies(
    trace: &Trace,
    base: EmulatorConfig,
    grid: &PolicyGrid,
) -> Vec<SweepPoint> {
    grid.combinations()
        .into_iter()
        .map(|params| {
            let mut cfg = base.clone();
            cfg.trigger = TriggerConfig {
                low_free_fraction: params.trigger_free_fraction,
                // Barren cycles count as pressure up to the trigger level
                // (at high thresholds any barren cycle is pressure).
                barren_concern_fraction: params.trigger_free_fraction.max(0.10),
                consecutive_reports: params.tolerance,
            };
            cfg.policy = PolicyKind::Memory {
                min_free_fraction: params.min_free_fraction,
            };
            let report = Emulator::new(cfg).replay(trace);
            SweepPoint { params, report }
        })
        .collect()
}

/// Picks the completed sweep point with the lowest total time; falls back
/// to `None` when every combination failed (OOM everywhere).
pub fn best_point(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.report.completed && p.report.offloaded())
        .min_by(|a, b| {
            a.report
                .total_seconds()
                .partial_cmp(&b.report.total_seconds())
                .expect("times are finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_enumerates_cartesian_product() {
        let grid = PolicyGrid::default();
        let combos = grid.combinations();
        assert_eq!(combos.len(), 6 * 3 * 5);
        // All combinations distinct.
        for (i, a) in combos.iter().enumerate() {
            for b in combos.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn params_display_is_readable() {
        let p = PolicyParams {
            trigger_free_fraction: 0.05,
            tolerance: 3,
            min_free_fraction: 0.20,
        };
        assert_eq!(p.to_string(), "trigger<5% x3 free>=20%");
    }

    #[test]
    fn small_grid_is_supported() {
        let grid = PolicyGrid {
            trigger_free: vec![0.05],
            tolerance: vec![1],
            min_free: vec![0.2, 0.4],
        };
        assert_eq!(grid.combinations().len(), 2);
    }
}
