//! Multi-surrogate offloading (paper §2: "If the necessary resources for a
//! client are not available at the closest surrogate, multiple surrogates
//! could be used by the client").
//!
//! This extension replays a trace against a *fleet* of surrogates with
//! individual CPU speeds, link parameters, and heap capacities. When the
//! memory trigger fires, the partitioning modules select what to offload
//! exactly as in the two-machine platform; the *placement* step then packs
//! the offloaded classes onto surrogates in preference order (lowest
//! round-trip latency first, as the paper suggests clients choose
//! surrogates), spilling to the next surrogate when a heap fills up.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use aide_core::{decide, Monitor, NodeKey, TriggerConfig};
use aide_graph::{CommParams, MemoryPolicy, ResourceSnapshot, Side};
use aide_vm::{
    native_requires_client, ClassId, GcReport, Interaction, InteractionKind, RuntimeHooks,
};

use crate::trace::{Trace, TraceEvent};

/// One surrogate in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateSpec {
    /// Name for reports.
    pub name: String,
    /// CPU speed relative to the client.
    pub speed: f64,
    /// Link between the client and this surrogate.
    pub comm: CommParams,
    /// Heap capacity this surrogate offers the client, in bytes.
    pub heap: u64,
}

/// What to do with objects hosted on the old surrogate when the user
/// moves out of its region (paper §8 "Combine offloading and mobility":
/// "should references continue to be sent to the first surrogate, or
/// should the objects on the first surrogate be migrated to the second
/// surrogate?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandoffStrategy {
    /// Keep the objects where they are and pay the (now larger) latency.
    KeepRemote,
    /// Migrate everything to the new nearby surrogate.
    MigrateAll,
}

/// A mobility event: at `at_event` the client moves — every existing link's
/// round-trip time is multiplied by `latency_penalty` and a fresh nearby
/// surrogate joins the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Handoff {
    /// Trace-event index at which the move happens.
    pub at_event: usize,
    /// Multiplier applied to the RTT of every pre-move surrogate.
    pub latency_penalty: f64,
    /// The surrogate that is nearby after the move.
    pub new_surrogate: SurrogateSpec,
    /// What to do with already-hosted objects.
    pub strategy: HandoffStrategy,
}

/// Configuration of a multi-surrogate replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSurrogateConfig {
    /// Client heap capacity in bytes.
    pub client_heap: u64,
    /// The surrogate fleet (need not be sorted; placement prefers lower
    /// round-trip latency).
    pub surrogates: Vec<SurrogateSpec>,
    /// Memory trigger.
    pub trigger: TriggerConfig,
    /// Minimum heap fraction an acceptable partitioning must free.
    pub min_free_fraction: f64,
    /// Optional mobility event (None = the client stays put).
    pub handoff: Option<Handoff>,
}

/// Per-surrogate usage in a [`MultiReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateUse {
    /// The surrogate's name.
    pub name: String,
    /// CPU seconds executed there (already divided by its speed).
    pub cpu_seconds: f64,
    /// Link seconds spent talking to it.
    pub comm_seconds: f64,
    /// Bytes of client data it currently hosts.
    pub bytes_hosted: u64,
    /// Classes currently placed there.
    pub classes_hosted: usize,
}

/// The result of a multi-surrogate replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiReport {
    /// `false` if the client ran out of memory and the fleet could not
    /// absorb the spill.
    pub completed: bool,
    /// CPU seconds on the client.
    pub client_cpu_seconds: f64,
    /// Usage per surrogate, in fleet order.
    pub surrogates: Vec<SurrogateUse>,
    /// Client-only baseline, in seconds.
    pub baseline_seconds: f64,
    /// Offload transfer seconds (all links).
    pub transfer_seconds: f64,
}

impl MultiReport {
    /// Total completion time (serial execution).
    pub fn total_seconds(&self) -> f64 {
        self.client_cpu_seconds
            + self.transfer_seconds
            + self
                .surrogates
                .iter()
                .map(|s| s.cpu_seconds + s.comm_seconds)
                .sum::<f64>()
    }

    /// Number of surrogates actually hosting data.
    pub fn surrogates_used(&self) -> usize {
        self.surrogates
            .iter()
            .filter(|s| s.bytes_hosted > 0)
            .count()
    }
}

/// Replays `trace` against a surrogate fleet.
#[derive(Debug)]
pub struct MultiSurrogateEmulator {
    config: MultiSurrogateConfig,
}

impl MultiSurrogateEmulator {
    /// Creates an emulator over the given fleet.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty.
    pub fn new(config: MultiSurrogateConfig) -> Self {
        assert!(
            !config.surrogates.is_empty(),
            "a multi-surrogate replay needs at least one surrogate"
        );
        MultiSurrogateEmulator { config }
    }

    /// Replays the trace; on memory pressure, offloads across the fleet.
    #[allow(clippy::too_many_lines)]
    pub fn replay(&self, trace: &Trace) -> MultiReport {
        let cfg = &self.config;
        let program = Arc::new(trace.skeleton_program().expect("valid trace metadata"));
        let monitor = Monitor::new(program, cfg.trigger, Default::default());
        let policy = MemoryPolicy::new(cfg.min_free_fraction);

        // The fleet is mutable: a mobility handoff degrades old links and
        // adds a new nearby surrogate.
        let mut fleet: Vec<SurrogateSpec> = cfg.surrogates.clone();

        // Placement preference: lowest-latency surrogate first.
        let mut order: Vec<usize> = (0..fleet.len()).collect();
        order.sort_by(|&a, &b| {
            fleet[a]
                .comm
                .rtt_seconds
                .partial_cmp(&fleet[b].comm.rtt_seconds)
                .expect("finite rtt")
        });

        let mut class_host: HashMap<ClassId, usize> = HashMap::new(); // class -> surrogate
        let mut class_bytes: HashMap<ClassId, u64> = HashMap::new(); // client-side live bytes
        let capacity = fleet.len() + usize::from(cfg.handoff.is_some());
        let mut hosted_bytes: Vec<u64> = vec![0; capacity];
        let mut hosted_classes: Vec<usize> = vec![0; capacity];
        let mut client_live = 0u64;
        let mut client_cpu = 0.0f64;
        let mut cpu: Vec<f64> = vec![0.0; capacity];
        let mut comm: Vec<f64> = vec![0.0; capacity];
        let mut transfer = 0.0f64;
        let mut completed = true;
        let mut emu_cycle = 0u64;
        let mut offloads = 0u32;

        let try_offload = |monitor: &Monitor,
                           fleet: &[SurrogateSpec],
                           order: &[usize],
                           client_live: &mut u64,
                           class_host: &mut HashMap<ClassId, usize>,
                           class_bytes: &mut HashMap<ClassId, u64>,
                           hosted_bytes: &mut Vec<u64>,
                           hosted_classes: &mut Vec<usize>,
                           transfer: &mut f64|
         -> bool {
            let (graph, keys) = monitor.snapshot();
            let snapshot =
                ResourceSnapshot::new(cfg.client_heap, (*client_live).min(cfg.client_heap));
            let decision = decide(graph, snapshot, &policy);
            let Some(selection) = decision.selection else {
                return false;
            };
            // Pack offloaded classes onto surrogates, latency-first.
            for node in selection.partitioning.nodes_on(Side::Surrogate) {
                let NodeKey::Class(c) = keys[node.index()] else {
                    continue;
                };
                if class_host.contains_key(&c) {
                    continue;
                }
                let bytes = class_bytes.get(&c).copied().unwrap_or(0);
                let Some(&target) = order
                    .iter()
                    .find(|&&s| hosted_bytes[s] + bytes <= fleet[s].heap)
                else {
                    continue; // no surrogate can take this class; skip it
                };
                class_host.insert(c, target);
                hosted_bytes[target] += bytes;
                hosted_classes[target] += 1;
                *client_live -= bytes.min(*client_live);
                class_bytes.insert(c, 0);
                *transfer += fleet[target].comm.transfer_seconds(bytes);
            }
            true
        };

        'replay: for (idx, event) in trace.events.iter().enumerate() {
            // Mobility: the client moves out of the old surrogates' region.
            if let Some(handoff) = &cfg.handoff {
                if handoff.at_event == idx {
                    for spec in fleet.iter_mut() {
                        spec.comm = aide_graph::CommParams::new(
                            spec.comm.bandwidth_bps,
                            spec.comm.rtt_seconds * handoff.latency_penalty,
                        );
                    }
                    fleet.push(handoff.new_surrogate.clone());
                    let new_idx = fleet.len() - 1;
                    order = (0..fleet.len()).collect();
                    order.sort_by(|&a, &b| {
                        fleet[a]
                            .comm
                            .rtt_seconds
                            .partial_cmp(&fleet[b].comm.rtt_seconds)
                            .expect("finite rtt")
                    });
                    if handoff.strategy == HandoffStrategy::MigrateAll {
                        // Move every hosted class to the new surrogate,
                        // paying the transfer on its (nearby) link.
                        for (_, host) in class_host.iter_mut() {
                            if *host != new_idx {
                                let old = *host;
                                // Move the old surrogate's entire hosting in
                                // one pass below; reassign here.
                                *host = new_idx;
                                let _ = old;
                            }
                        }
                        let moved: u64 = hosted_bytes[..new_idx].iter().sum();
                        let moved_classes: usize = hosted_classes[..new_idx].iter().sum();
                        for b in hosted_bytes[..new_idx].iter_mut() {
                            *b = 0;
                        }
                        for c in hosted_classes[..new_idx].iter_mut() {
                            *c = 0;
                        }
                        hosted_bytes[new_idx] += moved;
                        hosted_classes[new_idx] += moved_classes;
                        transfer += fleet[new_idx].comm.transfer_seconds(moved);
                    }
                }
            }
            match event {
                TraceEvent::Work { class, micros } => {
                    match class_host.get(class) {
                        Some(&s) => cpu[s] += micros / 1e6 / fleet[s].speed,
                        None => client_cpu += micros / 1e6,
                    }
                    monitor.on_work(*class, *micros);
                }
                TraceEvent::Interaction {
                    caller,
                    callee,
                    target,
                    invocation,
                    bytes,
                } => {
                    let a = class_host.get(caller).copied();
                    let b = class_host.get(callee).copied();
                    if a != b {
                        // Crossing machines: price on the remote end's link;
                        // surrogate-to-surrogate hops traverse both links
                        // (the paper's "surrogates could offload to other
                        // surrogates" topology is a client-routed star).
                        for side in [a, b].into_iter().flatten() {
                            comm[side] += fleet[side].comm.interaction_seconds(*bytes);
                        }
                    }
                    monitor.on_interaction(Interaction {
                        caller: *caller,
                        callee: *callee,
                        target: *target,
                        kind: if *invocation {
                            InteractionKind::Invocation
                        } else {
                            InteractionKind::FieldAccess
                        },
                        bytes: *bytes,
                        remote: a != b,
                    });
                }
                TraceEvent::Alloc {
                    class,
                    object,
                    bytes,
                } => {
                    match class_host.get(class) {
                        Some(&s) => hosted_bytes[s] += bytes,
                        None => {
                            *class_bytes.entry(*class).or_default() += bytes;
                            client_live += bytes;
                        }
                    }
                    monitor.on_alloc(*class, *object, *bytes);
                    if client_live > cfg.client_heap {
                        if offloads == 0
                            && try_offload(
                                &monitor,
                                &fleet,
                                &order,
                                &mut client_live,
                                &mut class_host,
                                &mut class_bytes,
                                &mut hosted_bytes,
                                &mut hosted_classes,
                                &mut transfer,
                            )
                        {
                            offloads += 1;
                        }
                        if client_live > cfg.client_heap {
                            completed = false;
                            break 'replay;
                        }
                    }
                }
                TraceEvent::Free {
                    class,
                    objects,
                    bytes,
                } => {
                    match class_host.get(class) {
                        Some(&s) => {
                            hosted_bytes[s] -= (*bytes).min(hosted_bytes[s]);
                        }
                        None => {
                            let entry = class_bytes.entry(*class).or_default();
                            let reclaim = (*bytes).min(*entry);
                            *entry -= reclaim;
                            client_live -= reclaim.min(client_live);
                        }
                    }
                    monitor.on_free(*class, *objects, *bytes);
                }
                TraceEvent::Native {
                    caller,
                    kind,
                    work_micros,
                    bytes,
                } => {
                    let host = class_host.get(caller).copied();
                    let client_bound = native_requires_client(*kind, false);
                    match host {
                        Some(s) if client_bound => {
                            comm[s] += fleet[s].comm.interaction_seconds(*bytes);
                            client_cpu += f64::from(*work_micros) / 1e6;
                        }
                        Some(s) => cpu[s] += f64::from(*work_micros) / 1e6 / fleet[s].speed,
                        None => client_cpu += f64::from(*work_micros) / 1e6,
                    }
                    monitor.on_native(*caller, *kind, *work_micros, *bytes, false);
                }
                TraceEvent::StaticAccess {
                    accessor,
                    class,
                    bytes,
                } => {
                    if let Some(&s) = class_host.get(accessor) {
                        comm[s] += fleet[s].comm.interaction_seconds(*bytes);
                    }
                    monitor.on_static_access(*accessor, *class, *bytes, false);
                }
                TraceEvent::Gc { report } => {
                    emu_cycle += 1;
                    let used = client_live.min(cfg.client_heap);
                    monitor.on_gc(&GcReport {
                        cycle: emu_cycle,
                        capacity: cfg.client_heap,
                        used_after: used,
                        free_after: cfg.client_heap - used,
                        freed_objects: report.freed_objects,
                        freed_bytes: report.freed_bytes,
                        duration_micros: report.duration_micros,
                    });
                    if monitor.memory_triggered() && offloads == 0 {
                        if try_offload(
                            &monitor,
                            &fleet,
                            &order,
                            &mut client_live,
                            &mut class_host,
                            &mut class_bytes,
                            &mut hosted_bytes,
                            &mut hosted_classes,
                            &mut transfer,
                        ) {
                            offloads += 1;
                        }
                        monitor.reset_memory_trigger();
                    }
                }
            }
        }

        MultiReport {
            completed,
            client_cpu_seconds: client_cpu,
            surrogates: fleet
                .iter()
                .enumerate()
                .map(|(i, s)| SurrogateUse {
                    name: s.name.clone(),
                    cpu_seconds: cpu[i],
                    comm_seconds: comm[i],
                    bytes_hosted: hosted_bytes[i],
                    classes_hosted: hosted_classes[i],
                })
                .collect(),
            baseline_seconds: trace.total_work_seconds(),
            transfer_seconds: transfer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::record_program;
    use aide_vm::{MethodDef, MethodId, NativeKind, Op, ProgramBuilder, Reg};

    /// A program whose bulk data (three distinct buffer classes) exceeds
    /// any single small surrogate.
    fn bulky_program(buffers_per_class: u32, bytes: u32) -> Arc<aide_vm::Program> {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let ui = b.add_native_class("Ui");
        let classes = [
            b.add_class("BufA"),
            b.add_class("BufB"),
            b.add_class("BufC"),
        ];
        b.add_method(
            ui,
            MethodDef::new(
                "tick",
                vec![Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 10,
                    arg_bytes: 32,
                    ret_bytes: 0,
                }],
            ),
        );
        let mut body = vec![Op::New {
            class: ui,
            scalar_bytes: 100,
            ref_slots: 0,
            dst: Reg(0),
        }];
        body.push(Op::PutSlot {
            slot: 0,
            src: Reg(0),
        });
        let mut slot = 1u16;
        for &class in &classes {
            for _ in 0..buffers_per_class {
                body.push(Op::New {
                    class,
                    scalar_bytes: bytes,
                    ref_slots: 0,
                    dst: Reg(1),
                });
                body.push(Op::PutSlot { slot, src: Reg(1) });
                body.push(Op::Work { micros: 200 });
                slot += 1;
            }
        }
        body.push(Op::Repeat {
            n: 40,
            body: vec![
                Op::GetSlot {
                    slot: 0,
                    dst: Reg(2),
                },
                Op::Call {
                    obj: Reg(2),
                    class: ui,
                    method: MethodId(0),
                    arg_bytes: 8,
                    ret_bytes: 0,
                    args: vec![],
                },
                Op::Work { micros: 500 },
            ],
        });
        let m = b.add_method(main, MethodDef::new("main", body));
        Arc::new(b.build(main, m, 64, slot + 4).unwrap())
    }

    fn fleet(heaps: &[u64]) -> MultiSurrogateConfig {
        MultiSurrogateConfig {
            client_heap: 256 << 10,
            surrogates: heaps
                .iter()
                .enumerate()
                .map(|(i, &heap)| SurrogateSpec {
                    name: format!("s{i}"),
                    speed: 3.5,
                    comm: CommParams::new(11.0e6, 2.4e-3 * (i as f64 + 1.0)),
                    heap,
                })
                .collect(),
            trigger: TriggerConfig::default(),
            min_free_fraction: 0.20,
            handoff: None,
        }
    }

    #[test]
    fn single_big_surrogate_hosts_everything() {
        // 3 classes x 10 x 20 KB = 600 KB of buffers in a 256 KB client.
        let trace = record_program("bulky", bulky_program(10, 20_000), 64 << 20).unwrap();
        let report = MultiSurrogateEmulator::new(fleet(&[8 << 20])).replay(&trace);
        assert!(report.completed);
        assert_eq!(report.surrogates_used(), 1);
        assert!(report.surrogates[0].bytes_hosted > 300_000);
    }

    #[test]
    fn overflow_spills_to_the_second_surrogate() {
        let trace = record_program("bulky", bulky_program(10, 20_000), 64 << 20).unwrap();
        // The closest surrogate can host only one class's worth.
        let report = MultiSurrogateEmulator::new(fleet(&[220 << 10, 8 << 20])).replay(&trace);
        assert!(report.completed);
        assert_eq!(
            report.surrogates_used(),
            2,
            "spill must reach the second surrogate: {:?}",
            report.surrogates
        );
        // The low-latency surrogate is preferred (filled first).
        assert!(report.surrogates[0].bytes_hosted > 0);
        assert!(report.surrogates[0].bytes_hosted <= 220 << 10);
    }

    #[test]
    fn placement_prefers_low_latency() {
        let trace = record_program("bulky", bulky_program(6, 20_000), 64 << 20).unwrap();
        // Two surrogates, second has lower latency (reversed rtt order).
        let mut cfg = fleet(&[8 << 20, 8 << 20]);
        cfg.surrogates[0].comm = CommParams::new(11.0e6, 10.0e-3);
        cfg.surrogates[1].comm = CommParams::new(11.0e6, 1.0e-3);
        let report = MultiSurrogateEmulator::new(cfg).replay(&trace);
        assert!(report.completed);
        assert!(
            report.surrogates[1].bytes_hosted >= report.surrogates[0].bytes_hosted,
            "low-latency surrogate hosts the data: {:?}",
            report.surrogates
        );
    }

    #[test]
    fn fleet_too_small_means_oom() {
        let trace = record_program("bulky", bulky_program(10, 20_000), 64 << 20).unwrap();
        let report = MultiSurrogateEmulator::new(fleet(&[32 << 10])).replay(&trace);
        assert!(!report.completed, "a 32 KB surrogate cannot absorb 600 KB");
    }

    #[test]
    #[should_panic(expected = "at least one surrogate")]
    fn empty_fleet_is_rejected() {
        let _ = MultiSurrogateEmulator::new(MultiSurrogateConfig {
            client_heap: 1 << 20,
            surrogates: vec![],
            trigger: TriggerConfig::default(),
            min_free_fraction: 0.2,
            handoff: None,
        });
    }

    #[test]
    fn unconstrained_client_never_offloads() {
        let trace = record_program("bulky", bulky_program(4, 10_000), 64 << 20).unwrap();
        let mut cfg = fleet(&[8 << 20]);
        cfg.client_heap = 64 << 20;
        let report = MultiSurrogateEmulator::new(cfg).replay(&trace);
        assert!(report.completed);
        assert_eq!(report.surrogates_used(), 0);
        assert!((report.total_seconds() - report.baseline_seconds).abs() < 1e-6);
    }
}

#[cfg(test)]
mod handoff_tests {
    use super::*;
    use crate::record::record_program;
    use aide_vm::{MethodDef, MethodId, NativeKind, Op, ProgramBuilder, Reg};

    /// Bulk data plus a long chatty tail: after the user moves, the old
    /// surrogate is far away, so migrating pays off over a long tail.
    fn roaming_program() -> Arc<aide_vm::Program> {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let ui = b.add_native_class("Ui");
        let buf = b.add_class("Buf");
        let touch = b.add_method(
            ui,
            MethodDef::new(
                "touch",
                vec![Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 10,
                    arg_bytes: 16,
                    ret_bytes: 0,
                }],
            ),
        );
        let mut body = vec![Op::New {
            class: ui,
            scalar_bytes: 100,
            ref_slots: 0,
            dst: Reg(0),
        }];
        body.push(Op::PutSlot {
            slot: 0,
            src: Reg(0),
        });
        for i in 0..20u16 {
            body.push(Op::New {
                class: buf,
                scalar_bytes: 20_000,
                ref_slots: 0,
                dst: Reg(1),
            });
            body.push(Op::PutSlot {
                slot: 1 + i,
                src: Reg(1),
            });
        }
        // Long tail of client<->buffer interactions.
        body.push(Op::Repeat {
            n: 2_000,
            body: vec![
                Op::GetSlot {
                    slot: 1,
                    dst: Reg(2),
                },
                Op::Read {
                    obj: Reg(2),
                    bytes: 64,
                },
                Op::GetSlot {
                    slot: 0,
                    dst: Reg(3),
                },
                Op::Call {
                    obj: Reg(3),
                    class: ui,
                    method: touch,
                    arg_bytes: 8,
                    ret_bytes: 0,
                    args: vec![],
                },
                Op::Work { micros: 300 },
            ],
        });
        let m = b.add_method(main, MethodDef::new("main", body));
        Arc::new(b.build(main, m, 64, 32).unwrap())
    }

    fn roaming_config(strategy: HandoffStrategy, at_event: usize) -> MultiSurrogateConfig {
        MultiSurrogateConfig {
            client_heap: 256 << 10,
            surrogates: vec![SurrogateSpec {
                name: "home-surrogate".into(),
                speed: 3.5,
                comm: CommParams::new(11.0e6, 2.4e-3),
                heap: 8 << 20,
            }],
            trigger: TriggerConfig::default(),
            min_free_fraction: 0.20,
            handoff: Some(Handoff {
                at_event,
                latency_penalty: 10.0, // the old room is now far away
                new_surrogate: SurrogateSpec {
                    name: "new-room-server".into(),
                    speed: 3.5,
                    comm: CommParams::new(11.0e6, 2.4e-3),
                    heap: 8 << 20,
                },
                strategy,
            }),
        }
    }

    #[test]
    fn migrating_beats_keeping_when_the_tail_is_long() {
        let trace = record_program("roaming", roaming_program(), 64 << 20).unwrap();
        // Hand off early: a long chatty tail follows.
        let at = trace.len() / 4;
        let keep = MultiSurrogateEmulator::new(roaming_config(HandoffStrategy::KeepRemote, at))
            .replay(&trace);
        let migrate = MultiSurrogateEmulator::new(roaming_config(HandoffStrategy::MigrateAll, at))
            .replay(&trace);
        assert!(keep.completed && migrate.completed);
        assert!(
            migrate.total_seconds() < keep.total_seconds(),
            "with a long tail, migrating wins: {} vs {}",
            migrate.total_seconds(),
            keep.total_seconds()
        );
        // After migration, the new surrogate hosts the data.
        assert!(migrate.surrogates[1].bytes_hosted > 0);
        assert_eq!(migrate.surrogates[0].bytes_hosted, 0);
    }

    #[test]
    fn keeping_beats_migrating_when_the_run_is_almost_over() {
        let trace = record_program("roaming", roaming_program(), 64 << 20).unwrap();
        // Hand off at the very end: migrating pays for a transfer with no
        // remaining traffic to amortize it.
        let at = trace.len() - 2;
        let keep = MultiSurrogateEmulator::new(roaming_config(HandoffStrategy::KeepRemote, at))
            .replay(&trace);
        let migrate = MultiSurrogateEmulator::new(roaming_config(HandoffStrategy::MigrateAll, at))
            .replay(&trace);
        assert!(keep.completed && migrate.completed);
        assert!(
            keep.total_seconds() <= migrate.total_seconds(),
            "with no tail, keeping wins: {} vs {}",
            keep.total_seconds(),
            migrate.total_seconds()
        );
    }

    #[test]
    fn handoff_without_prior_offload_is_a_no_op() {
        let trace = record_program("roaming", roaming_program(), 64 << 20).unwrap();
        let mut cfg = roaming_config(HandoffStrategy::MigrateAll, trace.len() / 2);
        cfg.client_heap = 64 << 20; // no pressure, nothing hosted
        let report = MultiSurrogateEmulator::new(cfg).replay(&trace);
        assert!(report.completed);
        assert_eq!(report.surrogates_used(), 0);
    }
}
