//! The trace recorder: a [`RuntimeHooks`] implementation that captures the
//! full event stream of a run, plus a convenience driver that records an
//! application "running to completion on a single PC" (paper §4).

use std::sync::Arc;

use parking_lot::Mutex;

use aide_vm::{
    ClassId, GcReport, Interaction, InteractionKind, Machine, NativeKind, ObjectId, Program,
    RuntimeHooks, VmConfig, VmResult,
};

use crate::trace::{Trace, TraceEvent};

/// Records every VM event into an in-memory trace.
#[derive(Debug)]
pub struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            events: Mutex::new(Vec::new()),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Consumes the recorder, producing the trace body.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl RuntimeHooks for Recorder {
    fn on_interaction(&self, event: Interaction) {
        self.events.lock().push(TraceEvent::Interaction {
            caller: event.caller,
            callee: event.callee,
            target: event.target,
            invocation: event.kind == InteractionKind::Invocation,
            bytes: event.bytes,
        });
    }

    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        self.events.lock().push(TraceEvent::Alloc {
            class,
            object,
            bytes,
        });
    }

    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        self.events.lock().push(TraceEvent::Free {
            class,
            objects,
            bytes,
        });
    }

    fn on_work(&self, class: ClassId, micros: f64) {
        self.events.lock().push(TraceEvent::Work { class, micros });
    }

    fn on_native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        bytes: u64,
        _remote: bool,
    ) {
        self.events.lock().push(TraceEvent::Native {
            caller,
            kind,
            work_micros,
            bytes,
        });
    }

    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, _remote: bool) {
        self.events.lock().push(TraceEvent::StaticAccess {
            accessor,
            class,
            bytes,
        });
    }

    fn on_gc(&self, report: &GcReport) {
        self.events.lock().push(TraceEvent::Gc { report: *report });
    }
}

/// Runs `program` to completion on a single, unconstrained client VM with
/// the recorder attached, returning the trace.
///
/// `heap_capacity` should be generous (the paper recorded on a PC): the
/// point of trace-driven emulation is to re-impose constraints afterwards.
///
/// # Errors
///
/// Propagates any [`aide_vm::VmError`] from the recording run (e.g. an
/// out-of-memory failure if `heap_capacity` was too small after all).
pub fn record_program(
    app_name: &str,
    program: Arc<Program>,
    heap_capacity: u64,
) -> VmResult<Trace> {
    record_program_in_mode(app_name, program, heap_capacity, None)
}

/// Like [`record_program`], but pinning which interpreter executes the run
/// (`None` keeps the machine's environment-selected default).
///
/// Traces are interpreter-neutral by construction: the recorder sees only
/// the hook event stream, and inline-cache state (hit/miss counters, cached
/// localities) has no [`TraceEvent`] representation — so a trace recorded
/// under the flat register VM is bit-identical to one recorded under the
/// legacy tree-walker. The `mode_identical` test below holds that invariant.
///
/// # Errors
///
/// Propagates any [`aide_vm::VmError`] from the recording run.
pub fn record_program_in_mode(
    app_name: &str,
    program: Arc<Program>,
    heap_capacity: u64,
    mode: Option<aide_vm::ExecMode>,
) -> VmResult<Trace> {
    let recorder = Arc::new(Recorder::new());
    let mut machine = Machine::with_hooks(
        program.clone(),
        VmConfig::client(heap_capacity),
        recorder.clone(),
    );
    if let Some(mode) = mode {
        machine.set_exec_mode(mode);
    }
    machine.run_entry()?;
    let events = {
        // The machine is done; we hold the only other Arc.
        let recorder = Arc::try_unwrap(recorder).unwrap_or_else(|arc| Recorder {
            events: Mutex::new(arc.events.lock().clone()),
        });
        recorder.into_events()
    };
    let mut trace = Trace::new(app_name, heap_capacity, Trace::class_meta_of(&program));
    trace.events = events;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_vm::{MethodDef, MethodId, Op, ProgramBuilder, Reg};

    fn program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let data = b.add_class("Data");
        b.add_method(
            main,
            MethodDef::new(
                "main",
                vec![
                    Op::New {
                        class: data,
                        scalar_bytes: 1_000,
                        ref_slots: 0,
                        dst: Reg(0),
                    },
                    Op::Work { micros: 100 },
                    Op::Repeat {
                        n: 5,
                        body: vec![Op::Read {
                            obj: Reg(0),
                            bytes: 16,
                        }],
                    },
                    Op::Native {
                        kind: NativeKind::Math,
                        work_micros: 7,
                        arg_bytes: 8,
                        ret_bytes: 8,
                    },
                ],
            ),
        );
        Arc::new(b.build(main, MethodId(0), 64, 2).unwrap())
    }

    #[test]
    fn recording_captures_the_event_stream_in_order() {
        let trace = record_program("mini", program(), 8 << 20).unwrap();
        assert_eq!(trace.app, "mini");
        assert_eq!(trace.classes.len(), 2);
        // 2 allocs (entry + data), 1 work, 5 reads, 1 native.
        let allocs = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Alloc { .. }))
            .count();
        assert_eq!(allocs, 2);
        assert_eq!(trace.interaction_count(), 5);
        let natives = trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Native { .. }))
            .count();
        assert_eq!(natives, 1);
        // Work precedes the reads in program order.
        let work_pos = trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::Work { .. }))
            .unwrap();
        let first_read = trace
            .events
            .iter()
            .position(|e| matches!(e, TraceEvent::Interaction { .. }))
            .unwrap();
        assert!(work_pos < first_read);
    }

    #[test]
    fn recorded_trace_round_trips_through_json() {
        let trace = record_program("mini", program(), 8 << 20).unwrap();
        let back = Trace::from_json(&trace.to_json().unwrap()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn recording_oom_propagates() {
        let result = record_program("toosmall", program(), 600);
        assert!(result.is_err());
    }

    #[test]
    fn traces_are_identical_across_interpreters() {
        use aide_vm::ExecMode;
        let flat =
            record_program_in_mode("mini", program(), 8 << 20, Some(ExecMode::Flat)).unwrap();
        let legacy =
            record_program_in_mode("mini", program(), 8 << 20, Some(ExecMode::Legacy)).unwrap();
        assert_eq!(
            flat, legacy,
            "inline-cache state must not leak into recorded traces"
        );
        assert_eq!(flat.to_json().unwrap(), legacy.to_json().unwrap());
    }
}
