//! Execution traces: the recording format the emulator replays.
//!
//! "The traces for an application were extracted from the prototype while
//! running the application to completion on a single PC" (paper §4). A
//! [`Trace`] is self-contained: alongside the event stream it carries the
//! per-class metadata (native/static/array annotations) the monitoring and
//! partitioning modules need, so a trace file can be replayed without the
//! original program.

use serde::{Deserialize, Serialize};

use aide_vm::{
    ClassDef, ClassId, EntryPoint, GcReport, MethodDef, NativeKind, ObjectId, Program, VmResult,
};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An inter-class interaction (invocation or field access).
    Interaction {
        /// Class whose code performed the interaction.
        caller: ClassId,
        /// Class of the target.
        callee: ClassId,
        /// Target object (absent for static-method invocations).
        target: Option<ObjectId>,
        /// `true` for a method invocation, `false` for a field access.
        invocation: bool,
        /// Payload bytes.
        bytes: u64,
    },
    /// An object was created.
    Alloc {
        /// Class of the new object.
        class: ClassId,
        /// The object.
        object: ObjectId,
        /// Heap footprint in bytes.
        bytes: u64,
    },
    /// Objects of a class were reclaimed by a collection cycle.
    Free {
        /// Class of the reclaimed objects.
        class: ClassId,
        /// Number reclaimed.
        objects: u64,
        /// Total footprint reclaimed.
        bytes: u64,
    },
    /// Exclusive CPU time accrued in a class (client-speed microseconds).
    Work {
        /// The executing class.
        class: ClassId,
        /// Microseconds of client-speed CPU.
        micros: f64,
    },
    /// A native-method invocation.
    Native {
        /// Class whose code invoked the native.
        caller: ClassId,
        /// Kind of native (decides where it may execute).
        kind: NativeKind,
        /// CPU the native burns, client-speed microseconds.
        work_micros: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// A static-data access.
    StaticAccess {
        /// Class whose code performed the access.
        accessor: ClassId,
        /// Class owning the static data.
        class: ClassId,
        /// Payload bytes.
        bytes: u64,
    },
    /// A garbage-collection cycle boundary (a safe point for triggers).
    Gc {
        /// The collector's report at recording time. The emulator
        /// recomputes free-heap figures for its own configured capacity
        /// but keeps cycle boundaries.
        report: GcReport,
    },
}

/// Per-class metadata carried by the trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassMeta {
    /// Class name.
    pub name: String,
    /// Class is implemented with native methods (pinned to the client).
    pub native_impl: bool,
    /// Objects are primitive arrays (eligible for object granularity).
    pub is_primitive_array: bool,
}

/// A complete recorded execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable name of the recorded application.
    pub app: String,
    /// Heap capacity the recording ran with, in bytes.
    pub recorded_heap: u64,
    /// Class metadata, indexed by [`ClassId`].
    pub classes: Vec<ClassMeta>,
    /// The event stream, in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(app: impl Into<String>, recorded_heap: u64, classes: Vec<ClassMeta>) -> Self {
        Trace {
            app: app.into(),
            recorded_heap,
            classes,
            events: Vec::new(),
        }
    }

    /// Extracts class metadata from a program.
    pub fn class_meta_of(program: &Program) -> Vec<ClassMeta> {
        program
            .classes()
            .iter()
            .map(|c| ClassMeta {
                name: c.name.clone(),
                native_impl: c.native_impl,
                is_primitive_array: c.is_primitive_array,
            })
            .collect()
    }

    /// Builds a *skeleton program* that mirrors the trace's class metadata,
    /// so the monitoring module (which derives pinning from class
    /// definitions) can be reused unchanged by the emulator.
    ///
    /// # Errors
    ///
    /// Returns an error if the synthesized program fails validation
    /// (cannot happen for well-formed metadata).
    pub fn skeleton_program(&self) -> VmResult<Program> {
        let mut classes: Vec<ClassDef> = Vec::with_capacity(self.classes.len());
        for meta in &self.classes {
            let mut def = ClassDef::new(meta.name.clone());
            def.is_primitive_array = meta.is_primitive_array;
            def.native_impl = meta.native_impl;
            def.methods.push(MethodDef::new("marker", vec![]));
            classes.push(def);
        }
        Program::new(
            classes,
            EntryPoint {
                class: ClassId(0),
                method: aide_vm::MethodId(0),
                scalar_bytes: 0,
                ref_slots: 0,
            },
        )
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total exclusive work in the trace, in client-speed seconds.
    pub fn total_work_seconds(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::Work { micros, .. } => *micros,
                TraceEvent::Native { work_micros, .. } => f64::from(*work_micros),
                _ => 0.0,
            })
            .sum::<f64>()
            / 1e6
    }

    /// Number of interaction events (invocations + accesses).
    pub fn interaction_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Interaction { .. }))
            .count() as u64
    }

    /// Serializes the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(json: &str) -> serde_json::Result<Trace> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Vec<ClassMeta> {
        vec![
            ClassMeta {
                name: "Main".into(),
                native_impl: false,
                is_primitive_array: false,
            },
            ClassMeta {
                name: "Gui".into(),
                native_impl: true,
                is_primitive_array: false,
            },
            ClassMeta {
                name: "MathKernel".into(),
                native_impl: false,
                is_primitive_array: false,
            },
            ClassMeta {
                name: "IntArray".into(),
                native_impl: false,
                is_primitive_array: true,
            },
        ]
    }

    #[test]
    fn trace_accumulates_and_summarizes() {
        let mut t = Trace::new("test", 6 << 20, meta());
        t.events.push(TraceEvent::Work {
            class: ClassId(0),
            micros: 1_000_000.0,
        });
        t.events.push(TraceEvent::Native {
            caller: ClassId(1),
            kind: NativeKind::Framebuffer,
            work_micros: 500_000,
            bytes: 64,
        });
        t.events.push(TraceEvent::Interaction {
            caller: ClassId(0),
            callee: ClassId(1),
            target: Some(ObjectId::client(1)),
            invocation: true,
            bytes: 16,
        });
        assert_eq!(t.len(), 3);
        assert!((t.total_work_seconds() - 1.5).abs() < 1e-9);
        assert_eq!(t.interaction_count(), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new("rt", 1 << 20, meta());
        t.events.push(TraceEvent::Alloc {
            class: ClassId(3),
            object: ObjectId::client(9),
            bytes: 4_096,
        });
        t.events.push(TraceEvent::Gc {
            report: GcReport {
                cycle: 1,
                capacity: 1 << 20,
                used_after: 4_096,
                free_after: (1 << 20) - 4_096,
                freed_objects: 0,
                freed_bytes: 0,
                duration_micros: 3.0,
            },
        });
        let json = t.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn skeleton_program_preserves_pinning_semantics() {
        let t = Trace::new("skel", 1 << 20, meta());
        let p = t.skeleton_program().unwrap();
        assert_eq!(p.class_count(), 4);
        assert!(p.class(ClassId(1)).unwrap().native_impl);
        assert!(!p.class(ClassId(2)).unwrap().native_impl);
        let arr = p.class(ClassId(3)).unwrap();
        assert!(arr.is_primitive_array);
        assert!(!arr.native_impl);
    }
}
