//! The trace-driven emulator (paper §4).
//!
//! The emulator replays a recorded execution through the *same* monitoring
//! and partitioning modules the prototype uses, simulating remote
//! communication by stretching simulated execution time for remote
//! invocations and data accesses (11 Mbps WaveLAN, 2.4 ms null-message
//! round trip), and scaling offloaded work by the surrogate speed ratio.
//! Distributed execution of a trace is assumed equivalent to serial
//! execution: after partitioning, execution moves between the two emulated
//! VMs synchronously.
//!
//! Heap accounting is by *live bytes* (allocations minus recorded frees):
//! the emulated client runs out of memory when live client-side data
//! exceeds the configured capacity — the same condition that kills
//! JavaNote in a 6 MB heap.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use aide_core::{
    decide_with, EvaluationMode, HeuristicKind, Monitor, NodeKey, PolicyKind, TriggerConfig,
};
use aide_graph::{CommParams, ResourceSnapshot, Side};
use aide_telemetry::{FlightRecorder, PlatformEvent, TimedEvent};
use aide_trace::SpanContext;
use aide_vm::{
    native_requires_client, ClassId, GcReport, Interaction, InteractionKind, ObjectId, RuntimeHooks,
};

use crate::trace::{Trace, TraceEvent};

/// Emulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulatorConfig {
    /// Emulated client heap capacity in bytes.
    pub client_heap: u64,
    /// Link parameters (paper: WaveLAN).
    pub comm: CommParams,
    /// Surrogate CPU speed relative to the client (paper: 3.5; use 1.0 for
    /// the memory experiments, which had equal processor speeds).
    pub surrogate_speed: f64,
    /// Memory-pressure trigger parameters.
    pub trigger: TriggerConfig,
    /// Partitioning policy.
    pub policy: PolicyKind,
    /// When the platform re-evaluates partitioning.
    pub evaluation: EvaluationMode,
    /// §5.2 "Native" enhancement: stateless natives run where invoked.
    pub stateless_natives_local: bool,
    /// §5.2 "Array" enhancement: primitive arrays placed per object.
    pub array_object_granularity: bool,
    /// Maximum offload operations (the prototype performs one; the
    /// emulator may repartition repeatedly).
    pub max_offloads: u32,
    /// Manual partitioning: place these classes (by name) on the surrogate
    /// from the start, bypassing the policy — used to reproduce the
    /// paper's hand-partitioned Biomer result (711 s). Usually `None`.
    pub forced_surrogate: Option<Vec<String>>,
    /// Candidate-generation heuristic (default: the paper's modified
    /// MINCUT; see [`HeuristicKind`]).
    pub heuristic: HeuristicKind,
    /// Deterministic surrogate-failure injection: kill the emulated
    /// surrogate once the virtual clock reaches the scheduled time.
    /// `None` (the default) replays without failures.
    #[serde(default)]
    pub failure: Option<FailureSchedule>,
    /// Emulated link chaos: charge retransmissions for lost frames at
    /// virtual time. `None` (the default) replays over a perfect link.
    #[serde(default)]
    pub chaos: Option<EmuChaos>,
}

/// Emulated link chaos for replays.
///
/// Each remote round trip is independently lost with probability
/// [`loss`](EmuChaos::loss); every loss costs one extra round trip of
/// virtual link time (the retransmission, as the live platform's retry
/// layer would perform it), up to [`max_retries`](EmuChaos::max_retries)
/// per interaction. The stream is seeded, so a replay is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmuChaos {
    /// Probability in `[0, 1]` that a remote round trip must be retried.
    pub loss: f64,
    /// Retry bound per interaction (mirrors the live retry budget).
    pub max_retries: u32,
    /// Seed for the deterministic loss stream.
    pub seed: u64,
}

impl EmuChaos {
    /// A seeded schedule losing `loss` of round trips, with the live
    /// platform's default retry budget.
    pub fn lossy(loss: f64, seed: u64) -> Self {
        EmuChaos {
            loss,
            max_retries: 3,
            seed,
        }
    }
}

/// Extra round trips the chaos schedule charges for one remote
/// interaction, and their virtual-time cost.
fn chaos_penalty(params: &CommParams, chaos: &EmuChaos, state: &mut u64, bytes: u32) -> (u64, f64) {
    let mut extra = 0u64;
    while extra < u64::from(chaos.max_retries) {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        let unit = (*state >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= chaos.loss {
            break;
        }
        extra += 1;
    }
    (extra, extra as f64 * params.interaction_seconds(bytes))
}

/// A scheduled surrogate failure (failover experiments).
///
/// At the chosen virtual time the emulated surrogate dies: every byte it
/// hosted is reinstated into the client heap (charged against capacity —
/// a reinstatement that does not fit shows up as OOM at the next
/// allocation) and all placements flip back to the client. If a standby
/// surrogate exists, offloading may resume after `reoffload_delay_seconds`
/// of virtual time — the delay models discovery plus session
/// re-establishment; each failure also extends the offload budget by one,
/// so `max_offloads: 1` still allows the recovery re-offload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    /// Virtual time (seconds on the emulated serial clock) at which the
    /// surrogate dies.
    pub at_virtual_seconds: f64,
    /// Whether a standby surrogate is available to re-offload to. With
    /// `false`, the application continues degraded (client-only) and may
    /// OOM if the workload no longer fits.
    pub standby: bool,
    /// Virtual seconds after the failure before the standby surrogate can
    /// accept an offload.
    pub reoffload_delay_seconds: f64,
}

impl FailureSchedule {
    /// A failure at `at_virtual_seconds` with an immediately available
    /// standby surrogate.
    pub fn at(at_virtual_seconds: f64) -> Self {
        FailureSchedule {
            at_virtual_seconds,
            standby: true,
            reoffload_delay_seconds: 0.0,
        }
    }
}

/// One surrogate failure observed during a replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmuFailover {
    /// Index of the trace event being replayed when the failure fired.
    pub at_event: usize,
    /// Virtual time of the failure, in seconds.
    pub at_seconds: f64,
    /// Bytes reinstated into the client heap from the dead surrogate.
    pub reinstated_bytes: u64,
    /// Whether anything had actually been offloaded when the surrogate
    /// died (a failure before the first offload reinstates nothing).
    pub had_offloaded: bool,
}

impl EmulatorConfig {
    /// The paper's initial memory-experiment configuration: WaveLAN link,
    /// equal CPU speeds, trigger at 5% free with three reports, free ≥ 20%.
    pub fn paper_memory(client_heap: u64) -> Self {
        EmulatorConfig {
            client_heap,
            comm: CommParams::WAVELAN,
            surrogate_speed: 1.0,
            trigger: TriggerConfig::default(),
            policy: PolicyKind::Memory {
                min_free_fraction: 0.20,
            },
            evaluation: EvaluationMode::OnMemoryPressure,
            stateless_natives_local: false,
            array_object_granularity: false,
            max_offloads: 1,
            forced_surrogate: None,
            heuristic: HeuristicKind::default(),
            failure: None,
            chaos: None,
        }
    }

    /// The paper's processing-experiment configuration: WaveLAN link,
    /// 3.5× surrogate, CPU policy with periodic re-evaluation.
    pub fn paper_cpu(client_heap: u64, eval_every_micros: f64) -> Self {
        EmulatorConfig {
            client_heap,
            comm: CommParams::WAVELAN,
            surrogate_speed: 3.5,
            trigger: TriggerConfig::default(),
            policy: PolicyKind::Cpu { margin: 0.0 },
            evaluation: EvaluationMode::Periodic {
                every_micros: eval_every_micros,
            },
            stateless_natives_local: false,
            array_object_granularity: false,
            max_offloads: 1,
            forced_surrogate: None,
            heuristic: HeuristicKind::default(),
            failure: None,
            chaos: None,
        }
    }
}

/// An offload performed during emulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmulatedOffload {
    /// Index of the trace event at which the offload happened.
    pub at_event: usize,
    /// Live bytes moved off the client.
    pub bytes_moved: u64,
    /// Live bytes moved *back* to the client (global placement on
    /// repartitioning; zero for a first offload).
    pub bytes_returned: u64,
    /// Graph nodes placed on the surrogate.
    pub nodes_offloaded: usize,
    /// Simulated transfer time of the migration, in seconds.
    pub transfer_seconds: f64,
    /// Fraction of graph-tracked memory offloaded.
    pub offloaded_memory_fraction: f64,
    /// Predicted bytes/run crossing the cut (historical).
    pub cut_bytes: u64,
    /// The policy's score for the selected candidate (for the CPU policy,
    /// the predicted completion time in seconds).
    pub score: f64,
}

/// Remote-execution counters produced by a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmuRemoteStats {
    /// Remote inter-class interactions.
    pub remote_interactions: u64,
    /// Remote method invocations (subset of interactions, plus natives).
    pub remote_invocations: u64,
    /// Native invocations that travelled back to the client.
    pub remote_native_calls: u64,
    /// Static accesses that travelled back to the client.
    pub remote_static_accesses: u64,
}

/// The result of one emulated replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulatorReport {
    /// `true` if the replay finished; `false` on emulated OOM.
    pub completed: bool,
    /// Event index of the fatal allocation, when `completed` is false.
    pub oom_at_event: Option<usize>,
    /// CPU seconds executed on the client.
    pub client_cpu_seconds: f64,
    /// CPU seconds executed on the surrogate (already divided by speed).
    pub surrogate_cpu_seconds: f64,
    /// Link seconds spent on remote interactions.
    pub comm_seconds: f64,
    /// Link seconds spent transferring offloaded objects.
    pub offload_transfer_seconds: f64,
    /// Completion time had everything run on the client, in seconds.
    pub baseline_seconds: f64,
    /// Offloads performed.
    pub offloads: Vec<EmulatedOffload>,
    /// Surrogate failures injected by the configured
    /// [`FailureSchedule`], if any.
    #[serde(default)]
    pub failovers: Vec<EmuFailover>,
    /// Remote-execution counters.
    pub remote: EmuRemoteStats,
    /// Retransmissions charged by the configured [`EmuChaos`], if any.
    #[serde(default)]
    pub chaos_retries: u64,
    /// Virtual link seconds spent on those retransmissions (already
    /// included in [`comm_seconds`](EmulatorReport::comm_seconds)).
    #[serde(default)]
    pub chaos_comm_seconds: f64,
    /// Peak live bytes on the emulated client heap.
    pub peak_client_bytes: u64,
    /// Flight-recorder events stamped with *virtual* time, so emulated
    /// decision timelines are directly comparable to live-platform ones.
    #[serde(default)]
    pub events: Vec<TimedEvent>,
}

impl EmulatorReport {
    /// Total emulated completion time (serial execution), in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.client_cpu_seconds
            + self.surrogate_cpu_seconds
            + self.comm_seconds
            + self.offload_transfer_seconds
    }

    /// Remote-execution overhead relative to client-only execution:
    /// `total / baseline - 1` (the paper's Figure 6/7 metric).
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_seconds == 0.0 {
            0.0
        } else {
            self.total_seconds() / self.baseline_seconds - 1.0
        }
    }

    /// Returns `true` if at least one offload happened.
    pub fn offloaded(&self) -> bool {
        !self.offloads.is_empty()
    }

    /// Renders the flight-recorder events as a human-readable timeline
    /// (timestamps are virtual seconds on the emulated serial clock).
    pub fn timeline(&self) -> String {
        aide_telemetry::render_timeline(&self.events)
    }
}

/// Flight-recorder capacity for one replay (matches the live platform).
const FLIGHT_RECORDER_EVENTS: usize = 1024;

/// Name the emulated surrogate goes by in flight-recorder events.
const EMULATED_SURROGATE: &str = "emulated-surrogate";

/// Converts virtual seconds on the emulated serial clock to the
/// microsecond timestamps the flight recorder expects. Every conversion
/// is reported to the transport observer seam so a trace recorder can
/// capture the emulator's virtual-time progression.
fn virtual_micros(seconds: f64) -> u64 {
    let micros = (seconds.max(0.0) * 1e6) as u64;
    aide_rpc::observe::virtual_tick(micros);
    micros
}

/// Process lane emulated spans land on in the exporter, so an emulated
/// run is visually distinct from a live client/surrogate pair.
const EMU_TRACK: &str = "emu";

/// Stamps a completed span at *virtual* time. The emulator has no live
/// span guards (nothing here takes wall-clock time); it mints contexts by
/// hand and records finished spans directly, so emulated runs export the
/// same decision/migration trace shape as live runs.
fn stamp_span(
    ctx: SpanContext,
    parent: Option<u64>,
    name: &'static str,
    start_micros: u64,
    duration_micros: u64,
    args: Vec<(String, String)>,
) {
    aide_trace::record_raw(aide_trace::SpanRecord {
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id: parent,
        name: name.to_string(),
        cat: "emu",
        start_micros,
        duration_micros,
        track: EMU_TRACK.to_string(),
        thread: 0,
        args,
    });
}

/// Context threaded into [`Emulator::try_partition`] so decision events
/// land in the flight recorder with the right virtual timestamp and
/// trigger reason.
struct EmuTrace<'a> {
    recorder: &'a FlightRecorder,
    at_micros: u64,
    at_gc_cycle: u64,
    reason: &'a str,
}

/// Side assignment state during a replay.
#[derive(Debug, Default)]
struct Placement {
    class_side: HashMap<ClassId, Side>,
    object_side: HashMap<ObjectId, Side>,
}

impl Placement {
    fn class(&self, class: ClassId) -> Side {
        self.class_side.get(&class).copied().unwrap_or(Side::Client)
    }

    fn target(&self, class: ClassId, target: Option<ObjectId>) -> Side {
        if let Some(obj) = target {
            if let Some(&side) = self.object_side.get(&obj) {
                return side;
            }
        }
        self.class(class)
    }
}

/// Per-side live-byte ledger for one class.
#[derive(Debug, Default, Clone, Copy)]
struct ClassBytes {
    client: u64,
    surrogate: u64,
}

/// The trace-driven emulator.
#[derive(Debug)]
pub struct Emulator {
    config: EmulatorConfig,
}

impl Emulator {
    /// Creates an emulator with the given configuration.
    pub fn new(config: EmulatorConfig) -> Self {
        Emulator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EmulatorConfig {
        &self.config
    }

    /// Replays `trace` under the configured constraints.
    ///
    /// # Panics
    ///
    /// Panics if the trace's class metadata is internally inconsistent
    /// (cannot happen for traces produced by [`crate::record_program`]).
    #[allow(clippy::too_many_lines)]
    pub fn replay(&self, trace: &Trace) -> EmulatorReport {
        let cfg = &self.config;
        let program = Arc::new(trace.skeleton_program().expect("valid trace metadata"));

        // Object-granular classes under the Array enhancement.
        let array_classes: HashSet<ClassId> = if cfg.array_object_granularity {
            trace
                .classes
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_primitive_array)
                .map(|(i, _)| ClassId(i as u32))
                .collect()
        } else {
            HashSet::new()
        };

        // The same monitoring module the prototype uses.
        let monitor = Monitor::new(program, cfg.trigger, array_classes.clone());
        let policy = cfg.policy.build(cfg.comm, cfg.surrogate_speed);

        let mut placement = Placement::default();
        // Manual partitioning: apply the forced placement before replay.
        if let Some(names) = &cfg.forced_surrogate {
            for (i, meta) in trace.classes.iter().enumerate() {
                if names.iter().any(|n| n == &meta.name) {
                    placement
                        .class_side
                        .insert(ClassId(i as u32), Side::Surrogate);
                }
            }
        }
        let mut class_bytes: HashMap<ClassId, ClassBytes> = HashMap::new();
        let mut object_bytes: HashMap<ObjectId, u64> = HashMap::new();
        let mut object_class: HashMap<ObjectId, ClassId> = HashMap::new();

        let mut client_live: u64 = 0;
        let mut peak_client: u64 = 0;
        let mut client_cpu = 0.0f64;
        let mut surrogate_cpu = 0.0f64;
        let mut comm = 0.0f64;
        let mut transfer = 0.0f64;
        let mut remote = EmuRemoteStats::default();
        let recorder = FlightRecorder::new(FLIGHT_RECORDER_EVENTS);
        let mut offloads: Vec<EmulatedOffload> = Vec::new();
        let mut failovers: Vec<EmuFailover> = Vec::new();
        // Set when the failure schedule fires with no standby: offloading
        // is over for good, the client continues degraded.
        let mut fleet_dead = false;
        // Virtual time before which the standby surrogate cannot accept an
        // offload (discovery + session re-establishment after a failure).
        let mut reoffload_ready_at = 0.0f64;
        let mut chaos_rng: u64 = cfg.chaos.map_or(1, |c| c.seed | 1);
        let mut chaos_retries = 0u64;
        let mut chaos_comm = 0.0f64;
        let mut emu_gc_cycle = 0u64;
        let mut freed_since_gc = 0u64;
        let mut work_since_eval = 0.0f64;
        let mut completed = true;
        let mut oom_at_event = None;

        let speed_of = |side: Side| -> f64 {
            match side {
                Side::Client => 1.0,
                Side::Surrogate => cfg.surrogate_speed,
            }
        };

        'replay: for (idx, event) in trace.events.iter().enumerate() {
            // Scheduled surrogate death: once the virtual clock passes the
            // configured instant, reinstate everything the surrogate hosted
            // and flip all placements home. Reinstated bytes re-occupy the
            // client heap; if they no longer fit, the next allocation hits
            // the hard wall exactly as a real degraded client would.
            if let Some(failure) = cfg.failure {
                let now = client_cpu + surrogate_cpu + comm + transfer;
                if failovers.is_empty() && now >= failure.at_virtual_seconds {
                    let mut reinstated = 0u64;
                    for entry in class_bytes.values_mut() {
                        reinstated += entry.surrogate;
                        entry.client += entry.surrogate;
                        entry.surrogate = 0;
                    }
                    client_live += reinstated;
                    peak_client = peak_client.max(client_live);
                    for side in placement.class_side.values_mut() {
                        *side = Side::Client;
                    }
                    for side in placement.object_side.values_mut() {
                        *side = Side::Client;
                    }
                    failovers.push(EmuFailover {
                        at_event: idx,
                        at_seconds: now,
                        reinstated_bytes: reinstated,
                        had_offloaded: !offloads.is_empty(),
                    });
                    recorder.record_at(
                        virtual_micros(now),
                        PlatformEvent::LinkDied {
                            surrogate: EMULATED_SURROGATE.to_string(),
                        },
                    );
                    recorder.record_at(
                        virtual_micros(now),
                        PlatformEvent::FailoverCompleted {
                            surrogate: EMULATED_SURROGATE.to_string(),
                            // The emulator's ledger is byte-granular; it
                            // does not track per-object reinstatement.
                            reinstated_objects: 0,
                            reinstated_bytes: reinstated,
                            objects_lost: 0,
                            duration_micros: if failure.standby {
                                virtual_micros(failure.reoffload_delay_seconds)
                            } else {
                                0
                            },
                        },
                    );
                    stamp_span(
                        SpanContext::fresh(),
                        None,
                        aide_trace::names::FAILOVER,
                        virtual_micros(now),
                        if failure.standby {
                            virtual_micros(failure.reoffload_delay_seconds)
                        } else {
                            0
                        },
                        vec![
                            ("surrogate".to_string(), EMULATED_SURROGATE.to_string()),
                            ("reinstated_bytes".to_string(), reinstated.to_string()),
                        ],
                    );
                    if failure.standby {
                        reoffload_ready_at = now + failure.reoffload_delay_seconds;
                    } else {
                        fleet_dead = true;
                    }
                }
            }
            // Each failure extends the offload budget by one: recovering
            // onto the standby surrogate must not consume the original
            // allowance.
            let offload_budget = cfg.max_offloads as usize + failovers.len();
            match event {
                TraceEvent::Work { class, micros } => {
                    let side = placement.class(*class);
                    match side {
                        Side::Client => client_cpu += micros / 1e6,
                        Side::Surrogate => surrogate_cpu += micros / 1e6 / speed_of(side),
                    }
                    monitor.on_work(*class, *micros);
                    work_since_eval += micros;
                    if let EvaluationMode::Periodic { every_micros } = cfg.evaluation {
                        if work_since_eval >= every_micros
                            && !fleet_dead
                            && offloads.len() < offload_budget
                            && client_cpu + surrogate_cpu + comm + transfer >= reoffload_ready_at
                        {
                            work_since_eval = 0.0;
                            if let Some(o) = self.try_partition(
                                &monitor,
                                policy.as_ref(),
                                idx,
                                client_live,
                                &mut placement,
                                &mut class_bytes,
                                &object_bytes,
                                &object_class,
                                &array_classes,
                                &EmuTrace {
                                    recorder: &recorder,
                                    at_micros: virtual_micros(
                                        client_cpu + surrogate_cpu + comm + transfer,
                                    ),
                                    at_gc_cycle: emu_gc_cycle,
                                    reason: "periodic",
                                },
                            ) {
                                client_live = client_live + o.bytes_returned - o.bytes_moved;
                                transfer += o.transfer_seconds;
                                offloads.push(o);
                            }
                        }
                    }
                }
                TraceEvent::Interaction {
                    caller,
                    callee,
                    target,
                    invocation,
                    bytes,
                } => {
                    let caller_side = placement.class(*caller);
                    let callee_side = placement.target(*callee, *target);
                    let is_remote = caller_side != callee_side;
                    if is_remote {
                        comm += cfg.comm.interaction_seconds(*bytes);
                        if let Some(chaos) = &cfg.chaos {
                            let (extra, penalty) =
                                chaos_penalty(&cfg.comm, chaos, &mut chaos_rng, *bytes);
                            chaos_retries += extra;
                            chaos_comm += penalty;
                            comm += penalty;
                        }
                        remote.remote_interactions += 1;
                        if *invocation {
                            remote.remote_invocations += 1;
                        }
                    }
                    monitor.on_interaction(Interaction {
                        caller: *caller,
                        callee: *callee,
                        target: *target,
                        kind: if *invocation {
                            InteractionKind::Invocation
                        } else {
                            InteractionKind::FieldAccess
                        },
                        bytes: *bytes,
                        remote: is_remote,
                    });
                }
                TraceEvent::Alloc {
                    class,
                    object,
                    bytes,
                } => {
                    // New objects are created on the VM performing the
                    // creation — approximated by the class's placement.
                    let side = placement.class(*class);
                    let entry = class_bytes.entry(*class).or_default();
                    match side {
                        Side::Client => {
                            entry.client += bytes;
                            client_live += bytes;
                        }
                        Side::Surrogate => entry.surrogate += bytes,
                    }
                    if array_classes.contains(class) {
                        object_bytes.insert(*object, *bytes);
                        object_class.insert(*object, *class);
                        if side == Side::Surrogate {
                            placement.object_side.insert(*object, Side::Surrogate);
                        }
                    }
                    monitor.on_alloc(*class, *object, *bytes);
                    peak_client = peak_client.max(client_live);

                    // Hard memory wall: live client data exceeds capacity.
                    if client_live > cfg.client_heap {
                        // Last-ditch evaluation (the prototype's hard-OOM
                        // path also forces GC reports + offload attempts).
                        // The reoffload delay is ignored here: facing OOM,
                        // the client waits out session re-establishment
                        // rather than dying.
                        if !fleet_dead && offloads.len() < offload_budget {
                            if let Some(o) = self.try_partition(
                                &monitor,
                                policy.as_ref(),
                                idx,
                                client_live.min(cfg.client_heap),
                                &mut placement,
                                &mut class_bytes,
                                &object_bytes,
                                &object_class,
                                &array_classes,
                                &EmuTrace {
                                    recorder: &recorder,
                                    at_micros: virtual_micros(
                                        client_cpu + surrogate_cpu + comm + transfer,
                                    ),
                                    at_gc_cycle: emu_gc_cycle,
                                    reason: "allocation-failure",
                                },
                            ) {
                                client_live = client_live + o.bytes_returned - o.bytes_moved;
                                transfer += o.transfer_seconds;
                                offloads.push(o);
                            }
                        }
                        if client_live > cfg.client_heap {
                            completed = false;
                            oom_at_event = Some(idx);
                            break 'replay;
                        }
                    }
                }
                TraceEvent::Free {
                    class,
                    objects,
                    bytes,
                } => {
                    let entry = class_bytes.entry(*class).or_default();
                    // Reclaim from the client share first: garbage is
                    // dominated by recently created (client-side) objects.
                    let from_client = (*bytes).min(entry.client);
                    entry.client -= from_client;
                    client_live -= from_client.min(client_live);
                    let rest = bytes - from_client;
                    entry.surrogate -= rest.min(entry.surrogate);
                    freed_since_gc += bytes;
                    monitor.on_free(*class, *objects, *bytes);
                }
                TraceEvent::Native {
                    caller,
                    kind,
                    work_micros,
                    bytes,
                } => {
                    let caller_side = placement.class(*caller);
                    let client_bound = native_requires_client(*kind, cfg.stateless_natives_local);
                    let exec_side = if client_bound {
                        Side::Client
                    } else {
                        caller_side
                    };
                    let is_remote = caller_side == Side::Surrogate && client_bound;
                    if is_remote {
                        comm += cfg.comm.interaction_seconds(*bytes);
                        if let Some(chaos) = &cfg.chaos {
                            let (extra, penalty) =
                                chaos_penalty(&cfg.comm, chaos, &mut chaos_rng, *bytes);
                            chaos_retries += extra;
                            chaos_comm += penalty;
                            comm += penalty;
                        }
                        remote.remote_native_calls += 1;
                        remote.remote_invocations += 1;
                        remote.remote_interactions += 1;
                    }
                    match exec_side {
                        Side::Client => client_cpu += f64::from(*work_micros) / 1e6,
                        Side::Surrogate => {
                            surrogate_cpu +=
                                f64::from(*work_micros) / 1e6 / speed_of(Side::Surrogate);
                        }
                    }
                    monitor.on_native(*caller, *kind, *work_micros, *bytes, is_remote);
                }
                TraceEvent::StaticAccess {
                    accessor,
                    class,
                    bytes,
                } => {
                    let is_remote = placement.class(*accessor) == Side::Surrogate;
                    if is_remote {
                        comm += cfg.comm.interaction_seconds(*bytes);
                        if let Some(chaos) = &cfg.chaos {
                            let (extra, penalty) =
                                chaos_penalty(&cfg.comm, chaos, &mut chaos_rng, *bytes);
                            chaos_retries += extra;
                            chaos_comm += penalty;
                            comm += penalty;
                        }
                        remote.remote_static_accesses += 1;
                        remote.remote_interactions += 1;
                    }
                    monitor.on_static_access(*accessor, *class, *bytes, is_remote);
                }
                TraceEvent::Gc { report } => {
                    // Recompute the report for the emulated heap.
                    emu_gc_cycle += 1;
                    let used = client_live.min(cfg.client_heap);
                    let emu_report = GcReport {
                        cycle: emu_gc_cycle,
                        capacity: cfg.client_heap,
                        used_after: used,
                        free_after: cfg.client_heap - used,
                        freed_objects: report.freed_objects,
                        freed_bytes: freed_since_gc,
                        duration_micros: report.duration_micros,
                    };
                    freed_since_gc = 0;
                    monitor.on_gc(&emu_report);
                    if matches!(cfg.evaluation, EvaluationMode::OnMemoryPressure)
                        && monitor.memory_triggered()
                        && !fleet_dead
                        && offloads.len() < offload_budget
                        && client_cpu + surrogate_cpu + comm + transfer >= reoffload_ready_at
                    {
                        if let Some(o) = self.try_partition(
                            &monitor,
                            policy.as_ref(),
                            idx,
                            used,
                            &mut placement,
                            &mut class_bytes,
                            &object_bytes,
                            &object_class,
                            &array_classes,
                            &EmuTrace {
                                recorder: &recorder,
                                at_micros: virtual_micros(
                                    client_cpu + surrogate_cpu + comm + transfer,
                                ),
                                at_gc_cycle: emu_gc_cycle,
                                reason: "memory-pressure",
                            },
                        ) {
                            client_live = client_live + o.bytes_returned - o.bytes_moved;
                            transfer += o.transfer_seconds;
                            offloads.push(o);
                        }
                        monitor.reset_memory_trigger();
                    }
                }
            }
        }

        EmulatorReport {
            completed,
            oom_at_event,
            client_cpu_seconds: client_cpu,
            surrogate_cpu_seconds: surrogate_cpu,
            comm_seconds: comm,
            offload_transfer_seconds: transfer,
            baseline_seconds: trace.total_work_seconds(),
            offloads,
            failovers,
            remote,
            chaos_retries,
            chaos_comm_seconds: chaos_comm,
            peak_client_bytes: peak_client,
            events: recorder.events(),
        }
    }

    /// Runs the partitioning module; on a beneficial selection, applies the
    /// placement and returns the migration summary.
    #[allow(clippy::too_many_arguments)]
    fn try_partition(
        &self,
        monitor: &Monitor,
        policy: &dyn aide_graph::PartitionPolicy,
        at_event: usize,
        client_used: u64,
        placement: &mut Placement,
        class_bytes: &mut HashMap<ClassId, ClassBytes>,
        object_bytes: &HashMap<ObjectId, u64>,
        object_class: &HashMap<ObjectId, ClassId>,
        array_classes: &HashSet<ClassId>,
        trace: &EmuTrace<'_>,
    ) -> Option<EmulatedOffload> {
        let decision_ctx = SpanContext::fresh();
        let (graph, keys) = monitor.snapshot();
        let snapshot = ResourceSnapshot::new(
            self.config.client_heap,
            client_used.min(self.config.client_heap),
        );
        trace.recorder.record_at(
            trace.at_micros,
            PlatformEvent::TriggerFired {
                at_gc_cycle: trace.at_gc_cycle,
                heap_used: client_used.min(self.config.client_heap),
                heap_capacity: self.config.client_heap,
                reason: trace.reason.to_string(),
            },
        );
        stamp_span(
            decision_ctx.child(),
            Some(decision_ctx.span_id),
            aide_trace::names::TRIGGER_SAMPLE,
            trace.at_micros,
            0,
            vec![("reason".to_string(), trace.reason.to_string())],
        );
        let decision = decide_with(graph, snapshot, policy, self.config.heuristic);
        let eval_micros = u64::try_from(decision.elapsed.as_micros()).unwrap_or(u64::MAX);
        trace.recorder.record_at(
            trace.at_micros,
            PlatformEvent::CandidatesEvaluated {
                candidates: decision.candidates_evaluated,
                elapsed_micros: eval_micros,
            },
        );
        stamp_span(
            decision_ctx.child(),
            Some(decision_ctx.span_id),
            aide_trace::names::PARTITION_EPOCH,
            trace.at_micros,
            eval_micros,
            vec![(
                "candidates".to_string(),
                decision.candidates_evaluated.to_string(),
            )],
        );
        let Some(selection) = decision.selection else {
            trace.recorder.record_at(
                trace.at_micros,
                PlatformEvent::OffloadDeclined {
                    candidates: decision.candidates_evaluated,
                },
            );
            stamp_span(
                decision_ctx,
                None,
                aide_trace::names::DECISION,
                trace.at_micros,
                eval_micros,
                vec![("outcome".to_string(), "declined".to_string())],
            );
            return None;
        };

        let mut bytes_moved = 0u64;
        let mut nodes_offloaded = 0usize;
        for node in selection.partitioning.nodes_on(Side::Surrogate) {
            nodes_offloaded += 1;
            match keys[node.index()] {
                NodeKey::Class(c) => {
                    if array_classes.contains(&c) {
                        continue; // array classes handled per object
                    }
                    let entry = class_bytes.entry(c).or_default();
                    bytes_moved += entry.client;
                    entry.surrogate += entry.client;
                    entry.client = 0;
                    placement.class_side.insert(c, Side::Surrogate);
                }
                NodeKey::Object(o) => {
                    if placement.object_side.get(&o) == Some(&Side::Surrogate) {
                        continue;
                    }
                    let b = object_bytes.get(&o).copied().unwrap_or(0);
                    if let Some(c) = object_class.get(&o) {
                        let entry = class_bytes.entry(*c).or_default();
                        let moved = b.min(entry.client);
                        entry.client -= moved;
                        entry.surrogate += moved;
                        bytes_moved += moved;
                    }
                    placement.object_side.insert(o, Side::Surrogate);
                }
            }
        }
        // Global placement (paper §8 "enhance the prototype"): repartitioning
        // may also bring previously offloaded components home. Bytes moved
        // back are charged like any other transfer and re-occupy the client
        // heap.
        let mut bytes_returned = 0u64;
        for node in selection.partitioning.nodes_on(Side::Client) {
            match keys[node.index()] {
                NodeKey::Class(c) => {
                    if placement.class_side.get(&c) == Some(&Side::Surrogate)
                        && !array_classes.contains(&c)
                    {
                        let entry = class_bytes.entry(c).or_default();
                        bytes_returned += entry.surrogate;
                        entry.client += entry.surrogate;
                        entry.surrogate = 0;
                    }
                    placement.class_side.insert(c, Side::Client);
                }
                NodeKey::Object(o) => {
                    if placement.object_side.get(&o) == Some(&Side::Surrogate) {
                        let b = object_bytes.get(&o).copied().unwrap_or(0);
                        if let Some(c) = object_class.get(&o) {
                            let entry = class_bytes.entry(*c).or_default();
                            let moved = b.min(entry.surrogate);
                            entry.surrogate -= moved;
                            entry.client += moved;
                            bytes_returned += moved;
                        }
                        placement.object_side.insert(o, Side::Client);
                    }
                }
            }
        }

        let transfer_seconds = self
            .config
            .comm
            .transfer_seconds(bytes_moved + bytes_returned);
        trace.recorder.record_at(
            trace.at_micros,
            PlatformEvent::WinnerChosen {
                policy_score: selection.score,
                offload_bytes: selection.stats.offloaded_memory_bytes,
                cut_interactions: selection.stats.cut.interactions,
            },
        );
        let transfer_micros = virtual_micros(transfer_seconds);
        trace.recorder.record_at(
            trace.at_micros,
            PlatformEvent::ClassMigrated {
                objects: nodes_offloaded as u64,
                bytes: bytes_moved + bytes_returned,
                duration_micros: transfer_micros,
            },
        );
        stamp_span(
            decision_ctx.child(),
            Some(decision_ctx.span_id),
            aide_trace::names::MIGRATION,
            trace.at_micros + eval_micros,
            transfer_micros,
            vec![
                (
                    "bytes".to_string(),
                    (bytes_moved + bytes_returned).to_string(),
                ),
                ("objects".to_string(), nodes_offloaded.to_string()),
                ("outcome".to_string(), "committed".to_string()),
            ],
        );
        stamp_span(
            decision_ctx,
            None,
            aide_trace::names::DECISION,
            trace.at_micros,
            eval_micros + transfer_micros,
            vec![("outcome".to_string(), "offloaded".to_string())],
        );
        Some(EmulatedOffload {
            at_event,
            bytes_moved,
            bytes_returned,
            nodes_offloaded,
            transfer_seconds,
            offloaded_memory_fraction: selection.stats.offloaded_memory_fraction(),
            cut_bytes: selection.stats.cut.bytes,
            score: selection.score,
        })
    }
}
