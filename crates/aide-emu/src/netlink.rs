//! The emulator's network backend over the unified transport seam.
//!
//! [`EmuNet`] wraps `aide_rpc`'s emulated backend
//! ([`aide_rpc::virtual_transport`]): sessions opened through it are
//! ordinary [`Session`]s — the same abstraction the in-memory and TCP
//! backends produce, usable with endpoints, retry, and chaos wrapping —
//! but every frame sent charges transmission time at the configured
//! [`CommParams`] rates (plus half a null RTT) to a *virtual* link clock
//! instead of consuming wall time. This is how emulator runs account for
//! network cost deterministically: a megabyte "takes" its WaveLAN seconds
//! on the clock while the replay itself runs at memory speed.

use std::sync::Arc;

use aide_graph::CommParams;
use aide_rpc::{
    virtual_transport, Acceptor, ChannelAcceptor, ChannelTransport, NetClock, Session, Transport,
};

/// An emulated network: a virtual-time transport/acceptor pair plus the
/// link clock its sessions charge.
#[derive(Debug)]
pub struct EmuNet {
    transport: ChannelTransport,
    acceptor: ChannelAcceptor,
    clock: Arc<NetClock>,
    params: CommParams,
}

impl EmuNet {
    /// Creates an emulated network charging `params` rates per frame.
    pub fn new(params: CommParams) -> Self {
        let (transport, acceptor, clock) = virtual_transport(params);
        EmuNet {
            transport,
            acceptor,
            clock,
            params,
        }
    }

    /// Opens one connected session pair `(initiator_end, acceptor_end)`.
    /// Both ends charge the shared link clock when they send.
    pub fn open_pair(&self) -> (Session, Session) {
        let ours = self
            .transport
            .open_session()
            .expect("emulated peer cannot hang up: we hold both ends");
        let theirs = self
            .acceptor
            .accept()
            .expect("emulated peer cannot hang up: we hold both ends");
        (ours, theirs)
    }

    /// The initiating side as a `dyn`-usable [`Transport`], for code that
    /// is generic over backends.
    pub fn transport(&self) -> &dyn Transport {
        &self.transport
    }

    /// The accepting side, for code that is generic over backends.
    pub fn acceptor(&self) -> &dyn Acceptor {
        &self.acceptor
    }

    /// The link clock every session charges into.
    pub fn clock(&self) -> &Arc<NetClock> {
        &self.clock
    }

    /// Virtual link seconds accumulated so far across all sessions.
    pub fn link_seconds(&self) -> f64 {
        self.clock.seconds()
    }

    /// The link parameters frames are priced at.
    pub fn params(&self) -> CommParams {
        self.params
    }

    /// Virtual seconds one `bytes`-long frame costs on this link:
    /// transmission at link bandwidth plus half a null RTT.
    pub fn frame_cost_seconds(&self, bytes: usize) -> f64 {
        (bytes as f64) * 8.0 / self.params.bandwidth_bps + self.params.rtt_seconds / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_rpc::BackendKind;

    #[test]
    fn sessions_are_the_emulated_backend() {
        let net = EmuNet::new(CommParams::WAVELAN);
        let (a, b) = net.open_pair();
        assert_eq!(a.backend(), BackendKind::Emulated);
        assert_eq!(b.backend(), BackendKind::Emulated);
    }

    #[test]
    fn every_frame_charges_virtual_link_time() {
        let net = EmuNet::new(CommParams::WAVELAN);
        let (a, b) = net.open_pair();
        assert_eq!(net.link_seconds(), 0.0);
        a.send(vec![0u8; 1_000]).unwrap();
        b.recv().unwrap();
        let one = net.frame_cost_seconds(1_000);
        assert!((net.link_seconds() - one).abs() < 1e-12);
        b.send(vec![0u8; 500]).unwrap();
        a.recv().unwrap();
        let two = one + net.frame_cost_seconds(500);
        assert!((net.link_seconds() - two).abs() < 1e-12);
    }

    #[test]
    fn many_sessions_share_the_link_clock() {
        let net = EmuNet::new(CommParams::WAVELAN);
        let (a1, b1) = net.open_pair();
        let (a2, b2) = net.open_pair();
        a1.send(vec![0u8; 100]).unwrap();
        a2.send(vec![0u8; 100]).unwrap();
        b1.recv().unwrap();
        b2.recv().unwrap();
        let expected = 2.0 * net.frame_cost_seconds(100);
        assert!((net.link_seconds() - expected).abs() < 1e-12);
    }

    #[test]
    fn a_megabyte_costs_wavelan_seconds_not_wall_seconds() {
        let net = EmuNet::new(CommParams::WAVELAN);
        let (a, b) = net.open_pair();
        let started = std::time::Instant::now();
        a.send(vec![0u8; 1 << 20]).unwrap();
        b.recv().unwrap();
        // ~0.76 s of virtual link time...
        assert!(net.link_seconds() > 0.7);
        // ...in well under that much wall time.
        assert!(started.elapsed() < std::time::Duration::from_secs(1));
    }
}
