//! Integration tests: record a realistic program, then replay it under
//! different constraints, policies, and enhancements.

use std::sync::Arc;

use aide_core::PolicyKind;
use aide_emu::{
    best_point, record_program, sweep_memory_policies, Emulator, EmulatorConfig, PolicyGrid, Trace,
};
use aide_vm::{MethodDef, MethodId, NativeKind, Op, Program, ProgramBuilder, Reg};

/// An editor-like program: pinned UI (framebuffer natives), a document
/// whose buffers dominate memory, and a scan/draw loop.
fn editor_program(chunks: u32, chunk_bytes: u32, edits: u32) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let editor = b.add_native_class("Editor");
    let document = b.add_class("Document");
    let buffer = b.add_array_class("CharArray");

    let draw = b.add_method(
        editor,
        MethodDef::new(
            "draw",
            vec![
                Op::Work { micros: 30 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 40,
                    arg_bytes: 512,
                    ret_bytes: 0,
                },
            ],
        ),
    );
    let mut load_ops = Vec::new();
    for i in 0..chunks {
        load_ops.push(Op::New {
            class: buffer,
            scalar_bytes: chunk_bytes,
            ref_slots: 0,
            dst: Reg(1),
        });
        load_ops.push(Op::PutSlot {
            slot: i as u16,
            src: Reg(1),
        });
        load_ops.push(Op::Work { micros: 40 });
    }
    let load = b.add_method(document, MethodDef::new("load", load_ops));
    let mut scan_ops = Vec::new();
    for i in 0..chunks {
        scan_ops.push(Op::GetSlot {
            slot: i as u16,
            dst: Reg(2),
        });
        scan_ops.push(Op::Read {
            obj: Reg(2),
            bytes: 32,
        });
    }
    scan_ops.push(Op::Work { micros: 60 });
    let scan = b.add_method(document, MethodDef::new("scan", scan_ops));

    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: editor,
                    scalar_bytes: 2_000,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::PutSlot {
                    slot: 0,
                    src: Reg(0),
                },
                Op::New {
                    class: document,
                    scalar_bytes: 500,
                    ref_slots: chunks as u16,
                    dst: Reg(1),
                },
                Op::PutSlot {
                    slot: 1,
                    src: Reg(1),
                },
                Op::Call {
                    obj: Reg(1),
                    class: document,
                    method: load,
                    arg_bytes: 16,
                    ret_bytes: 0,
                    args: vec![],
                },
                Op::Repeat {
                    n: edits,
                    body: vec![
                        Op::Call {
                            obj: Reg(0),
                            class: editor,
                            method: draw,
                            arg_bytes: 8,
                            ret_bytes: 8,
                            args: vec![],
                        },
                        Op::Call {
                            obj: Reg(1),
                            class: document,
                            method: scan,
                            arg_bytes: 8,
                            ret_bytes: 32,
                            args: vec![],
                        },
                    ],
                },
            ],
        ),
    );
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

/// A compute-heavy program: an engine with rare UI pings. When
/// `math_native` is set, each crunch also calls a stateless math native —
/// which pins the engine to the client unless the stateless-native
/// enhancement is enabled (the paper's §5.2 observation).
fn compute_program(iters: u32, math_native: bool) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let ui = b.add_native_class("Ui");
    let engine = b.add_class("Engine");
    let blit = b.add_method(
        ui,
        MethodDef::new(
            "blit",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 10,
                arg_bytes: 128,
                ret_bytes: 0,
            }],
        ),
    );
    let mut crunch_ops = vec![Op::Work { micros: 10_000 }];
    if math_native {
        crunch_ops.push(Op::Native {
            kind: NativeKind::Math,
            work_micros: 500,
            arg_bytes: 16,
            ret_bytes: 16,
        });
    }
    let crunch = b.add_method(engine, MethodDef::new("crunch", crunch_ops));
    let body = vec![
        Op::Call {
            obj: Reg(1),
            class: engine,
            method: crunch,
            arg_bytes: 8,
            ret_bytes: 8,
            args: vec![],
        },
        Op::Call {
            obj: Reg(0),
            class: ui,
            method: blit,
            arg_bytes: 16,
            ret_bytes: 0,
            args: vec![],
        },
    ];
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: ui,
                    scalar_bytes: 1_000,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::New {
                    class: engine,
                    scalar_bytes: 10_000,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::Repeat { n: iters, body },
            ],
        ),
    );
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

fn editor_trace() -> Trace {
    record_program("editor", editor_program(40, 20_000, 25), 64 << 20).unwrap()
}

#[test]
fn replay_without_pressure_never_offloads() {
    let trace = editor_trace();
    let report = Emulator::new(EmulatorConfig::paper_memory(16 << 20)).replay(&trace);
    assert!(report.completed);
    assert!(!report.offloaded());
    assert_eq!(report.comm_seconds, 0.0);
    assert_eq!(report.surrogate_cpu_seconds, 0.0);
    // Total equals baseline when nothing is remote.
    assert!((report.total_seconds() - report.baseline_seconds).abs() < 1e-6);
}

#[test]
fn replay_under_pressure_offloads_and_completes() {
    let trace = editor_trace();
    // Live document ~800 KB: a 640 KB heap forces offloading.
    let report = Emulator::new(EmulatorConfig::paper_memory(640 << 10)).replay(&trace);
    assert!(report.completed, "offloading should rescue the replay");
    assert!(report.offloaded());
    let o = &report.offloads[0];
    assert!(o.bytes_moved > 100_000);
    assert!(o.transfer_seconds > 0.0);
    assert!(
        report.comm_seconds > 0.0,
        "remote interactions after offload"
    );
    assert!(report.overhead_fraction() > 0.0);
}

#[test]
fn impossible_heap_reports_oom() {
    let trace = editor_trace();
    // With offloading disabled entirely, a 64 KB heap cannot hold the
    // document (matching the paper's unmodified-VM failure mode).
    let mut cfg = EmulatorConfig::paper_memory(64 << 10);
    cfg.max_offloads = 0;
    let report = Emulator::new(cfg).replay(&trace);
    assert!(!report.completed);
    assert!(report.oom_at_event.is_some());
}

#[test]
fn even_a_tiny_heap_survives_when_everything_offloadable_leaves() {
    // The same 64 KB heap *with* offloading: the bandwidth-minimizing
    // policy pushes the document and buffers out and the replay finishes.
    let trace = editor_trace();
    let report = Emulator::new(EmulatorConfig::paper_memory(64 << 10)).replay(&trace);
    assert!(report.completed);
    assert!(report.offloaded());
}

#[test]
fn overhead_grows_with_chattier_cuts() {
    let trace = editor_trace();
    let tight = Emulator::new(EmulatorConfig::paper_memory(640 << 10)).replay(&trace);
    // A policy that must free almost everything cuts hotter edges.
    let mut aggressive_cfg = EmulatorConfig::paper_memory(640 << 10);
    aggressive_cfg.policy = PolicyKind::Memory {
        min_free_fraction: 0.8,
    };
    let aggressive = Emulator::new(aggressive_cfg).replay(&trace);
    assert!(tight.completed && aggressive.completed);
    assert!(aggressive.offloaded());
    // More memory freed...
    assert!(
        aggressive.offloads[0].bytes_moved >= tight.offloads[0].bytes_moved,
        "aggressive policy moves at least as much"
    );
}

#[test]
fn policy_sweep_finds_a_best_point_no_worse_than_initial() {
    let trace = editor_trace();
    let base = EmulatorConfig::paper_memory(640 << 10);
    let initial = Emulator::new(base.clone()).replay(&trace);
    assert!(initial.completed);

    let grid = PolicyGrid {
        trigger_free: vec![0.02, 0.05, 0.2, 0.5],
        tolerance: vec![1, 3],
        min_free: vec![0.1, 0.2, 0.5],
    };
    let points = sweep_memory_policies(&trace, base, &grid);
    assert_eq!(points.len(), 24);
    let best = best_point(&points).expect("some policy completes");
    assert!(
        best.report.total_seconds() <= initial.total_seconds() + 1e-9,
        "the swept best ({}) must not lose to the initial policy ({})",
        best.report.total_seconds(),
        initial.total_seconds()
    );
}

#[test]
fn cpu_replay_offloads_compute_to_fast_surrogate() {
    let trace = record_program("compute", compute_program(200, false), 64 << 20).unwrap();
    let cfg = EmulatorConfig::paper_cpu(16 << 20, 100_000.0);
    let report = Emulator::new(cfg).replay(&trace);
    assert!(report.completed);
    assert!(report.offloaded(), "compute engine should offload");
    assert!(report.surrogate_cpu_seconds > 0.0);
    // The 3.5x surrogate makes the total faster than client-only baseline.
    assert!(
        report.total_seconds() < report.baseline_seconds,
        "offloading should be beneficial: total={} baseline={}",
        report.total_seconds(),
        report.baseline_seconds
    );
}

#[test]
fn stateless_native_enhancement_eliminates_native_bounce_backs() {
    // The offloaded engine calls Math natives, which by default execute on
    // the client: every call becomes a remote bounce-back the partitioning
    // prediction never saw (the paper's §5.2 observation). The "Native"
    // enhancement runs stateless natives where invoked, eliminating the
    // bounces (Figure 10 "Native" bars).
    let trace = record_program("compute", compute_program(200, true), 64 << 20).unwrap();
    let mut base = EmulatorConfig::paper_cpu(16 << 20, 100_000.0);
    let plain = Emulator::new(base.clone()).replay(&trace);
    assert!(plain.completed);
    assert!(plain.offloaded(), "the engine class itself is offloadable");
    assert!(
        plain.remote.remote_native_calls > 0,
        "math natives bounce back to the client without the enhancement"
    );

    base.stateless_natives_local = true;
    let enhanced = Emulator::new(base).replay(&trace);
    assert!(enhanced.completed);
    assert!(enhanced.offloaded());
    assert_eq!(
        enhanced.remote.remote_native_calls, 0,
        "stateless natives now run where invoked"
    );
    assert!(
        enhanced.total_seconds() < plain.total_seconds(),
        "removing bounce-backs must speed things up: {} < {}",
        enhanced.total_seconds(),
        plain.total_seconds()
    );
}

#[test]
fn beneficial_gate_refuses_chatty_cpu_offload() {
    // Engine pings the pinned UI with a big payload every iteration: the
    // CPU policy must decline.
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let ui = b.add_native_class("Ui");
    let engine = b.add_class("Engine");
    let ping = b.add_method(
        ui,
        MethodDef::new(
            "ping",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 1,
                arg_bytes: 4_000,
                ret_bytes: 4_000,
            }],
        ),
    );
    let step = b.add_method(
        engine,
        MethodDef::new(
            "step",
            vec![
                Op::Work { micros: 100 },
                Op::Call {
                    obj: Reg(0),
                    class: ui,
                    method: ping,
                    arg_bytes: 4_000,
                    ret_bytes: 4_000,
                    args: vec![],
                },
            ],
        ),
    );
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: ui,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::New {
                    class: engine,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::Repeat {
                    n: 400,
                    body: vec![Op::Call {
                        obj: Reg(1),
                        class: engine,
                        method: step,
                        arg_bytes: 0,
                        ret_bytes: 0,
                        args: vec![Reg(0)],
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());
    let trace = record_program("chatty", program, 64 << 20).unwrap();
    let report = Emulator::new(EmulatorConfig::paper_cpu(16 << 20, 5_000.0)).replay(&trace);
    assert!(report.completed);
    assert!(!report.offloaded(), "beneficial gate must refuse");
    assert!((report.total_seconds() - report.baseline_seconds).abs() < 1e-6);
}

#[test]
fn density_heuristic_also_rescues_the_editor() {
    // Paper §8: alternative partitioning heuristics. The memory-density
    // sweep must make the same qualitative decision here.
    let trace = editor_trace();
    let mut cfg = EmulatorConfig::paper_memory(640 << 10);
    cfg.heuristic = aide_core::HeuristicKind::MemoryDensity;
    let report = Emulator::new(cfg).replay(&trace);
    assert!(report.completed);
    assert!(report.offloaded());
    // The two heuristics may expose very different cuts (that contrast is
    // exactly what `ablate_mincut` measures); the qualitative decision —
    // rescue by offloading — must agree, and the paper's heuristic should
    // not lose to the alternative here.
    let baseline = Emulator::new(EmulatorConfig::paper_memory(640 << 10)).replay(&trace);
    assert!(baseline.completed && baseline.offloaded());
    assert!(
        baseline.total_seconds() <= report.total_seconds() * 1.01,
        "the modified-MINCUT cut should be at least as cold: {} vs {}",
        baseline.total_seconds(),
        report.total_seconds()
    );
}

#[test]
fn array_enhancement_allows_object_level_placement() {
    // Two integer arrays with very different coupling to the pinned UI:
    // class granularity forces both to one side; object granularity can
    // split them.
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let ui = b.add_native_class("Ui");
    let arrays = b.add_array_class("IntArray");
    let _touch = b.add_method(
        ui,
        MethodDef::new(
            "touch",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 1,
                arg_bytes: 32,
                ret_bytes: 0,
            }],
        ),
    );
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: ui,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                // Hot array: read constantly by the client-pinned UI side.
                Op::New {
                    class: arrays,
                    scalar_bytes: 200_000,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::PutSlot {
                    slot: 0,
                    src: Reg(1),
                },
                // Cold array: touched once.
                Op::New {
                    class: arrays,
                    scalar_bytes: 200_000,
                    ref_slots: 0,
                    dst: Reg(2),
                },
                Op::PutSlot {
                    slot: 1,
                    src: Reg(2),
                },
                Op::Read {
                    obj: Reg(2),
                    bytes: 8,
                },
                Op::Repeat {
                    n: 2_000,
                    body: vec![Op::Read {
                        obj: Reg(1),
                        bytes: 256,
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());
    let trace = record_program("arrays", program, 64 << 20).unwrap();

    // Constrained so that ~one array must leave (each is ~200 KB).
    let mut class_cfg = EmulatorConfig::paper_memory(384 << 10);
    class_cfg.policy = PolicyKind::Memory {
        min_free_fraction: 0.40,
    };
    let class_level = Emulator::new(class_cfg.clone()).replay(&trace);

    let mut obj_cfg = class_cfg.clone();
    obj_cfg.array_object_granularity = true;
    let object_level = Emulator::new(obj_cfg).replay(&trace);

    assert!(object_level.completed);
    if class_level.completed && class_level.offloaded() && object_level.offloaded() {
        // Object granularity should never be chattier than class
        // granularity here: it can keep the hot array local.
        assert!(
            object_level.remote.remote_interactions <= class_level.remote.remote_interactions,
            "object granularity kept the hot array local: {} <= {}",
            object_level.remote.remote_interactions,
            class_level.remote.remote_interactions
        );
    }
}
