//! Focused tests of emulator internals: event routing, placement
//! semantics, forced placement, and accounting invariants — driven by
//! hand-built traces rather than recorded applications.

use aide_core::{EvaluationMode, PolicyKind, TriggerConfig};
use aide_emu::{ClassMeta, Emulator, EmulatorConfig, Trace, TraceEvent};
use aide_graph::CommParams;
use aide_vm::{ClassId, GcReport, NativeKind, ObjectId};

fn meta(names: &[(&str, bool)]) -> Vec<ClassMeta> {
    names
        .iter()
        .map(|&(name, native_impl)| ClassMeta {
            name: name.into(),
            native_impl,
            is_primitive_array: false,
        })
        .collect()
}

fn gc_event(cycle: u64) -> TraceEvent {
    TraceEvent::Gc {
        report: GcReport {
            cycle,
            capacity: 64 << 20,
            used_after: 0,
            free_after: 64 << 20,
            freed_objects: 1,
            freed_bytes: 0,
            duration_micros: 1.0,
        },
    }
}

/// A trace with a pinned UI class and an offloadable Worker that owns all
/// the memory and does all the work, with interactions between them.
fn simple_trace(interaction_bytes: u64) -> Trace {
    let mut t = Trace::new(
        "hand-built",
        64 << 20,
        meta(&[("Ui", true), ("Worker", false)]),
    );
    let ui = ClassId(0);
    let worker = ClassId(1);
    // Allocate 1 MB on the worker, then alternate work and interactions.
    t.events.push(TraceEvent::Alloc {
        class: worker,
        object: ObjectId::client(0),
        bytes: 1 << 20,
    });
    for i in 0..100u64 {
        t.events.push(TraceEvent::Work {
            class: worker,
            micros: 100_000.0,
        });
        t.events.push(TraceEvent::Interaction {
            caller: ui,
            callee: worker,
            target: Some(ObjectId::client(0)),
            invocation: true,
            bytes: interaction_bytes,
        });
        if i % 10 == 9 {
            t.events.push(gc_event(i / 10 + 1));
        }
    }
    t
}

fn forced_config(classes: &[&str]) -> EmulatorConfig {
    let mut cfg = EmulatorConfig::paper_memory(64 << 20);
    cfg.max_offloads = 0;
    cfg.forced_surrogate = Some(classes.iter().map(|s| (*s).to_string()).collect());
    cfg.surrogate_speed = 2.0;
    cfg
}

#[test]
fn forced_placement_executes_work_on_the_surrogate() {
    let trace = simple_trace(100);
    let report = Emulator::new(forced_config(&["Worker"])).replay(&trace);
    assert!(report.completed);
    // 10s of work at 2x speed = 5s on the surrogate, none on the client.
    assert!((report.surrogate_cpu_seconds - 5.0).abs() < 1e-6);
    assert!(report.client_cpu_seconds < 1e-9);
    // Every UI->Worker interaction crossed the boundary.
    assert_eq!(report.remote.remote_interactions, 100);
    assert_eq!(report.remote.remote_invocations, 100);
}

#[test]
fn forced_placement_of_a_pinned_name_is_harmless() {
    // Forcing the UI class is allowed at the emulator level (it is a
    // manual override); interactions then cross in the other direction.
    let trace = simple_trace(100);
    let report = Emulator::new(forced_config(&["Ui"])).replay(&trace);
    assert!(report.completed);
    assert_eq!(report.remote.remote_interactions, 100);
}

#[test]
fn comm_time_scales_with_interaction_payload() {
    let small = Emulator::new(forced_config(&["Worker"])).replay(&simple_trace(0));
    let big = Emulator::new(forced_config(&["Worker"])).replay(&simple_trace(110_000));
    // 100 interactions x 110 KB at 11 Mbps = ~8s more than payload-free.
    let delta = big.comm_seconds - small.comm_seconds;
    assert!(
        (delta - 8.0).abs() < 0.1,
        "expected ~8s of payload time, got {delta}"
    );
    // RTT component: 100 x 2.4 ms.
    assert!((small.comm_seconds - 0.24).abs() < 0.01);
}

#[test]
fn client_bound_natives_bounce_only_from_the_surrogate() {
    let mut t = Trace::new("natives", 64 << 20, meta(&[("Ui", true), ("W", false)]));
    for _ in 0..10 {
        t.events.push(TraceEvent::Native {
            caller: ClassId(1),
            kind: NativeKind::Framebuffer,
            work_micros: 1_000,
            bytes: 64,
        });
        t.events.push(TraceEvent::Native {
            caller: ClassId(1),
            kind: NativeKind::Math,
            work_micros: 1_000,
            bytes: 16,
        });
    }

    // Local (no placement): no bounces, all native work on the client.
    let local = Emulator::new(EmulatorConfig::paper_memory(64 << 20)).replay(&t);
    assert_eq!(local.remote.remote_native_calls, 0);
    assert!((local.client_cpu_seconds - 0.02).abs() < 1e-9);

    // Offloaded without the enhancement: both kinds bounce home.
    let plain = Emulator::new(forced_config(&["W"])).replay(&t);
    assert_eq!(plain.remote.remote_native_calls, 20);
    assert!(
        (plain.client_cpu_seconds - 0.02).abs() < 1e-9,
        "native work runs at home"
    );

    // With the enhancement: only the framebuffer natives bounce.
    let mut cfg = forced_config(&["W"]);
    cfg.stateless_natives_local = true;
    let enhanced = Emulator::new(cfg).replay(&t);
    assert_eq!(enhanced.remote.remote_native_calls, 10);
    // The math half executes on the 2x surrogate now.
    assert!((enhanced.client_cpu_seconds - 0.01).abs() < 1e-9);
    assert!((enhanced.surrogate_cpu_seconds - 0.005).abs() < 1e-9);
}

#[test]
fn static_accesses_go_home_from_the_surrogate() {
    let mut t = Trace::new("statics", 64 << 20, meta(&[("Ui", true), ("W", false)]));
    for _ in 0..5 {
        t.events.push(TraceEvent::StaticAccess {
            accessor: ClassId(1),
            class: ClassId(0),
            bytes: 32,
        });
    }
    let local = Emulator::new(EmulatorConfig::paper_memory(64 << 20)).replay(&t);
    assert_eq!(local.remote.remote_static_accesses, 0);
    let offloaded = Emulator::new(forced_config(&["W"])).replay(&t);
    assert_eq!(offloaded.remote.remote_static_accesses, 5);
    assert!(offloaded.comm_seconds > 0.0);
}

#[test]
fn live_byte_accounting_survives_alloc_free_cycles() {
    let mut t = Trace::new("churn", 64 << 20, meta(&[("Main", false), ("Buf", false)]));
    let buf = ClassId(1);
    // Allocate 100 x 1 KB, free 50 KB, allocate 100 KB more.
    for i in 0..100u64 {
        t.events.push(TraceEvent::Alloc {
            class: buf,
            object: ObjectId::client(i),
            bytes: 1_024,
        });
    }
    t.events.push(TraceEvent::Free {
        class: buf,
        objects: 50,
        bytes: 50 * 1_024,
    });
    t.events.push(TraceEvent::Alloc {
        class: buf,
        object: ObjectId::client(1_000),
        bytes: 100 * 1_024,
    });
    let report = Emulator::new(EmulatorConfig::paper_memory(64 << 20)).replay(&t);
    assert!(report.completed);
    // Peak was max(100 KB, 50 KB + 100 KB) = 150 KB.
    assert_eq!(report.peak_client_bytes, 150 * 1_024);
}

#[test]
fn oom_reports_the_failing_event_index() {
    let mut t = Trace::new("oom", 64 << 20, meta(&[("Main", false), ("Buf", false)]));
    t.events.push(TraceEvent::Work {
        class: ClassId(0),
        micros: 1.0,
    });
    t.events.push(TraceEvent::Alloc {
        class: ClassId(1),
        object: ObjectId::client(0),
        bytes: 2 << 20,
    });
    let mut cfg = EmulatorConfig::paper_memory(1 << 20);
    cfg.max_offloads = 0;
    let report = Emulator::new(cfg).replay(&t);
    assert!(!report.completed);
    assert_eq!(report.oom_at_event, Some(1));
}

#[test]
fn periodic_evaluation_needs_accumulated_work() {
    // With a periodic CPU policy, no evaluation happens until the work
    // budget accrues — a trace with less total work than the period never
    // offloads.
    let trace = simple_trace(0); // 10s of work total
    let mut cfg = EmulatorConfig::paper_cpu(64 << 20, 60_000_000.0); // 60s period
    cfg.policy = PolicyKind::Cpu { margin: 0.0 };
    cfg.evaluation = EvaluationMode::Periodic {
        every_micros: 60_000_000.0,
    };
    let report = Emulator::new(cfg).replay(&trace);
    assert!(!report.offloaded());
}

#[test]
fn trigger_respects_tolerance_across_gc_events() {
    // Heap pressured from the start; tolerance 3 means the third GC event
    // triggers, not the first.
    let mut t = Trace::new("tol", 64 << 20, meta(&[("Ui", true), ("W", false)]));
    t.events.push(TraceEvent::Alloc {
        class: ClassId(1),
        object: ObjectId::client(0),
        bytes: 990 << 10, // 99% of a 1 MB emulated heap
    });
    // One interaction so both classes exist as graph nodes (nodes are
    // created lazily from events, not from trace metadata).
    t.events.push(TraceEvent::Interaction {
        caller: ClassId(0),
        callee: ClassId(1),
        target: Some(ObjectId::client(0)),
        invocation: true,
        bytes: 8,
    });
    for c in 1..=3 {
        t.events.push(gc_event(c));
        t.events.push(TraceEvent::Work {
            class: ClassId(1),
            micros: 1_000.0,
        });
    }
    let mut cfg = EmulatorConfig::paper_memory(1 << 20);
    cfg.trigger = TriggerConfig {
        low_free_fraction: 0.05,
        barren_concern_fraction: 0.10,
        consecutive_reports: 3,
    };
    cfg.policy = PolicyKind::Memory {
        min_free_fraction: 0.5,
    };
    let report = Emulator::new(cfg).replay(&t);
    assert!(report.offloaded());
    let offload = &report.offloads[0];
    // Events: alloc(0) interaction(1) gc(2) work(3) gc(4) work(5) gc(6):
    // the trigger fires at the third GC event, index 6.
    assert_eq!(offload.at_event, 6);
}

#[test]
fn wavelan_constants_are_the_papers() {
    let cfg = EmulatorConfig::paper_memory(6 << 20);
    assert_eq!(cfg.comm, CommParams::WAVELAN);
    assert_eq!(cfg.surrogate_speed, 1.0); // memory experiments: equal CPUs
    let cpu = EmulatorConfig::paper_cpu(16 << 20, 1.0);
    assert_eq!(cpu.surrogate_speed, 3.5); // CPU experiments: Jornada vs PC
}

/// A trace shaped for failover runs: a pinned UI and a Store that
/// allocates 600 KB (pressuring a 640 KB heap into an offload at the
/// third GC), then 10 s of Store work for the virtual clock to cross the
/// scheduled failure, then three more GCs (re-pressure after
/// reinstatement) and a final 100 KB allocation that only fits if the
/// store left the client again.
fn failover_trace() -> Trace {
    let mut t = Trace::new(
        "failover",
        64 << 20,
        meta(&[("Ui", true), ("Store", false)]),
    );
    let ui = ClassId(0);
    let store = ClassId(1);
    t.events.push(TraceEvent::Alloc {
        class: store,
        object: ObjectId::client(0),
        bytes: 600 << 10,
    });
    t.events.push(TraceEvent::Interaction {
        caller: ui,
        callee: store,
        target: Some(ObjectId::client(0)),
        invocation: true,
        bytes: 2_000,
    });
    for c in 1..=3 {
        t.events.push(gc_event(c));
    }
    for _ in 0..10 {
        t.events.push(TraceEvent::Work {
            class: store,
            micros: 1_000_000.0,
        });
    }
    for c in 4..=6 {
        t.events.push(gc_event(c));
    }
    t.events.push(TraceEvent::Alloc {
        class: store,
        object: ObjectId::client(1),
        bytes: 100 << 10,
    });
    t
}

#[test]
fn scheduled_failure_with_standby_reinstates_and_reoffloads() {
    let mut cfg = EmulatorConfig::paper_memory(640 << 10);
    cfg.failure = Some(aide_emu::FailureSchedule::at(1.0));
    let report = Emulator::new(cfg).replay(&failover_trace());

    assert!(report.completed, "standby surrogate rescues the replay");
    assert_eq!(report.failovers.len(), 1);
    let f = report.failovers[0];
    assert!(
        f.had_offloaded,
        "the store was on the surrogate when it died"
    );
    assert_eq!(f.reinstated_bytes, 600 << 10);
    assert!(f.at_seconds >= 1.0);
    // Original offload plus the recovery re-offload, despite max_offloads=1:
    // each failure extends the budget.
    assert_eq!(report.offloads.len(), 2);
    assert!(report.offloads[1].at_event > f.at_event);
    assert_eq!(report.offloads[1].bytes_moved, 600 << 10);
}

#[test]
fn scheduled_failure_without_standby_degrades_to_client_only_oom() {
    let mut cfg = EmulatorConfig::paper_memory(640 << 10);
    cfg.failure = Some(aide_emu::FailureSchedule {
        at_virtual_seconds: 1.0,
        standby: false,
        reoffload_delay_seconds: 0.0,
    });
    let report = Emulator::new(cfg).replay(&failover_trace());

    assert_eq!(report.failovers.len(), 1);
    assert_eq!(report.failovers[0].reinstated_bytes, 600 << 10);
    assert_eq!(report.offloads.len(), 1, "no surrogate left to retry");
    // The reinstated store plus the final allocation exceed the heap.
    assert!(!report.completed);
    assert!(report.oom_at_event.is_some());
}

#[test]
fn failure_before_any_offload_reinstates_nothing() {
    let mut cfg = EmulatorConfig::paper_memory(640 << 10);
    cfg.failure = Some(aide_emu::FailureSchedule::at(0.0));
    let report = Emulator::new(cfg).replay(&failover_trace());

    assert_eq!(report.failovers.len(), 1);
    let f = report.failovers[0];
    assert!(!f.had_offloaded);
    assert_eq!(f.reinstated_bytes, 0);
    // The standby (budget 1 + 1) still carries the replay to completion.
    assert!(report.completed);
    assert!(!report.offloads.is_empty());
}

#[test]
fn link_chaos_charges_retransmissions_at_virtual_time() {
    let base = forced_config(&["Worker"]);
    let trace = simple_trace(100);
    let calm = Emulator::new(base.clone()).replay(&trace);

    let mut chaotic_cfg = base.clone();
    chaotic_cfg.chaos = Some(aide_emu::EmuChaos::lossy(0.5, 42));
    let chaotic = Emulator::new(chaotic_cfg.clone()).replay(&trace);

    assert!(
        chaotic.chaos_retries > 0,
        "half the round trips should need at least one retransmission"
    );
    // The penalty is exactly the extra comm time, nothing else moves.
    assert!((chaotic.comm_seconds - calm.comm_seconds - chaotic.chaos_comm_seconds).abs() < 1e-9);
    assert_eq!(chaotic.client_cpu_seconds, calm.client_cpu_seconds);
    assert_eq!(chaotic.surrogate_cpu_seconds, calm.surrogate_cpu_seconds);
    assert_eq!(chaotic.remote, calm.remote, "chaos never re-executes work");

    // Seeded stream: the same configuration replays identically.
    let again = Emulator::new(chaotic_cfg).replay(&trace);
    assert_eq!(again.chaos_retries, chaotic.chaos_retries);
    assert_eq!(again.comm_seconds, chaotic.comm_seconds);

    // A lossless schedule charges nothing.
    let mut lossless_cfg = base;
    lossless_cfg.chaos = Some(aide_emu::EmuChaos::lossy(0.0, 42));
    let lossless = Emulator::new(lossless_cfg).replay(&trace);
    assert_eq!(lossless.chaos_retries, 0);
    assert_eq!(lossless.comm_seconds, calm.comm_seconds);
}

#[test]
fn reoffload_delay_defers_recovery_until_the_hard_wall() {
    let mut cfg = EmulatorConfig::paper_memory(640 << 10);
    cfg.failure = Some(aide_emu::FailureSchedule {
        at_virtual_seconds: 1.0,
        standby: true,
        // Longer than the whole replay: the pressure-triggered recovery
        // path stays gated...
        reoffload_delay_seconds: 1e6,
    });
    let report = Emulator::new(cfg).replay(&failover_trace());

    // ...but the last-ditch evaluation at the hard memory wall ignores the
    // delay (the client waits out session setup rather than dying), so the
    // replay still completes — with the recovery offload at the final
    // allocation event, not at the earlier GC trigger.
    assert!(report.completed);
    assert_eq!(report.offloads.len(), 2);
    assert_eq!(
        report.offloads[1].at_event,
        failover_trace().events.len() - 1
    );
}
