//! End-to-end failover: a provider-backed platform run survives its
//! surrogate dying mid-execution. The paper defers "recovery from surrogate
//! failure" (§8); these tests exercise the recovery path the `failover`
//! module adds — reinstate offloaded objects locally, continue degraded,
//! re-offload to the next surrogate.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use aide_core::{
    BackoffConfig, FailoverConfig, Platform, PlatformConfig, ProviderContext, RefTables,
    SurrogateLease, SurrogateProvider, VmDispatcher,
};
use aide_graph::CommParams;
use aide_rpc::{
    Dispatcher, Endpoint, EndpointConfig, Link, Reply, Request, RetryPolicy, Session as RpcSession,
};
use aide_vm::{GcConfig, Machine, MethodDef, MethodId, Op, Program, ProgramBuilder, Reg, VmConfig};

const DOC_BYTES: u32 = 4_000;
const HEAP: u64 = 256 * 1024;

/// A document-store workload shaped to cross the failure:
///
/// * **A** — load 70 docs (~281 KB, exceeding the 256 KB heap): pressure
///   triggers and the controller offloads the live documents.
/// * **B** — drop the first 50 documents (clear their slots).
/// * **B2** — load 10 more docs; the periodic GC sweeps the dropped imports
///   and sends `GcRelease` (the kill-switch dispatcher arms on it).
/// * **C** — read the surviving offloaded docs: the first remote touch hits
///   the dead surrogate, times out, and fails over (reinstating them).
/// * **D** — load 40 more docs: pressure returns and the controller
///   re-offloads to the next surrogate.
/// * **E** — read docs from every era to prove the store is intact.
fn doc_store_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    // Main drives a (native, client-pinned) UI while managing the store.
    let main = b.add_native_class("Main");
    let doc = b.add_class("Doc");

    let mut ops = Vec::new();
    let new_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::New {
            class: doc,
            scalar_bytes: DOC_BYTES,
            ref_slots: 0,
            dst: Reg(1),
        });
        ops.push(Op::PutSlot { slot, src: Reg(1) });
        ops.push(Op::Work { micros: 20 });
    };
    let read_doc = |ops: &mut Vec<Op>, slot: u16| {
        ops.push(Op::GetSlot { slot, dst: Reg(2) });
        ops.push(Op::Read {
            obj: Reg(2),
            bytes: 64,
        });
    };

    // Phase A.
    for i in 0..70 {
        new_doc(&mut ops, i);
        if i % 8 == 0 {
            read_doc(&mut ops, i);
        }
    }
    // Phase B.
    ops.push(Op::Clear { reg: Reg(1) });
    for i in 0..50 {
        ops.push(Op::PutSlot {
            slot: i,
            src: Reg(1),
        });
    }
    // Phase B2.
    for i in 70..80 {
        new_doc(&mut ops, i);
    }
    // Phase C: slots 50..64 survived phase B; touch a few.
    for i in 55..60 {
        read_doc(&mut ops, i);
    }
    // Phase D.
    for i in 80..120 {
        new_doc(&mut ops, i);
    }
    // Phase E.
    for i in [55, 60, 67, 75, 90, 110, 118] {
        read_doc(&mut ops, i);
    }

    b.add_method(main, MethodDef::new("main", ops));
    Arc::new(b.build(main, MethodId(0), 64, 120).unwrap())
}

fn platform_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::prototype(HEAP);
    // Small scenario: make GC sample often so the trigger sees pressure.
    cfg.gc = GcConfig {
        trigger_alloc_count: 8,
        trigger_alloc_bytes: 64 * 1024,
        cost_micros_per_object: 0.05,
    };
    cfg
}

fn failover_config() -> FailoverConfig {
    FailoverConfig {
        heartbeat_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(100),
        // Zero backoff: the re-offload in phase D happens microseconds of
        // real time after the recovery, inside the allocation retry loop.
        backoff: BackoffConfig {
            base: Duration::ZERO,
            factor: 2.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 1,
        },
    }
}

/// Client-side endpoint tuning for provider-built sessions: a short call
/// timeout so a dead surrogate is detected quickly.
fn lease_endpoint_config() -> EndpointConfig {
    EndpointConfig {
        workers: 4,
        call_timeout: Duration::from_millis(150),
        drain_timeout: Duration::from_millis(100),
        // Failover tests want a dead surrogate detected fast; keep the
        // retry budget tight so the whole detection fits the test budget.
        retry: RetryPolicy {
            max_attempts: 2,
            attempt_timeout: Duration::from_millis(150),
            deadline: Duration::from_millis(400),
            ..RetryPolicy::default()
        },
    }
}

/// Wraps the surrogate's dispatcher with a kill switch: serves everything
/// normally until the first `GcRelease` has been answered, then delays every
/// request past the client's call timeout — the surrogate is "dead" (its
/// replies arrive after the caller has given up).
struct KillAfterGcRelease {
    inner: VmDispatcher,
    armed: AtomicBool,
}

impl Dispatcher for KillAfterGcRelease {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        if self.armed.load(Ordering::SeqCst) {
            // Longer than the client's 150 ms call timeout. Returning Ok
            // (late) rather than Err matters: an application-level error
            // would surface as RpcError::Remote, which must NOT be treated
            // as surrogate death.
            std::thread::sleep(Duration::from_millis(400));
            return self.inner.dispatch(request);
        }
        let arm = matches!(request, Request::GcRelease { .. });
        let reply = self.inner.dispatch(request);
        if arm {
            self.armed.store(true, Ordering::SeqCst);
        }
        reply
    }
}

/// One pre-built surrogate session: the client-side transport the provider
/// hands out, plus the surrogate-side machinery kept alive by the test.
struct Session {
    name: String,
    client_transport: RpcSession,
    params: CommParams,
}

struct SessionHarness {
    endpoint: Arc<Endpoint>,
    machine: Machine,
}

fn build_session(program: &Arc<Program>, name: &str, killable: bool) -> (Session, SessionHarness) {
    let (link, ct, st) = Link::pair(CommParams::WAVELAN);
    let machine = Machine::new(program.clone(), VmConfig::surrogate(16 << 20));
    let tables = Arc::new(RefTables::new());
    let inner = VmDispatcher::new(machine.clone(), tables);
    let dispatcher: Arc<dyn Dispatcher> = if killable {
        Arc::new(KillAfterGcRelease {
            inner,
            armed: AtomicBool::new(false),
        })
    } else {
        Arc::new(inner)
    };
    let endpoint = Endpoint::start(
        st,
        link.params,
        link.clock.clone(),
        dispatcher,
        EndpointConfig {
            workers: 4,
            call_timeout: Duration::from_secs(1),
            drain_timeout: Duration::from_millis(100),
            ..EndpointConfig::default()
        },
    );
    (
        Session {
            name: name.to_string(),
            client_transport: ct,
            params: link.params,
        },
        SessionHarness { endpoint, machine },
    )
}

/// Hands out pre-built sessions in order, like a registry ranking would.
struct ChainProvider {
    sessions: Mutex<VecDeque<Session>>,
    failures: Mutex<Vec<String>>,
}

impl SurrogateProvider for ChainProvider {
    fn acquire(&self, ctx: &ProviderContext) -> Option<SurrogateLease> {
        let session = self.sessions.lock().unwrap().pop_front()?;
        let endpoint = Endpoint::start(
            session.client_transport,
            session.params,
            ctx.clock.clone(),
            ctx.dispatcher.clone(),
            lease_endpoint_config(),
        );
        Some(SurrogateLease {
            name: session.name,
            endpoint,
        })
    }

    fn report_failure(&self, name: &str) {
        self.failures.lock().unwrap().push(name.to_string());
    }
}

#[test]
fn application_survives_surrogate_death_and_reoffloads() {
    let program = doc_store_program();
    let (s1, h1) = build_session(&program, "s1", true);
    let (s2, h2) = build_session(&program, "s2", false);
    let provider = Arc::new(ChainProvider {
        sessions: Mutex::new(VecDeque::from([s1, s2])),
        failures: Mutex::new(Vec::new()),
    });

    let report = Platform::with_surrogates(program, platform_config(), provider.clone())
        .with_failover_config(failover_config())
        .run();

    assert!(
        report.outcome.is_ok(),
        "the application must complete despite the dead surrogate: {:?}",
        report.outcome
    );
    let failover = report.failover.as_ref().expect("provider-backed run");
    assert_eq!(failover.failovers, 1, "{failover:?}");
    assert!(
        failover.reinstated_objects >= 10,
        "surviving offloaded docs come home: {failover:?}"
    );
    assert_eq!(failover.objects_lost, 0, "{failover:?}");
    assert!(failover.reoffloads >= 1, "{failover:?}");
    assert_eq!(
        failover.surrogates_used,
        vec!["s1".to_string(), "s2".to_string()]
    );
    assert_eq!(
        provider.failures.lock().unwrap().as_slice(),
        &["s1".to_string()]
    );
    // Both offloads really migrated objects.
    assert_eq!(report.offloads.len(), 2, "offload, failover, re-offload");
    assert!(report.offloads.iter().all(|e| e.outcome.objects_moved > 0));
    // The replacement surrogate genuinely hosts the store now.
    assert!(h2.endpoint.requests_served() > 0);
    assert!(h2.machine.vm().lock().heap().stats().migrated_in > 0);

    h1.endpoint.shutdown();
    h2.endpoint.shutdown();
    h1.endpoint.join();
    h2.endpoint.join();
}

#[test]
fn provider_backed_run_with_healthy_surrogate_never_fails_over() {
    let program = doc_store_program();
    let (solo, harness) = build_session(&program, "solo", false);
    let provider = Arc::new(ChainProvider {
        sessions: Mutex::new(VecDeque::from([solo])),
        failures: Mutex::new(Vec::new()),
    });

    let report = Platform::with_surrogates(program, platform_config(), provider.clone())
        .with_failover_config(failover_config())
        .run();

    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    let failover = report.failover.as_ref().expect("provider-backed run");
    assert_eq!(failover.failovers, 0);
    assert_eq!(failover.reinstated_objects, 0);
    assert_eq!(failover.surrogates_used, vec!["solo".to_string()]);
    assert!(provider.failures.lock().unwrap().is_empty());
    assert!(!report.offloads.is_empty(), "pressure still offloads");
    assert!(harness.endpoint.requests_served() > 0);
    assert!(report.client_requests_served > 0 || report.frames_exchanged > 0);

    harness.endpoint.shutdown();
    harness.endpoint.join();
}

#[test]
fn run_without_any_reachable_surrogate_degrades_but_may_oom() {
    // With no surrogate at all, the platform keeps running locally; this
    // workload genuinely exceeds the heap, so it ends in OOM rather than a
    // hang or a panic — degraded, deterministic behaviour.
    let program = doc_store_program();
    let provider = Arc::new(ChainProvider {
        sessions: Mutex::new(VecDeque::new()),
        failures: Mutex::new(Vec::new()),
    });
    let report = Platform::with_surrogates(program, platform_config(), provider)
        .with_failover_config(failover_config())
        .run();
    assert!(
        matches!(report.outcome, Err(aide_vm::VmError::OutOfMemory { .. })),
        "expected OOM without any surrogate, got {:?}",
        report.outcome
    );
    let failover = report.failover.as_ref().expect("provider-backed run");
    assert_eq!(failover.failovers, 0);
    assert!(failover.surrogates_used.is_empty());
}
