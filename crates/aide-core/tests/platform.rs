//! End-to-end tests of the distributed platform: the paper's §5.1
//! "Avoiding Memory Constraints" scenario in miniature, plus behavioural
//! checks of triggers, transparency, and the beneficial-offload gate.

use std::sync::Arc;

use aide_core::{EvaluationMode, Platform, PlatformConfig, PolicyKind};
use aide_vm::{
    GcConfig, MethodDef, MethodId, NativeKind, Op, Program, ProgramBuilder, Reg, VmError,
};

/// A miniature JavaNote: a pinned editor UI (framebuffer natives) plus a
/// document model whose text buffers exceed a constrained heap.
///
/// `chunks` buffers of `chunk_bytes` are loaded into a document and kept
/// live (anchored through the entry object), then the editor performs
/// UI work and occasional document reads.
fn editor_program(chunks: u32, chunk_bytes: u32) -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    // The editor widget layer is *implemented* natively (framebuffer
    // access): it is pinned to the client.
    let editor = b.add_native_class("Editor");
    b.set_static_bytes(editor, 1_024);
    let document = b.add_class("Document");
    let buffer = b.add_array_class("CharArray");

    // Editor::draw — native framebuffer access on a native-impl class.
    let draw = b.add_method(
        editor,
        MethodDef::new(
            "draw",
            vec![
                Op::Work { micros: 20 },
                Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 30,
                    arg_bytes: 256,
                    ret_bytes: 0,
                },
            ],
        ),
    );

    // Document::load(self) — allocate the chunk buffers into self slots.
    let mut load_ops = Vec::new();
    for i in 0..chunks {
        load_ops.push(Op::New {
            class: buffer,
            scalar_bytes: chunk_bytes,
            ref_slots: 0,
            dst: Reg(1),
        });
        load_ops.push(Op::PutSlot {
            slot: i as u16,
            src: Reg(1),
        });
        load_ops.push(Op::Work { micros: 50 });
    }
    let load = b.add_method(document, MethodDef::new("load", load_ops));

    // Document::scan — touch every buffer (reads through slots) and
    // consult the editor's static configuration (client-owned state).
    let mut scan_ops = vec![Op::GetStatic {
        class: editor,
        bytes: 16,
    }];
    for i in 0..chunks {
        scan_ops.push(Op::GetSlot {
            slot: i as u16,
            dst: Reg(2),
        });
        scan_ops.push(Op::Read {
            obj: Reg(2),
            bytes: 64,
        });
    }
    let scan = b.add_method(document, MethodDef::new("scan", scan_ops));

    // Main::main — build editor + document, load, then edit loop.
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: editor,
                    scalar_bytes: 2_000,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::PutSlot {
                    slot: 0,
                    src: Reg(0),
                },
                Op::New {
                    class: document,
                    scalar_bytes: 1_000,
                    ref_slots: chunks as u16,
                    dst: Reg(1),
                },
                Op::PutSlot {
                    slot: 1,
                    src: Reg(1),
                },
                Op::Call {
                    obj: Reg(1),
                    class: document,
                    method: load,
                    arg_bytes: 16,
                    ret_bytes: 0,
                    args: vec![],
                },
                // Editing session: draw, scan, draw, ...
                Op::Repeat {
                    n: 20,
                    body: vec![
                        Op::Call {
                            obj: Reg(0),
                            class: editor,
                            method: draw,
                            arg_bytes: 8,
                            ret_bytes: 8,
                            args: vec![],
                        },
                        Op::Call {
                            obj: Reg(1),
                            class: document,
                            method: scan,
                            arg_bytes: 8,
                            ret_bytes: 64,
                            args: vec![],
                        },
                    ],
                },
            ],
        ),
    );
    Arc::new(b.build(main, MethodId(0), 64, 4).unwrap())
}

fn pressure_config(heap: u64) -> PlatformConfig {
    let mut cfg = PlatformConfig::prototype(heap);
    // Small scenario: make GC sample often so the trigger sees pressure.
    cfg.gc = GcConfig {
        trigger_alloc_count: 8,
        trigger_alloc_bytes: 64 * 1024,
        cost_micros_per_object: 0.05,
    };
    cfg
}

/// The document needs ~40 × 20 KB = 800 KB + overheads; a 512 KB heap
/// cannot hold it.
// (The scan method below also reads class statics, so after offloading the
// document classes, static accesses must travel back to the client.)
const CHUNKS: u32 = 40;
const CHUNK_BYTES: u32 = 20_000;
const SMALL_HEAP: u64 = 512 * 1024;

#[test]
fn constrained_heap_without_offloading_fails_oom() {
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let mut cfg = pressure_config(SMALL_HEAP);
    cfg.monitoring = false; // no monitor, no controller, no offload
    let report = Platform::new(program, cfg).run();
    match &report.outcome {
        Err(VmError::OutOfMemory { .. }) => {}
        other => panic!("expected OOM, got {other:?}"),
    }
    assert!(!report.offloaded());
}

#[test]
fn offloading_rescues_the_constrained_heap() {
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    assert!(
        report.outcome.is_ok(),
        "expected completion, got {:?}",
        report.outcome
    );
    assert!(report.offloaded(), "an offload should have happened");

    let event = &report.offloads[0];
    assert!(event.outcome.objects_moved > 0);
    assert!(event.outcome.bytes_moved > 100_000);
    assert!(
        event.outcome.client_used_after < event.outcome.client_used_before,
        "client heap must shrink"
    );
    // The pinned Editor class stayed on the client: its node is client-side.
    let editor_node = event.graph.node_by_label("Editor").unwrap();
    assert!(event.partitioning.is_client(editor_node));
    // Remote execution happened after the offload.
    assert!(report.surrogate_requests_served > 0);
    assert!(report.comm_seconds > 0.0);
}

#[test]
fn platform_runs_are_deterministic() {
    // Virtual time makes the whole prototype repeatable, dispatcher
    // threads notwithstanding: two identical runs agree exactly.
    let run = || {
        let program = editor_program(CHUNKS, CHUNK_BYTES);
        Platform::new(program, pressure_config(SMALL_HEAP)).run()
    };
    let (a, b) = (run(), run());
    assert!(a.outcome.is_ok() && b.outcome.is_ok());
    assert_eq!(a.client_cpu_seconds, b.client_cpu_seconds);
    assert_eq!(a.surrogate_cpu_seconds, b.surrogate_cpu_seconds);
    assert_eq!(a.comm_seconds, b.comm_seconds);
    assert_eq!(a.remote_stats, b.remote_stats);
    assert_eq!(a.offloads.len(), b.offloads.len());
}

#[test]
fn static_data_is_served_by_the_client_after_offload() {
    // The offloaded Document::scan reads Editor statics: those accesses
    // must travel back to the client VM, which serves and counts them.
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    assert!(report.offloaded());
    assert!(
        report.remote_stats.remote_static_accesses > 0,
        "statics go home: {:?}",
        report.remote_stats
    );
}

#[test]
fn combined_policy_relieves_memory_while_weighing_time() {
    // Paper §8 "simultaneously consider multiple constraints": the
    // combined policy must still rescue the memory-constrained editor.
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let mut cfg = pressure_config(SMALL_HEAP);
    cfg.policy = PolicyKind::Combined {
        min_free_fraction: 0.20,
        margin: 0.0,
    };
    let report = Platform::new(program, cfg).run();
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    assert!(report.offloaded());
}

#[test]
fn offloading_works_over_a_real_tcp_socket() {
    // The same rescue scenario, with the RPC link carried by a localhost
    // TCP socket instead of in-process channels.
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let mut cfg = pressure_config(SMALL_HEAP);
    cfg.transport = aide_core::TransportKind::Tcp;
    let report = Platform::new(program, cfg).run();
    assert!(report.outcome.is_ok(), "{:?}", report.outcome);
    assert!(report.offloaded());
    assert!(report.surrogate_requests_served > 0);
}

#[test]
fn unconstrained_heap_never_offloads() {
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(16 << 20)).run();
    assert!(report.outcome.is_ok());
    assert!(!report.offloaded(), "no pressure, no offload");
    assert_eq!(report.surrogate_requests_served, 0);
    assert_eq!(report.comm_seconds, 0.0);
}

#[test]
fn offload_moves_most_of_the_document_memory() {
    // The paper observed ~90% of the heap offloaded for JavaNote because
    // the bandwidth-minimizing cut pushes all document data out.
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    let event = &report.offloads[0];
    assert!(
        event.offloaded_memory_fraction > 0.5,
        "bulk of tracked memory should offload, got {}",
        event.offloaded_memory_fraction
    );
}

#[test]
fn partitioning_computation_is_fast() {
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    let event = &report.offloads[0];
    // The paper reports ~0.1 s for a 138-node graph on a 600 MHz Pentium;
    // our graphs are smaller and machines faster.
    assert!(event.partition_elapsed.as_millis() < 1_000);
    assert!(event.candidates_evaluated >= 1);
}

#[test]
fn monitoring_metrics_are_collected() {
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(16 << 20)).run();
    let m = report.metrics;
    assert!(m.interaction_events > 0);
    assert!(m.objects_total >= CHUNKS as u64);
    assert!(m.classes_total >= 3);
    assert!(m.samples > 0, "GC cycles should sample metrics");
    assert!(m.graph_storage_bytes > 0);
}

#[test]
fn remote_native_calls_travel_back_to_the_client() {
    // Force the editor itself to be offloadable? No — natives pin it.
    // Instead check that after offload, document scans that execute on the
    // surrogate still produce client-served requests.
    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    assert!(report.outcome.is_ok());
    // The client's editor keeps calling the (remote) document: surrogate
    // serves those; any surrogate->client touches show up in remote stats.
    let r = report.remote_stats;
    assert!(r.remote_interactions > 0);
}

#[test]
fn cpu_policy_platform_declines_chatty_offload() {
    // A compute loop whose classes chat constantly with the pinned UI:
    // the CPU policy must refuse to offload (beneficial-offloading gate).
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let ui = b.add_native_class("Ui");
    let engine = b.add_class("Engine");
    let ping = b.add_method(
        ui,
        MethodDef::new(
            "ping",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 1,
                arg_bytes: 2_000,
                ret_bytes: 2_000,
            }],
        ),
    );
    let step = b.add_method(
        engine,
        MethodDef::new(
            "step",
            vec![
                Op::Work { micros: 5 },
                Op::Call {
                    obj: Reg(0),
                    class: ui,
                    method: ping,
                    arg_bytes: 2_000,
                    ret_bytes: 2_000,
                    args: vec![],
                },
            ],
        ),
    );
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: ui,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::New {
                    class: engine,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::Repeat {
                    n: 500,
                    body: vec![Op::Call {
                        obj: Reg(1),
                        class: engine,
                        method: step,
                        arg_bytes: 0,
                        ret_bytes: 0,
                        args: vec![Reg(0)],
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());

    let mut cfg = PlatformConfig::prototype(8 << 20);
    cfg.policy = PolicyKind::Cpu { margin: 0.0 };
    cfg.evaluation = EvaluationMode::Periodic {
        every_micros: 500.0,
    };
    let report = Platform::new(program, cfg).run();
    assert!(report.outcome.is_ok());
    assert!(
        !report.offloaded(),
        "chatty engine must not be offloaded by the beneficial gate"
    );
}

#[test]
fn platform_report_serde_round_trip() {
    use aide_core::{FailoverReport, PlatformReport};

    let program = editor_program(CHUNKS, CHUNK_BYTES);
    let mut report = Platform::new(program, pressure_config(SMALL_HEAP)).run();
    assert!(report.offloaded());
    assert!(
        !report.events.is_empty(),
        "the flight recorder should have captured the offload decision"
    );
    assert!(
        !report.telemetry.counters.is_empty(),
        "the run should have recorded metric activity"
    );
    // Provider-backed runs attach a failover summary; graft one on so the
    // round trip exercises that field too.
    report.failover = Some(FailoverReport {
        failovers: 1,
        reinstated_objects: 7,
        reinstated_bytes: 140_000,
        objects_lost: 0,
        reoffloads: 1,
        surrogates_used: vec!["alpha".to_string(), "bravo".to_string()],
        failover_durations_micros: vec![1_250],
    });

    let json = serde_json::to_string(&report).expect("report serializes");
    let back: PlatformReport = serde_json::from_str(&json).expect("report deserializes");
    // PlatformReport holds f64s and nested maps, so compare via a second
    // serialization: BTreeMap-backed snapshots make the encoding canonical.
    let json_again = serde_json::to_string(&back).expect("round-tripped report serializes");
    assert_eq!(json, json_again, "serde round trip must be lossless");

    assert_eq!(back.offloads.len(), report.offloads.len());
    assert_eq!(back.events.len(), report.events.len());
    assert_eq!(back.telemetry, report.telemetry);
    assert_eq!(back.failover, Some(report.failover.unwrap()));
    // The timeline survives the trip: the winner's policy score is still
    // explainable from the deserialized report.
    assert!(
        back.timeline().contains("policy score"),
        "timeline should name the winning candidate's policy score:\n{}",
        back.timeline()
    );
}

#[test]
fn cpu_policy_platform_offloads_compute_heavy_work() {
    // A heavy compute cluster with rare, small UI interactions: the CPU
    // policy should offload it to the 3.5x surrogate.
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let ui = b.add_native_class("Ui");
    let engine = b.add_class("Engine");
    b.add_method(
        ui,
        MethodDef::new(
            "blit",
            vec![Op::Native {
                kind: NativeKind::Framebuffer,
                work_micros: 5,
                arg_bytes: 64,
                ret_bytes: 0,
            }],
        ),
    );
    let crunch = b.add_method(
        engine,
        MethodDef::new("crunch", vec![Op::Work { micros: 20_000 }]),
    );
    b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: ui,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::New {
                    class: engine,
                    scalar_bytes: 100,
                    ref_slots: 0,
                    dst: Reg(1),
                },
                Op::Repeat {
                    n: 300,
                    body: vec![Op::Call {
                        obj: Reg(1),
                        class: engine,
                        method: crunch,
                        arg_bytes: 8,
                        ret_bytes: 8,
                        args: vec![],
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());

    let mut cfg = PlatformConfig::prototype(8 << 20);
    cfg.policy = PolicyKind::Cpu { margin: 0.0 };
    cfg.evaluation = EvaluationMode::Periodic {
        every_micros: 200_000.0, // evaluate after ~10 crunches
    };
    let report = Platform::new(program, cfg).run();
    assert!(report.outcome.is_ok());
    assert!(report.offloaded(), "compute-heavy engine should offload");
    // Remote execution consumed surrogate CPU at 3.5x speed.
    assert!(report.surrogate_cpu_seconds > 0.0);
    assert!(report.surrogate_requests_served > 0);
}
