//! The offload executor: turns a selected partitioning into actual object
//! migration from the client VM to the surrogate VM.
//!
//! For every graph node the policy placed on the surrogate, the executor
//! gathers the corresponding live objects from the client heap (all objects
//! of a class, or one specific object for object-granular array nodes),
//! removes them from the client heap, and ships them to the peer as a
//! *transactional* two-phase migration over the real RPC link: batched
//! `MigratePrepare` requests stage the objects on the surrogate, and a
//! single `MigrateCommit` installs them atomically. Nothing becomes
//! resident remotely before COMMIT, so any failure rolls back to the exact
//! pre-offload placement by reinstating the local shadow copies and
//! sending a best-effort `MigrateAbort`. The link time of the transfer is
//! charged to the shared communication clock — this is the "offloading
//! time" component of the paper's remote-execution overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aide_graph::{SelectedPartition, Side};
use aide_rpc::{Endpoint, Request};
use aide_telemetry::{FlightRecorder, PlatformEvent};
use aide_vm::{ClassId, Machine, ObjectId, ObjectRecord, VmError, VmResult};
use serde::{Deserialize, Serialize};

use crate::adapter::RefTables;
use crate::monitor::NodeKey;

/// Objects migrated per `MigratePrepare` request.
const MIGRATE_BATCH: usize = 256;

/// Process-wide migration transaction ids.
static NEXT_TXN: AtomicU64 = AtomicU64::new(1);

/// Summary of one executed offload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OffloadOutcome {
    /// Objects moved to the surrogate.
    pub objects_moved: u64,
    /// Heap bytes moved to the surrogate.
    pub bytes_moved: u64,
    /// Client heap bytes in use before the migration.
    pub client_used_before: u64,
    /// Client heap bytes in use after the migration.
    pub client_used_after: u64,
    /// Client-local objects newly pinned because migrated objects still
    /// reference them.
    pub back_references_pinned: u64,
    /// Wall-clock duration of the migration (victim gathering through the
    /// last `Migrate` reply), in microseconds.
    pub duration_micros: u64,
}

impl OffloadOutcome {
    /// Fraction of the client heap the migration freed.
    pub fn freed_fraction(&self, heap_capacity: u64) -> f64 {
        if heap_capacity == 0 {
            0.0
        } else {
            (self.client_used_before - self.client_used_after) as f64 / heap_capacity as f64
        }
    }
}

/// The serialized victims of one offload decision, gathered out of the
/// client heap: the objects have been removed (`migrate_out`), their
/// client-side back-references pinned, and import stubs recorded. This is
/// the raw material shared by the live two-phase migration and the relay
/// queue's deferred shipments — either path must eventually land the
/// objects on a surrogate or reinstate them.
pub(crate) struct GatheredShipment {
    /// The serialized victim objects, in migration order.
    pub objects: Vec<(ObjectId, ObjectRecord)>,
    /// Objects pinned because the gathered set still references them.
    pub pins: Vec<ObjectId>,
    /// How many of those pins were *new* exports (reference counts taken).
    pub pinned_count: u64,
    /// Total serialized payload size.
    pub bytes: u64,
    /// Client heap bytes in use before the gather.
    pub used_before: u64,
}

/// Gathers the victims named by `selection`/`keys` out of the client heap:
/// removes them, pins their client-side back-references, and records them
/// as imports for distributed GC. The caller owns what happens next —
/// shipping them live, parking them in a relay queue, or (on failure)
/// reinstating them.
///
/// # Errors
///
/// Returns [`VmError::RemoteFailure`] if a partitioning node has no
/// monitor key; the heap is untouched in that case.
pub(crate) fn gather_shipment(
    selection: &SelectedPartition,
    keys: &[NodeKey],
    client: &Machine,
    tables: &Arc<RefTables>,
) -> VmResult<GatheredShipment> {
    // Work out the concrete victim set under the client VM lock.
    let mut victim_classes: Vec<ClassId> = Vec::new();
    let mut victim_objects: Vec<ObjectId> = Vec::new();
    for node in selection.partitioning.nodes_on(Side::Surrogate) {
        match keys.get(node.index()) {
            Some(NodeKey::Class(c)) => victim_classes.push(*c),
            Some(NodeKey::Object(o)) => victim_objects.push(*o),
            None => {
                return Err(VmError::RemoteFailure(format!(
                    "partitioning node {node} has no monitor key"
                )))
            }
        }
    }

    let serialize_span = aide_trace::span(aide_trace::names::MIGRATE_SERIALIZE, "core");
    let vm = client.vm();
    let mut vm = vm.lock();
    let used_before = vm.heap().stats().used_bytes;

    // Gather ids first (can't mutate while iterating).
    let mut ids: Vec<ObjectId> = Vec::new();
    for (id, rec) in vm.heap().iter() {
        if victim_classes.contains(&rec.class) {
            ids.push(id);
        }
    }
    for &o in &victim_objects {
        if vm.heap().contains(o) {
            ids.push(o);
        }
    }
    ids.sort();
    ids.dedup();

    let mut objects: Vec<(ObjectId, ObjectRecord)> = Vec::with_capacity(ids.len());
    for id in ids {
        let record = vm.heap_mut().migrate_out(id)?;
        objects.push((id, record));
    }

    // Pin client-side objects the migrated set still points at: the
    // surrogate will hold those references from now on. The pinned set
    // is remembered so a failed migration can release it again.
    let mut pins: Vec<ObjectId> = Vec::new();
    let mut pinned_count = 0u64;
    for (_, record) in &objects {
        for slot in record.slots.iter().flatten() {
            if vm.heap().contains(*slot) {
                // Every export is recorded so a rollback can release
                // reference counts symmetrically.
                if tables.exports.export(*slot) {
                    vm.external_root_inc(*slot);
                    pinned_count += 1;
                }
                pins.push(*slot);
            }
        }
    }

    // The client keeps referencing every migrated object (frames,
    // remaining slots): record them as imports for distributed GC.
    for (id, _) in &objects {
        tables.imports.import(*id);
    }

    let bytes: u64 = objects.iter().map(|(_, r)| r.footprint()).sum();
    drop(vm);
    drop(serialize_span);
    Ok(GatheredShipment {
        objects,
        pins,
        pinned_count,
        bytes,
        used_before,
    })
}

/// Executes `selection` against the client machine, shipping the offloaded
/// objects to the surrogate through `endpoint`.
///
/// `keys[i]` names what graph node `i` stands for (class or single object).
///
/// # Errors
///
/// Returns [`VmError::RemoteFailure`] if migration RPCs fail; the client
/// heap is left consistent (objects that could not be shipped are
/// reinstalled).
pub fn execute_offload(
    selection: &SelectedPartition,
    keys: &[NodeKey],
    client: &Machine,
    endpoint: &Arc<Endpoint>,
    tables: &Arc<RefTables>,
) -> VmResult<OffloadOutcome> {
    execute_offload_tracked(selection, keys, client, endpoint, tables, None)
        .map(|(outcome, _, _)| outcome)
}

/// Like [`execute_offload`], but also returns shadow copies of the shipped
/// object records and the back-reference pins taken — the raw material for
/// a reinstatement ledger. If the surrogate later dies, the failover path
/// re-installs the shadow copies into the client heap and releases the
/// listed pins, restoring purely-local execution.
///
/// The migration itself runs as a two-phase transaction: every batch is
/// staged with `MigratePrepare` (retried under the endpoint's
/// [`aide_rpc::RetryPolicy`]), then a single `MigrateCommit` installs the
/// whole shipment atomically. If any phase fails, the shipment is aborted
/// remotely (best effort — the surrogate installed nothing), the shadow
/// copies are reinstated into the client heap, and the back-reference pins
/// are released: the pre-offload placement is restored exactly.
/// `recorder`, when given, receives `MigrationAborted` /
/// `MigrationRolledBack` events on that path.
///
/// # Errors
///
/// Same contract as [`execute_offload`]: on error the client heap has been
/// restored and nothing was tracked.
pub fn execute_offload_tracked(
    selection: &SelectedPartition,
    keys: &[NodeKey],
    client: &Machine,
    endpoint: &Arc<Endpoint>,
    tables: &Arc<RefTables>,
    recorder: Option<&FlightRecorder>,
) -> VmResult<(OffloadOutcome, Vec<(ObjectId, ObjectRecord)>, Vec<ObjectId>)> {
    let started = std::time::Instant::now();
    // The migration root span: every serialize/prepare/commit/rollback
    // child below — and the RPC spans nested under them, including the
    // surrogate's serve spans adopted over the wire — hangs off this one
    // node, which is what the critical-path analyzer attributes.
    let mut migration_span = aide_trace::span(aide_trace::names::MIGRATION, "core");

    let gathered = gather_shipment(selection, keys, client, tables)?;
    let GatheredShipment {
        objects: batch,
        pins: pinned_ids,
        pinned_count: back_references_pinned,
        bytes: bytes_moved,
        used_before,
    } = gathered;

    let objects_moved = batch.len() as u64;
    // Shadow copies for the caller's reinstatement ledger, taken before the
    // batch is consumed by shipping.
    let shadow = batch.clone();

    // Ship as one transaction: stage every batch with PREPARE (retried
    // against transient faults), then COMMIT the whole shipment. Nothing
    // becomes resident on the surrogate before COMMIT, so on any failure
    // the rollback is purely local: reinstate the shadow copies (they only
    // just left the heap, so capacity is guaranteed) and tell the
    // surrogate to discard its staging buffer.
    let txn = NEXT_TXN.fetch_add(1, Ordering::Relaxed);
    migration_span.arg("txn", txn);
    migration_span.arg("objects", objects_moved);
    migration_span.arg("bytes", bytes_moved);
    let mut ship_error: Option<String> = None;
    {
        let mut prepare_span = aide_trace::span(aide_trace::names::MIGRATE_PREPARE, "core");
        prepare_span.arg("txn", txn);
        let mut iter = batch.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<(ObjectId, ObjectRecord)> = iter.by_ref().take(MIGRATE_BATCH).collect();
            if let Err(e) = endpoint.call_with_retry(Request::MigratePrepare {
                txn,
                objects: chunk,
            }) {
                ship_error = Some(format!("migration PREPARE failed: {e}"));
                break;
            }
        }
    }
    if ship_error.is_none() {
        let mut commit_span = aide_trace::span(aide_trace::names::MIGRATE_COMMIT, "core");
        commit_span.arg("txn", txn);
        if let Err(e) = endpoint.call_with_retry(Request::MigrateCommit { txn }) {
            ship_error = Some(format!("migration COMMIT failed: {e}"));
        }
    }
    if let Some(reason) = ship_error {
        let mut rollback_span = aide_trace::span(aide_trace::names::MIGRATE_ROLLBACK, "core");
        rollback_span.arg("reason", &reason);
        migration_span.arg("outcome", "aborted");
        // Best effort: a dead link cannot abort, but then the surrogate's
        // staging buffer dies with the session anyway.
        let _ = endpoint.call_with_retry(Request::MigrateAbort { txn });
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            for (id, record) in shadow {
                vm.heap_mut()
                    .migrate_in(id, record)
                    .expect("reinstalled objects fit the space they vacated");
                tables.imports.remove(id);
            }
            // Release the back-reference pins taken for this migration.
            for id in &pinned_ids {
                if tables.exports.release(*id) {
                    vm.external_root_dec(*id);
                }
            }
        }
        // The aborted transaction may still leak frames (a late MigrateShip
        // retry, a replayed release); a fresh import epoch fences them off
        // so the surrogate counts them as stale instead of honoring them.
        tables.imports.begin_epoch();
        let telemetry = aide_telemetry::global();
        telemetry
            .counter(aide_telemetry::names::MIGRATIONS_ABORTED)
            .inc();
        telemetry
            .counter(aide_telemetry::names::MIGRATION_ROLLBACK_OBJECTS)
            .add(objects_moved);
        if let Some(rec) = recorder {
            rec.record(PlatformEvent::MigrationAborted {
                reason: reason.clone(),
            });
            rec.record(PlatformEvent::MigrationRolledBack {
                objects: objects_moved,
                bytes: bytes_moved,
            });
        }
        return Err(VmError::RemoteFailure(reason));
    }

    migration_span.arg("outcome", "committed");
    let client_used_after = client.vm().lock().heap().stats().used_bytes;
    let duration_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

    let telemetry = aide_telemetry::global();
    telemetry.counter(aide_telemetry::names::OFFLOADS).inc();
    telemetry
        .counter(aide_telemetry::names::OFFLOAD_BYTES)
        .add(bytes_moved);
    telemetry
        .histogram(
            aide_telemetry::names::OFFLOAD_DURATION_MICROS,
            aide_telemetry::buckets::DURATION_MICROS,
        )
        .observe(duration_micros);

    Ok((
        OffloadOutcome {
            objects_moved,
            bytes_moved,
            client_used_before: used_before,
            client_used_after,
            back_references_pinned,
            duration_micros,
        },
        shadow,
        pinned_ids,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_graph::{
        candidate_partitionings, EdgeInfo, ExecutionGraph, MemoryPolicy, NodeInfo, PartitionPolicy,
        PinReason, ResourceSnapshot,
    };
    use aide_rpc::{EndpointConfig, Link};
    use aide_vm::{MethodDef, MethodId, ProgramBuilder, VmConfig};

    use crate::adapter::VmDispatcher;

    fn setup() -> (Machine, Machine, Arc<Endpoint>, Arc<RefTables>) {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let doc = b.add_class("Document");
        let _ = doc;
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, MethodId(0), 0, 0).unwrap());

        let client = Machine::new(program.clone(), VmConfig::client(1 << 20));
        let surrogate = Machine::new(program, VmConfig::surrogate(16 << 20));

        let (link, ct, st) = Link::pair(aide_graph::CommParams::WAVELAN);
        let clock = link.clock.clone();
        let ctab = Arc::new(RefTables::new());
        let stab = Arc::new(RefTables::new());
        let cep = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(VmDispatcher::new(client.clone(), ctab.clone())),
            EndpointConfig::default(),
        );
        let _sep = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(VmDispatcher::new(surrogate.clone(), stab)),
            EndpointConfig::default(),
        );
        (client, surrogate, cep, ctab)
    }

    /// Builds a two-node graph (pinned Main, offloadable Document) and a
    /// selection offloading Document.
    fn doc_selection(doc_bytes: u64) -> (SelectedPartition, Vec<NodeKey>) {
        let mut g = ExecutionGraph::new();
        let main = g.add_node(NodeInfo::pinned("Main", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("Document"));
        g.node_mut(doc).memory_bytes = doc_bytes;
        g.record_interaction(main, doc, EdgeInfo::new(5, 100));
        let cands = candidate_partitionings(&g);
        let sel = MemoryPolicy::new(1e-6)
            .select(&g, ResourceSnapshot::new(1 << 20, 1 << 19), &cands)
            .expect("feasible");
        (
            sel,
            vec![NodeKey::Class(ClassId(0)), NodeKey::Class(ClassId(1))],
        )
    }

    #[test]
    fn offload_moves_class_objects_to_surrogate() {
        let (client, surrogate, cep, tables) = setup();
        // Populate the client heap: 3 Documents and 1 Main object.
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            for i in 0..3 {
                vm.heap_mut()
                    .insert(
                        ObjectId::client(i),
                        ObjectRecord::new(ClassId(1), 100_000, 0),
                    )
                    .unwrap();
            }
            vm.heap_mut()
                .insert(ObjectId::client(10), ObjectRecord::new(ClassId(0), 64, 0))
                .unwrap();
        }
        let (sel, keys) = doc_selection(300_000);
        let outcome = execute_offload(&sel, &keys, &client, &cep, &tables).unwrap();
        assert_eq!(outcome.objects_moved, 3);
        assert!(outcome.bytes_moved >= 300_000);
        assert!(outcome.client_used_after < outcome.client_used_before);

        let svm = surrogate.vm();
        let svm = svm.lock();
        assert_eq!(svm.heap().stats().migrated_in, 3);
        assert!(svm.heap().contains(ObjectId::client(0)));
        // Main stayed home.
        assert!(client.vm().lock().heap().contains(ObjectId::client(10)));
    }

    #[test]
    fn offload_pins_back_references() {
        let (client, _surrogate, cep, tables) = setup();
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            // A Document that points back at a Main object.
            let mut rec = ObjectRecord::new(ClassId(1), 1_000, 1);
            rec.slots[0] = Some(ObjectId::client(10));
            vm.heap_mut().insert(ObjectId::client(0), rec).unwrap();
            vm.heap_mut()
                .insert(ObjectId::client(10), ObjectRecord::new(ClassId(0), 64, 0))
                .unwrap();
        }
        let (sel, keys) = doc_selection(1_000);
        let outcome = execute_offload(&sel, &keys, &client, &cep, &tables).unwrap();
        assert_eq!(outcome.back_references_pinned, 1);
        assert_eq!(client.vm().lock().external_root_count(), 1);
        assert!(tables.exports.contains(ObjectId::client(10)));
        assert!(tables.imports.contains(ObjectId::client(0)));
    }

    #[test]
    fn offload_charges_transfer_time() {
        let (client, _surrogate, cep, tables) = setup();
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(
                    ObjectId::client(0),
                    ObjectRecord::new(ClassId(1), 550_000, 0),
                )
                .unwrap();
        }
        let (sel, keys) = doc_selection(550_000);
        execute_offload(&sel, &keys, &client, &cep, &tables).unwrap();
        // 550 KB at 11 Mbps ≈ 0.4 s of simulated link time.
        assert!(cep.clock().seconds() > 0.35);
    }

    #[test]
    fn object_granular_nodes_move_single_objects() {
        let (client, surrogate, cep, tables) = setup();
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            for i in 0..2 {
                vm.heap_mut()
                    .insert(
                        ObjectId::client(i),
                        ObjectRecord::new(ClassId(1), 10_000, 0),
                    )
                    .unwrap();
            }
        }
        // Graph: pinned Main + two object-granular array nodes.
        let mut g = ExecutionGraph::new();
        let main = g.add_node(NodeInfo::pinned("Main", PinReason::NativeMethods));
        let a0 = g.add_node(NodeInfo::new("obj0"));
        let a1 = g.add_node(NodeInfo::new("obj1"));
        g.node_mut(a0).memory_bytes = 10_000;
        g.node_mut(a1).memory_bytes = 10_000;
        g.record_interaction(main, a0, EdgeInfo::new(100, 10_000));
        g.record_interaction(main, a1, EdgeInfo::new(1, 10));
        let cands = candidate_partitionings(&g);
        // Free at least ~1% of a 1 MiB heap => one 10 KB object suffices.
        let sel = MemoryPolicy::new(0.009)
            .select(&g, ResourceSnapshot::new(1 << 20, 1 << 19), &cands)
            .expect("feasible");
        let keys = vec![
            NodeKey::Class(ClassId(0)),
            NodeKey::Object(ObjectId::client(0)),
            NodeKey::Object(ObjectId::client(1)),
        ];
        let outcome = execute_offload(&sel, &keys, &client, &cep, &tables).unwrap();
        // The cheapest candidate offloads only the cold array (obj1).
        assert_eq!(outcome.objects_moved, 1);
        let svm = surrogate.vm();
        let svm = svm.lock();
        assert!(svm.heap().contains(ObjectId::client(1)));
        assert!(!svm.heap().contains(ObjectId::client(0)));
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use aide_graph::{
        candidate_partitionings, EdgeInfo, ExecutionGraph, MemoryPolicy, NodeInfo, PartitionPolicy,
        PinReason, ResourceSnapshot,
    };
    use aide_rpc::{EndpointConfig, Link};
    use aide_vm::{MethodDef, MethodId, ProgramBuilder, VmConfig};

    use crate::adapter::{RefTables, VmDispatcher};
    use std::sync::Arc;

    /// A surrogate whose guest heap is far too small: migration must fail
    /// remotely and the client heap must be restored byte-for-byte.
    #[test]
    fn failed_migration_restores_the_client_heap() {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let doc = b.add_class("Document");
        let _ = doc;
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, MethodId(0), 0, 0).unwrap());

        let client = aide_vm::Machine::new(program.clone(), VmConfig::client(4 << 20));
        let surrogate = aide_vm::Machine::new(program, VmConfig::surrogate(64 << 10));

        let (link, ct, st) = Link::pair(aide_graph::CommParams::WAVELAN);
        let clock = link.clock.clone();
        let ctab = Arc::new(RefTables::new());
        let stab = Arc::new(RefTables::new());
        let cep = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(VmDispatcher::new(client.clone(), ctab.clone())),
            EndpointConfig::default(),
        );
        let _sep = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(VmDispatcher::new(surrogate.clone(), stab)),
            EndpointConfig::default(),
        );

        // 3 MB of documents on the client (each pointing back at a pinned
        // anchor object); the surrogate offers 64 KB.
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(ObjectId::client(999), ObjectRecord::new(ClassId(0), 64, 0))
                .unwrap();
            for i in 0..30 {
                let mut rec = ObjectRecord::new(ClassId(1), 100_000, 1);
                rec.slots[0] = Some(ObjectId::client(999));
                vm.heap_mut().insert(ObjectId::client(i), rec).unwrap();
            }
        }
        let used_before = client.vm().lock().heap().stats().used_bytes;

        let mut g = ExecutionGraph::new();
        let m = g.add_node(NodeInfo::pinned("Main", PinReason::NativeMethods));
        let d = g.add_node(NodeInfo::new("Document"));
        g.node_mut(d).memory_bytes = 3_000_000;
        g.record_interaction(m, d, EdgeInfo::new(5, 100));
        let cands = candidate_partitionings(&g);
        let sel = MemoryPolicy::new(0.1)
            .select(&g, ResourceSnapshot::new(4 << 20, 3 << 20), &cands)
            .expect("feasible on paper");
        let keys = vec![NodeKey::Class(ClassId(0)), NodeKey::Class(ClassId(1))];

        let recorder = FlightRecorder::new(16);
        let err = execute_offload_tracked(&sel, &keys, &client, &cep, &ctab, Some(&recorder))
            .unwrap_err();
        assert!(matches!(err, VmError::RemoteFailure(_)), "{err:?}");

        // The flight recorder explains the abort and the rollback.
        let events: Vec<_> = recorder.events().into_iter().map(|e| e.event).collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, PlatformEvent::MigrationAborted { .. })),
            "expected a MigrationAborted event, got {events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, PlatformEvent::MigrationRolledBack { objects: 30, .. })),
            "expected a MigrationRolledBack event, got {events:?}"
        );

        // Client heap restored exactly; nothing half-resident anywhere;
        // the back-reference pins taken for the migration were released.
        let vm = client.vm();
        let vm = vm.lock();
        assert_eq!(vm.heap().stats().used_bytes, used_before);
        assert_eq!(vm.heap().stats().live_objects, 31);
        assert_eq!(vm.external_root_count(), 0, "rollback releases pins");
        let svm = surrogate.vm();
        let svm = svm.lock();
        assert_eq!(svm.heap().stats().live_objects, 0, "all-or-nothing install");
        assert!(!ctab.imports.contains(ObjectId::client(0)));
    }
}
