//! Dynamic policy selection (paper §6 "Must select policies dynamically"
//! and §8 future work).
//!
//! Figure 7 shows that the best triggering/partitioning parameters differ
//! per application: JavaNote performed best with the initial conservative
//! policy (trigger at 5% free, three reports, free ≥ 20%) while Dia and
//! Biomer preferred an eager one (trigger at 50% free, one report). This
//! module encodes that lesson as a profile-driven recommender: it inspects
//! the execution graph the monitor has built so far and picks parameters
//! based on how *concentrated* and how *hot* the offloadable memory is.

use serde::{Deserialize, Serialize};

use aide_graph::{EvalStrategy, ExecutionGraph, ResourceSnapshot};

use crate::monitor::TriggerConfig;
use crate::partitioner::PartitionerConfig;

/// A recommended policy parameterization, with the rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecommendation {
    /// Recommended memory trigger.
    pub trigger: TriggerConfig,
    /// Recommended minimum heap fraction a partitioning must free.
    pub min_free_fraction: f64,
    /// Which profile the application matched.
    pub profile: WorkloadProfile,
    /// Human-readable reasoning.
    pub rationale: &'static str,
}

/// Coarse workload profiles the selector distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadProfile {
    /// Memory is concentrated in a few cold classes (documents, buffers):
    /// offloading is cheap and precise, so wait for real pressure.
    ColdBulkData,
    /// Memory is diffuse or hot (interleaved model/UI interactions):
    /// offload eagerly, before the transfer grows and coupling deepens.
    HotDiffuseData,
    /// Not enough history to judge.
    Unknown,
}

/// Profile-driven policy selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicySelector {
    /// Memory-concentration threshold above which data counts as "bulk"
    /// (fraction of unpinned memory held by the single largest class).
    pub concentration_threshold: f64,
    /// Interaction-heat threshold for the bulk class (interactions
    /// incident to it per KB of its memory) above which it counts as
    /// "hot".
    pub heat_threshold: f64,
}

impl PolicySelector {
    /// Node count at and above which parallel candidate evaluation pays for
    /// its thread spawn-and-join overhead.
    pub const PARALLEL_NODE_THRESHOLD: usize = 512;

    /// Creates a selector with defaults tuned on the paper's workloads.
    pub fn new() -> Self {
        PolicySelector {
            concentration_threshold: 0.5,
            heat_threshold: 3.0,
        }
    }

    /// Recommends trigger and policy parameters for the application whose
    /// history is `graph`.
    pub fn recommend(
        &self,
        graph: &ExecutionGraph,
        _snapshot: ResourceSnapshot,
    ) -> PolicyRecommendation {
        let threshold = if self.concentration_threshold > 0.0 {
            self.concentration_threshold
        } else {
            0.5
        };
        let heat_threshold = if self.heat_threshold > 0.0 {
            self.heat_threshold
        } else {
            3.0
        };

        let unpinned_memory: u64 = graph
            .iter()
            .filter(|(_, n)| !n.is_pinned())
            .map(|(_, n)| n.memory_bytes)
            .sum();
        if unpinned_memory == 0 {
            return PolicyRecommendation {
                trigger: TriggerConfig::default(),
                min_free_fraction: 0.20,
                profile: WorkloadProfile::Unknown,
                rationale: "no offloadable memory observed yet; keep the paper's initial policy",
            };
        }

        let (bulk_node, largest) = graph
            .iter()
            .filter(|(_, n)| !n.is_pinned())
            .map(|(id, n)| (id, n.memory_bytes))
            .max_by_key(|&(_, m)| m)
            .expect("unpinned memory implies an unpinned node");
        let concentration = largest as f64 / unpinned_memory as f64;

        // Heat of the bulk data itself: interactions incident to the
        // largest class per KB of its memory. A cold document archive has
        // heat well below 1; a hammered model fragment is far above it.
        let incident: u64 = graph
            .neighbors(bulk_node)
            .map(|(_, e)| e.interactions)
            .sum();
        let heat = if largest == 0 {
            f64::INFINITY
        } else {
            incident as f64 / (largest as f64 / 1024.0)
        };

        if concentration >= threshold && heat < heat_threshold {
            PolicyRecommendation {
                trigger: TriggerConfig {
                    low_free_fraction: 0.05,
                    barren_concern_fraction: 0.10,
                    consecutive_reports: 3,
                },
                min_free_fraction: 0.20,
                profile: WorkloadProfile::ColdBulkData,
                rationale: "memory is concentrated in cold bulk classes: offloading is \
                            cheap and precise, wait for genuine pressure (JavaNote-like)",
            }
        } else {
            PolicyRecommendation {
                trigger: TriggerConfig {
                    low_free_fraction: 0.50,
                    barren_concern_fraction: 0.50,
                    consecutive_reports: 1,
                },
                min_free_fraction: 0.10,
                profile: WorkloadProfile::HotDiffuseData,
                rationale: "memory is diffuse or hot: offload eagerly, before transfer \
                            volume and coupling grow (Dia/Biomer-like)",
            }
        }
    }

    /// Recommends incremental-partitioner tuning for the application whose
    /// history is `graph`.
    ///
    /// Small graphs (the paper's 138-class scale) evaluate sequentially —
    /// thread spawn-and-join would dwarf the sweep itself. Past
    /// [`PARALLEL_NODE_THRESHOLD`](Self::PARALLEL_NODE_THRESHOLD) nodes the
    /// candidate sweep dominates, so fan out across all available cores
    /// (the winner is bit-identical either way). The churn threshold scales
    /// with the graph's total edge weight: skip epochs whose churn is below
    /// 0.5% of the observed interaction volume.
    pub fn recommend_partitioner(&self, graph: &ExecutionGraph) -> PartitionerConfig {
        let eval = if graph.node_count() >= Self::PARALLEL_NODE_THRESHOLD {
            EvalStrategy::Parallel { threads: 0 }
        } else {
            EvalStrategy::Sequential
        };
        let total_weight: u64 = graph.edges().map(|(_, e)| e.weight()).sum();
        PartitionerConfig {
            churn_threshold: total_weight / 200,
            eval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_graph::{EdgeInfo, NodeInfo, PinReason};

    fn snapshot() -> ResourceSnapshot {
        ResourceSnapshot::new(6 << 20, 3 << 20)
    }

    /// A JavaNote-like graph: one giant cold document class.
    fn cold_bulk_graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("CharArray"));
        let misc = g.add_node(NodeInfo::new("Misc"));
        g.node_mut(doc).memory_bytes = 5_000_000;
        g.node_mut(misc).memory_bytes = 200_000;
        g.record_interaction(ui, misc, EdgeInfo::new(2_000, 40_000));
        g.record_interaction(misc, doc, EdgeInfo::new(50, 5_000));
        g
    }

    /// A Biomer-like graph: memory diffuse across hot model classes.
    fn hot_diffuse_graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("View", PinReason::NativeMethods));
        let mut prev = ui;
        for i in 0..10 {
            let n = g.add_node(NodeInfo::new(format!("Model{i}")));
            g.node_mut(n).memory_bytes = 500_000;
            g.record_interaction(prev, n, EdgeInfo::new(100_000, 2_000_000));
            prev = n;
        }
        g
    }

    #[test]
    fn cold_bulk_gets_the_conservative_policy() {
        let rec = PolicySelector::new().recommend(&cold_bulk_graph(), snapshot());
        assert_eq!(rec.profile, WorkloadProfile::ColdBulkData);
        assert!((rec.trigger.low_free_fraction - 0.05).abs() < 1e-9);
        assert_eq!(rec.trigger.consecutive_reports, 3);
        assert!((rec.min_free_fraction - 0.20).abs() < 1e-9);
    }

    #[test]
    fn hot_diffuse_gets_the_eager_policy() {
        let rec = PolicySelector::new().recommend(&hot_diffuse_graph(), snapshot());
        assert_eq!(rec.profile, WorkloadProfile::HotDiffuseData);
        assert!((rec.trigger.low_free_fraction - 0.50).abs() < 1e-9);
        assert_eq!(rec.trigger.consecutive_reports, 1);
    }

    #[test]
    fn empty_history_defaults_to_the_initial_policy() {
        let g = ExecutionGraph::new();
        let rec = PolicySelector::new().recommend(&g, snapshot());
        assert_eq!(rec.profile, WorkloadProfile::Unknown);
        assert_eq!(rec.trigger.consecutive_reports, 3);
    }

    #[test]
    fn concentrated_but_hot_memory_is_treated_as_hot() {
        // One big class that is hammered by interactions.
        let mut g = cold_bulk_graph();
        let ui = g.node_by_label("Ui").unwrap();
        let doc = g.node_by_label("CharArray").unwrap();
        g.record_interaction(ui, doc, EdgeInfo::new(50_000_000, 100_000_000));
        let rec = PolicySelector::new().recommend(&g, snapshot());
        assert_eq!(rec.profile, WorkloadProfile::HotDiffuseData);
    }

    #[test]
    fn recommendation_serializes() {
        let rec = PolicySelector::new().recommend(&cold_bulk_graph(), snapshot());
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("ColdBulkData"));
    }

    #[test]
    fn small_graphs_evaluate_sequentially() {
        let cfg = PolicySelector::new().recommend_partitioner(&cold_bulk_graph());
        assert_eq!(cfg.eval, EvalStrategy::Sequential);
        // 0.5% of the observed interaction volume:
        // edges weigh (2000 + 40000) + (50 + 5000) = 47050.
        assert_eq!(cfg.churn_threshold, 47_050 / 200);
    }

    #[test]
    fn large_graphs_fan_out_across_all_cores() {
        let mut g = ExecutionGraph::new();
        for i in 0..PolicySelector::PARALLEL_NODE_THRESHOLD {
            g.add_node(NodeInfo::new(format!("C{i}")));
        }
        let cfg = PolicySelector::new().recommend_partitioner(&g);
        assert_eq!(cfg.eval, EvalStrategy::Parallel { threads: 0 });
        assert_eq!(cfg.churn_threshold, 0, "no interactions observed yet");
    }
}
