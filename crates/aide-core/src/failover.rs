//! Surrogate acquisition and failure recovery.
//!
//! The paper (§8) defers "recovery from surrogate failure or disconnection"
//! to future work; this module supplies it. Instead of taking a pre-built
//! transport, the platform can be handed a [`SurrogateProvider`] — a source
//! of surrogate connections (the `aide-surrogate` crate implements one that
//! discovers daemons over UDP beacons and ranks them by probed RTT and
//! capacity). The provider is consulted lazily, when the offload controller
//! first needs a surrogate, and again after a failure.
//!
//! Recovery works off a *reinstatement ledger*: every successful offload
//! records shadow copies of the shipped object records (see
//! [`crate::offload::execute_offload_tracked`]). When the active surrogate
//! dies — detected by a heartbeat probe failing, or by a mid-call
//! `Disconnected`/`Timeout` — the ledger entries the client still references
//! are re-installed into the client heap by the same transactional-migration
//! machinery that shipped them, the dead lease's GC pins are released, and
//! execution continues degraded (purely local). The next resource-pressure
//! trigger asks the provider for the next-ranked surrogate, gated by
//! exponential backoff with deterministic jitter.
//!
//! Two prototype caveats, both inherent to ledger-based recovery: objects
//! the *surrogate* allocated after the offload are not in the ledger and
//! cannot be recovered (touching one after failover surfaces a dangling
//! reference), and shadow copies do not reflect slot writes performed
//! remotely after shipping.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_graph::{CommParams, SelectedPartition};
use aide_rpc::{Dispatcher, Endpoint, EndpointConfig, NetClock, Reply, Request, RpcError};
use aide_telemetry::{FlightRecorder, PlatformEvent};
use aide_vm::{
    ClassId, Machine, MethodId, NativeKind, ObjectId, ObjectRecord, RemoteAccess, VmError, VmResult,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::adapter::RefTables;
use crate::monitor::NodeKey;
use crate::nondet::{LinkPhase, NondetSource};
use crate::offload::{gather_shipment, GatheredShipment};
use crate::relay::{RelayShipment, RelaySink};

/// Connection context handed to a [`SurrogateProvider`] when the platform
/// needs a surrogate: everything required to start the client-side
/// [`Endpoint`] for a new session.
pub struct ProviderContext {
    /// Link parameters used for simulated timing on the new session.
    pub comm: CommParams,
    /// The platform's shared simulated-communication clock.
    pub clock: Arc<NetClock>,
    /// Dispatcher serving the surrogate's callbacks against the client VM.
    pub dispatcher: Arc<dyn Dispatcher>,
    /// Endpoint tuning (worker pool depth, call/drain timeouts).
    pub endpoint_config: EndpointConfig,
}

impl std::fmt::Debug for ProviderContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProviderContext")
            .field("comm", &self.comm)
            .field("endpoint_config", &self.endpoint_config)
            .finish()
    }
}

/// A live connection to one surrogate, as produced by a provider.
pub struct SurrogateLease {
    /// Human-readable surrogate identity (address, or a test label).
    pub name: String,
    /// The started client-side endpoint for this session.
    pub endpoint: Arc<Endpoint>,
}

impl std::fmt::Debug for SurrogateLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SurrogateLease")
            .field("name", &self.name)
            .finish()
    }
}

/// Supplies surrogate connections to the platform.
///
/// Implementations range from a fixed list of pre-built sessions (tests)
/// to the full discovery registry in the `aide-surrogate` crate. `acquire`
/// is called at most once at a time and should return the best currently
/// known candidate, or `None` if no surrogate is reachable right now.
pub trait SurrogateProvider: Send + Sync {
    /// Connects to the best available surrogate and starts its session.
    fn acquire(&self, ctx: &ProviderContext) -> Option<SurrogateLease>;

    /// Notes that the lease named `name` failed (the provider should stop
    /// ranking that surrogate until it proves healthy again).
    fn report_failure(&self, name: &str);

    /// Notes that `name` refused service with a `Busy` reply: the
    /// surrogate is alive but saturated, and should be skipped for about
    /// `retry_after_ms` rather than marked dead. The default treats
    /// saturation like failure, which is safe but loses the distinction.
    fn report_busy(&self, name: &str, retry_after_ms: u32) {
        let _ = retry_after_ms;
        self.report_failure(name);
    }
}

/// Exponential backoff with deterministic jitter, gating re-acquisition
/// after surrogate failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay after the first failure.
    pub base: Duration,
    /// Multiplier applied per successive failure.
    pub factor: f64,
    /// Upper bound on the delay.
    pub max: Duration,
    /// Jitter amplitude: each delay is scaled by a factor drawn from
    /// `[1 - jitter, 1 + jitter]` (deterministic xorshift stream).
    pub jitter: f64,
    /// Seed for the jitter stream (fixed default keeps runs reproducible).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(250),
            factor: 2.0,
            max: Duration::from_secs(30),
            jitter: 0.25,
            seed: 0x5DEECE66D,
        }
    }
}

/// Runtime state for one backoff sequence.
#[derive(Debug)]
pub(crate) struct Backoff {
    config: BackoffConfig,
    consecutive_failures: u32,
    not_before: Option<Instant>,
    rng: u64,
}

impl Backoff {
    pub(crate) fn new(config: BackoffConfig) -> Self {
        Backoff {
            config,
            consecutive_failures: 0,
            // xorshift must not start at 0; the default seed never is.
            rng: config.seed.max(1),
            not_before: None,
        }
    }

    /// Whether enough time has passed to try again.
    pub(crate) fn ready(&self) -> bool {
        self.not_before.is_none_or(|t| Instant::now() >= t)
    }

    /// The delay that would gate the next attempt after one more failure.
    fn next_delay(&mut self) -> Duration {
        let exp = self.config.base.as_secs_f64()
            * self
                .config
                .factor
                .powi(self.consecutive_failures.min(32) as i32);
        let capped = exp.min(self.config.max.as_secs_f64());
        // xorshift64: deterministic jitter without a rand dependency.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let unit = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 + self.config.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * scale).max(0.0))
    }

    /// Records a failure, pushing the next attempt out.
    pub(crate) fn note_failure(&mut self) {
        let delay = self.next_delay();
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        self.not_before = Some(Instant::now() + delay);
    }

    /// Records a success, resetting the sequence.
    pub(crate) fn note_success(&mut self) {
        self.consecutive_failures = 0;
        self.not_before = None;
    }
}

/// Failover tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverConfig {
    /// Period between liveness probes of the active surrogate.
    pub heartbeat_interval: Duration,
    /// How long a probe may take before the surrogate is declared dead.
    pub probe_timeout: Duration,
    /// Backoff between re-acquisition attempts after failures.
    pub backoff: BackoffConfig,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            heartbeat_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_secs(1),
            backoff: BackoffConfig::default(),
        }
    }
}

/// What the failover machinery did during a platform run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Surrogate failures detected and recovered from.
    pub failovers: u64,
    /// Ledger objects re-installed into the client heap.
    pub reinstated_objects: u64,
    /// Heap bytes re-installed into the client heap.
    pub reinstated_bytes: u64,
    /// Ledger objects that could not be re-installed (client heap full
    /// even after collection) or were allocated remotely and lost.
    pub objects_lost: u64,
    /// Offloads shipped to a replacement surrogate after a failover.
    pub reoffloads: u64,
    /// Names of every surrogate the run held a lease on, in order.
    pub surrogates_used: Vec<String>,
    /// Wall-clock duration of each recovery (lease retirement through
    /// ledger reinstatement), in microseconds, in failover order.
    pub failover_durations_micros: Vec<u64>,
    /// Migrations parked in the relay queue because no surrogate was
    /// reachable at decision time.
    #[serde(default)]
    pub migrations_queued: u64,
    /// Queued migrations later delivered to a surrogate on reconnect.
    #[serde(default)]
    pub migrations_relayed: u64,
    /// Queued migrations that expired (TTL) and were reinstated locally.
    #[serde(default)]
    pub relay_expired: u64,
    /// Queued migrations recalled into the client heap because execution
    /// went purely local while they were still parked.
    #[serde(default)]
    pub relay_recalled: u64,
    /// Leases retired because the surrogate answered `Busy` (admission
    /// control), as opposed to dying.
    #[serde(default)]
    pub busy_rejections: u64,
}

/// Shared failover state: the active lease, the reinstatement ledger, and
/// the recovery path. One per platform run.
pub(crate) struct FailoverCore {
    provider: Arc<dyn SurrogateProvider>,
    ctx: ProviderContext,
    client: Machine,
    tables: Arc<RefTables>,
    probe_timeout: Duration,
    /// The active lease. Held (as a lock) across the whole recovery path so
    /// concurrent failure detections — mutator call and heartbeat — are
    /// serialized: the second detector blocks, then finds no active lease.
    active: Mutex<Option<SurrogateLease>>,
    /// Shadow copies of every object shipped to the active surrogate.
    ledger: Mutex<Vec<(ObjectId, ObjectRecord)>>,
    /// Back-reference pins taken by those shipments.
    pins: Mutex<Vec<ObjectId>>,
    backoff: Mutex<Backoff>,
    failovers: AtomicU64,
    reinstated_objects: AtomicU64,
    reinstated_bytes: AtomicU64,
    objects_lost: AtomicU64,
    reoffloads: AtomicU64,
    surrogates_used: Mutex<Vec<String>>,
    failover_durations: Mutex<Vec<u64>>,
    /// Flight recorder for decision tracing, when the platform wired one.
    recorder: Mutex<Option<Arc<FlightRecorder>>>,
    /// Nondeterminism seam, when the platform wired one: link deaths and
    /// recoveries are nondeterministic inputs to the decision pipeline.
    nondet: Mutex<Option<Arc<dyn NondetSource>>>,
    /// Requests served / frames exchanged, accumulated over retired leases.
    served_total: AtomicU64,
    frames_total: AtomicU64,
    /// Store-and-forward queue for migrations decided while no surrogate
    /// was reachable; `None` disables the relay path entirely.
    relay: Mutex<Option<Arc<dyn RelaySink>>>,
    migrations_queued: AtomicU64,
    migrations_relayed: AtomicU64,
    relay_expired: AtomicU64,
    relay_recalled: AtomicU64,
    busy_rejections: AtomicU64,
}

impl FailoverCore {
    pub(crate) fn new(
        provider: Arc<dyn SurrogateProvider>,
        ctx: ProviderContext,
        client: Machine,
        tables: Arc<RefTables>,
        config: &FailoverConfig,
    ) -> Self {
        FailoverCore {
            provider,
            ctx,
            client,
            tables,
            probe_timeout: config.probe_timeout,
            active: Mutex::new(None),
            ledger: Mutex::new(Vec::new()),
            pins: Mutex::new(Vec::new()),
            backoff: Mutex::new(Backoff::new(config.backoff)),
            failovers: AtomicU64::new(0),
            reinstated_objects: AtomicU64::new(0),
            reinstated_bytes: AtomicU64::new(0),
            objects_lost: AtomicU64::new(0),
            reoffloads: AtomicU64::new(0),
            surrogates_used: Mutex::new(Vec::new()),
            failover_durations: Mutex::new(Vec::new()),
            recorder: Mutex::new(None),
            nondet: Mutex::new(None),
            served_total: AtomicU64::new(0),
            frames_total: AtomicU64::new(0),
            relay: Mutex::new(None),
            migrations_queued: AtomicU64::new(0),
            migrations_relayed: AtomicU64::new(0),
            relay_expired: AtomicU64::new(0),
            relay_recalled: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
        }
    }

    /// Wires a store-and-forward relay queue: offloads decided while no
    /// surrogate is reachable are parked there instead of dropped.
    pub(crate) fn set_relay(&self, relay: Arc<dyn RelaySink>) {
        *self.relay.lock() = Some(relay);
    }

    /// Wires the platform's flight recorder so recoveries leave a trace.
    pub(crate) fn set_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.recorder.lock() = Some(recorder);
    }

    /// Wires the platform's nondeterminism seam so link transitions are
    /// captured alongside the decisions they influence.
    pub(crate) fn set_nondet(&self, nondet: Arc<dyn NondetSource>) {
        *self.nondet.lock() = Some(nondet);
    }

    fn note_link(&self, surrogate: &str, phase: LinkPhase) {
        if let Some(nondet) = self.nondet.lock().as_ref() {
            nondet.link_transition(surrogate, phase);
        }
    }

    fn record_event(&self, event: PlatformEvent) {
        if let Some(recorder) = self.recorder.lock().as_ref() {
            recorder.record(event);
        }
    }

    pub(crate) fn client(&self) -> &Machine {
        &self.client
    }

    /// The active endpoint, if any — for remote calls and GC releases.
    pub(crate) fn endpoint_for_call(&self) -> Option<Arc<Endpoint>> {
        self.active.lock().as_ref().map(|l| l.endpoint.clone())
    }

    /// Returns an endpoint for offloading, acquiring a surrogate from the
    /// provider if none is active. `None` when no surrogate is reachable or
    /// the backoff gate is closed — the caller skips this offload attempt.
    pub(crate) fn acquire_for_offload(&self) -> Option<Arc<Endpoint>> {
        let mut active = self.active.lock();
        if let Some(lease) = active.as_ref() {
            return Some(lease.endpoint.clone());
        }
        if !self.backoff.lock().ready() {
            return None;
        }
        match self.provider.acquire(&self.ctx) {
            Some(lease) => {
                let endpoint = lease.endpoint.clone();
                // New session, fresh lease flow: stamp our imports epoch on
                // outgoing frames and renew our exports on its traffic.
                self.tables.attach_to(&endpoint);
                self.surrogates_used.lock().push(lease.name.clone());
                *active = Some(lease);
                self.backoff.lock().note_success();
                // A fresh lease is the relay's delivery moment: parked
                // shipments drain into the new surrogate before any new
                // offload piles on. Outside the `active` lock — delivery
                // RPCs must not block concurrent failure detection.
                drop(active);
                self.flush_relay(&endpoint);
                Some(endpoint)
            }
            None => {
                self.backoff.lock().note_failure();
                None
            }
        }
    }

    /// Gathers the victims of an offload decision out of the client heap
    /// and parks them in the relay queue — the store-and-forward path for
    /// "memory pressure now, surrogate later". Returns `false` (leaving
    /// the heap untouched, or restored) when no relay is wired, the queue
    /// is full, or nothing matched the selection.
    pub(crate) fn queue_for_relay(&self, selection: &SelectedPartition, keys: &[NodeKey]) -> bool {
        let Some(relay) = self.relay.lock().clone() else {
            return false;
        };
        if !relay.accepting() {
            return false;
        }
        let Ok(gathered) = gather_shipment(selection, keys, &self.client, &self.tables) else {
            return false;
        };
        let GatheredShipment {
            objects,
            pins,
            bytes,
            ..
        } = gathered;
        if objects.is_empty() {
            return false;
        }
        let object_count = objects.len() as u64;
        let shipment = RelayShipment {
            txn: 0, // assigned by the sink
            objects,
            pins,
            bytes,
            queued_for_ms: 0,
        };
        match relay.queue(shipment) {
            Ok(txn) => {
                self.migrations_queued.fetch_add(1, Ordering::Relaxed);
                self.record_event(PlatformEvent::MigrationQueued {
                    txn,
                    objects: object_count,
                    bytes,
                });
                true
            }
            Err(shipment) => {
                // The sink filled up between `accepting` and `queue`: put
                // everything back — a declined shipment must not strand
                // objects outside the heap.
                self.reinstate_shipment(shipment);
                false
            }
        }
    }

    /// Delivers parked shipments over a fresh lease and enters each
    /// delivered one into the reinstatement ledger, exactly as if it had
    /// been offloaded live.
    pub(crate) fn flush_relay(&self, endpoint: &Arc<Endpoint>) {
        let Some(relay) = self.relay.lock().clone() else {
            return;
        };
        if relay.depth() == 0 {
            return;
        }
        for shipment in relay.flush(endpoint) {
            self.migrations_relayed.fetch_add(1, Ordering::Relaxed);
            self.record_event(PlatformEvent::MigrationRelayed {
                txn: shipment.txn,
                objects: shipment.objects.len() as u64,
                bytes: shipment.bytes,
                queued_for_ms: shipment.queued_for_ms,
            });
            self.record_shipment(shipment.objects, shipment.pins);
        }
    }

    /// Expires over-TTL shipments back into the client heap. Runs on the
    /// platform's heartbeat cadence: better slow than lost.
    pub(crate) fn relay_tick(&self) {
        let Some(relay) = self.relay.lock().clone() else {
            return;
        };
        for shipment in relay.take_expired() {
            self.relay_expired.fetch_add(1, Ordering::Relaxed);
            self.record_event(PlatformEvent::RelayExpired {
                txn: shipment.txn,
                objects: shipment.objects.len() as u64,
                bytes: shipment.bytes,
            });
            self.reinstate_shipment(shipment);
        }
    }

    /// Recalls *every* parked shipment into the client heap. Called before
    /// serving a touch locally with no surrogate attached: a queued object
    /// is absent from the heap, so local execution without a recall would
    /// surface a dangling reference.
    pub(crate) fn recall_relay(&self) {
        let Some(relay) = self.relay.lock().clone() else {
            return;
        };
        if relay.depth() == 0 {
            return;
        }
        for shipment in relay.take_all() {
            self.relay_recalled.fetch_add(1, Ordering::Relaxed);
            self.record_event(PlatformEvent::RelayRecalled {
                txn: shipment.txn,
                objects: shipment.objects.len() as u64,
            });
            self.reinstate_shipment(shipment);
        }
    }

    /// Puts one gathered-but-undelivered shipment back: reinstall the
    /// objects, drop their import stubs, release the back-reference pins.
    /// The exact inverse of [`gather_shipment`].
    fn reinstate_shipment(&self, shipment: RelayShipment) {
        let vm = self.client.vm();
        let mut vm = vm.lock();
        let needed: u64 = shipment.objects.iter().map(|(_, r)| r.footprint()).sum();
        if needed > vm.heap().free_bytes() {
            vm.collect_now();
        }
        for (id, record) in shipment.objects {
            self.tables.imports.remove(id);
            if vm.heap_mut().migrate_in(id, record).is_err() {
                // The heap genuinely cannot hold it even after collection:
                // the object is lost, like a ledger entry that won't fit.
                self.objects_lost.fetch_add(1, Ordering::Relaxed);
            }
        }
        for id in &shipment.pins {
            if self.tables.exports.release(*id) {
                vm.external_root_dec(*id);
            }
        }
    }

    /// Records a successful shipment in the reinstatement ledger.
    pub(crate) fn record_shipment(
        &self,
        shadow: Vec<(ObjectId, ObjectRecord)>,
        pins: Vec<ObjectId>,
    ) {
        if self.failovers.load(Ordering::Relaxed) > 0 {
            self.reoffloads.fetch_add(1, Ordering::Relaxed);
        }
        self.ledger.lock().extend(shadow);
        self.pins.lock().extend(pins);
    }

    /// Number of failovers so far, for the controller's offload budget
    /// (each recovery earns one replacement offload).
    pub(crate) fn failovers_so_far(&self) -> u32 {
        self.failovers.load(Ordering::Relaxed).min(u32::MAX as u64) as u32
    }

    /// Full recovery: retire the active lease, reinstate the ledger, open
    /// the backoff gate's next window. Returns `true` if this call
    /// performed the recovery, `false` if there was nothing to recover
    /// (another thread already did, or no surrogate was active).
    pub(crate) fn handle_failure(&self) -> bool {
        self.retire_active(None)
    }

    /// Like [`handle_failure`](FailoverCore::handle_failure), but for a
    /// surrogate that answered `Busy`: the lease is retired and the ledger
    /// reinstated the same way, but the provider is told the surrogate is
    /// *saturated* (skip it briefly) rather than dead (probe it back to
    /// health).
    pub(crate) fn handle_saturation(&self, retry_after_ms: u32) -> bool {
        self.retire_active(Some(retry_after_ms))
    }

    fn retire_active(&self, saturation: Option<u32>) -> bool {
        let mut active = self.active.lock();
        let Some(lease) = active.take() else {
            return false;
        };
        let started = Instant::now();
        let mut span = aide_trace::span(aide_trace::names::FAILOVER, "core");
        span.arg("surrogate", &lease.name);
        self.record_event(PlatformEvent::LinkDied {
            surrogate: lease.name.clone(),
        });
        self.note_link(&lease.name, LinkPhase::Died);
        // Fail remaining in-flight calls fast and stop the session.
        lease.endpoint.shutdown();
        match saturation {
            Some(retry_after_ms) => {
                self.busy_rejections.fetch_add(1, Ordering::Relaxed);
                self.record_event(PlatformEvent::SessionRejected {
                    surrogate: lease.name.clone(),
                    retry_after_ms,
                });
                self.provider.report_busy(&lease.name, retry_after_ms);
            }
            None => self.provider.report_failure(&lease.name),
        }
        self.failovers.fetch_add(1, Ordering::Relaxed);
        let objects_before = self.reinstated_objects.load(Ordering::Relaxed);
        let bytes_before = self.reinstated_bytes.load(Ordering::Relaxed);
        let lost_before = self.objects_lost.load(Ordering::Relaxed);
        self.reinstate();
        self.backoff.lock().note_failure();
        let duration_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.failover_durations.lock().push(duration_micros);
        let telemetry = aide_telemetry::global();
        telemetry.counter(aide_telemetry::names::FAILOVERS).inc();
        telemetry
            .histogram(
                aide_telemetry::names::FAILOVER_DURATION_MICROS,
                aide_telemetry::buckets::DURATION_MICROS,
            )
            .observe(duration_micros);
        self.record_event(PlatformEvent::FailoverCompleted {
            surrogate: lease.name.clone(),
            reinstated_objects: self.reinstated_objects.load(Ordering::Relaxed) - objects_before,
            reinstated_bytes: self.reinstated_bytes.load(Ordering::Relaxed) - bytes_before,
            objects_lost: self.objects_lost.load(Ordering::Relaxed) - lost_before,
            duration_micros,
        });
        self.note_link(&lease.name, LinkPhase::Recovered);
        drop(active);
        // Joining is bounded by the endpoint's drain deadline; do it
        // outside the lock so other threads can proceed locally.
        lease.endpoint.join();
        self.note_retired(&lease.endpoint);
        true
    }

    /// Probes the active surrogate; on probe failure runs full recovery.
    /// Called by the platform's heartbeat thread. Also the relay queue's
    /// expiry cadence, whether or not a surrogate is active.
    pub(crate) fn heartbeat_tick(&self) {
        self.relay_tick();
        let Some(endpoint) = self.endpoint_for_call() else {
            return;
        };
        if endpoint.probe(self.probe_timeout).is_err() {
            self.handle_failure();
        }
    }

    /// After an offload error: if the active surrogate no longer answers
    /// probes, treat it as dead and recover. (A *remote* error — e.g. the
    /// surrogate heap rejecting the batch — leaves the lease alone.)
    pub(crate) fn fail_active_if_dead(&self) {
        let Some(endpoint) = self.endpoint_for_call() else {
            return;
        };
        if endpoint.probe(self.probe_timeout).is_err() {
            self.handle_failure();
        }
    }

    /// Re-installs ledger objects the client still references into the
    /// client heap, and releases the dead lease's back-reference pins.
    fn reinstate(&self) {
        let ledger: Vec<(ObjectId, ObjectRecord)> = std::mem::take(&mut *self.ledger.lock());
        let pins: Vec<ObjectId> = std::mem::take(&mut *self.pins.lock());
        let vm = self.client.vm();
        let mut vm = vm.lock();

        // Only objects the client still references come back — directly
        // (still in the import table) or transitively through the slots of
        // another reinstated entry. Everything else in the ledger has been
        // released by distributed GC and is garbage.
        let mut by_id: HashMap<ObjectId, ObjectRecord> = HashMap::new();
        for (id, record) in ledger {
            // Later shipments of the same id carry the fresher shadow.
            by_id.insert(id, record);
        }
        let mut selected: Vec<ObjectId> = by_id
            .keys()
            .filter(|id| self.tables.imports.contains(**id) && !vm.heap().contains(**id))
            .copied()
            .collect();
        let mut seen: HashSet<ObjectId> = selected.iter().copied().collect();
        let mut cursor = 0;
        while cursor < selected.len() {
            let id = selected[cursor];
            cursor += 1;
            for slot in by_id[&id].slots.clone().into_iter().flatten() {
                if !seen.contains(&slot) && by_id.contains_key(&slot) && !vm.heap().contains(slot) {
                    seen.insert(slot);
                    selected.push(slot);
                }
            }
        }
        let missing: Vec<(ObjectId, ObjectRecord)> = selected
            .into_iter()
            .map(|id| {
                let record = by_id.remove(&id).expect("selected from by_id");
                (id, record)
            })
            .collect();

        let needed: u64 = missing.iter().map(|(_, r)| r.footprint()).sum();
        if needed > vm.heap().free_bytes() {
            // One collection up front — never mid-loop, where a collection
            // could sweep a just-installed object whose only referent is a
            // not-yet-installed ledger entry.
            vm.collect_now();
        }

        for (id, record) in missing {
            let footprint = record.footprint();
            match vm.heap_mut().migrate_in(id, record) {
                Ok(()) => {
                    self.tables.imports.remove(id);
                    self.reinstated_objects.fetch_add(1, Ordering::Relaxed);
                    self.reinstated_bytes
                        .fetch_add(footprint, Ordering::Relaxed);
                }
                Err(_) => {
                    // Client heap genuinely cannot hold it: the object is
                    // lost; a later touch surfaces a dangling reference.
                    self.tables.imports.remove(id);
                    self.objects_lost.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        for id in pins {
            if self.tables.exports.release(id) {
                vm.external_root_dec(id);
            }
        }

        // Epoch fencing: the dead session's view of our references is
        // void. Bumping both epochs makes any late frame from it (a stale
        // renewal, a replayed release) a counted no-op, and whatever the
        // dead peer still held against us under the old epoch is handed
        // straight back to the collector instead of waiting out its TTL.
        self.tables.imports.begin_epoch();
        self.tables.exports.begin_epoch();
        let reclaimed = self.tables.exports.sweep_stale_epochs();
        if !reclaimed.is_empty() {
            for id in &reclaimed {
                vm.external_root_dec(*id);
            }
            self.record_event(PlatformEvent::ExportsReclaimed {
                objects: reclaimed.len() as u64,
                reason: "failover".into(),
            });
        }
    }

    fn note_retired(&self, endpoint: &Endpoint) {
        self.served_total
            .fetch_add(endpoint.requests_served(), Ordering::Relaxed);
        let traffic = endpoint.traffic();
        self.frames_total.fetch_add(
            traffic.frames_sent() + traffic.frames_received(),
            Ordering::Relaxed,
        );
    }

    /// Orderly end-of-run teardown of the active lease, if any.
    pub(crate) fn shutdown(&self) {
        let lease = self.active.lock().take();
        if let Some(lease) = lease {
            lease.endpoint.shutdown();
            lease.endpoint.join();
            self.note_retired(&lease.endpoint);
        }
    }

    /// Requests the client served for surrogates, over all leases.
    pub(crate) fn requests_served_total(&self) -> u64 {
        self.served_total.load(Ordering::Relaxed)
    }

    /// Frames exchanged (both directions, client side), over all leases.
    pub(crate) fn frames_total(&self) -> u64 {
        self.frames_total.load(Ordering::Relaxed)
    }

    pub(crate) fn report(&self) -> FailoverReport {
        FailoverReport {
            failovers: self.failovers.load(Ordering::Relaxed),
            reinstated_objects: self.reinstated_objects.load(Ordering::Relaxed),
            reinstated_bytes: self.reinstated_bytes.load(Ordering::Relaxed),
            objects_lost: self.objects_lost.load(Ordering::Relaxed),
            reoffloads: self.reoffloads.load(Ordering::Relaxed),
            surrogates_used: self.surrogates_used.lock().clone(),
            failover_durations_micros: self.failover_durations.lock().clone(),
            migrations_queued: self.migrations_queued.load(Ordering::Relaxed),
            migrations_relayed: self.migrations_relayed.load(Ordering::Relaxed),
            relay_expired: self.relay_expired.load(Ordering::Relaxed),
            relay_recalled: self.relay_recalled.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for FailoverCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverCore")
            .field("failovers", &self.failovers.load(Ordering::Relaxed))
            .finish()
    }
}

/// Outcome of one remote call attempt through the failover adapter.
enum CallOutcome {
    Reply(Reply),
    RemoteErr(String),
    /// The surrogate is gone and recovery ran (or had already run): the
    /// operation must now be served locally against the reinstated heap.
    FailedOver,
}

/// A [`RemoteAccess`] implementation that survives surrogate death: remote
/// touches go to the active lease; on `Disconnected`/`Timeout` the core
/// recovers (reinstating offloaded objects locally) and the touch is then
/// served by the local interpreter.
pub(crate) struct FailoverAdapter {
    core: Arc<FailoverCore>,
}

impl FailoverAdapter {
    pub(crate) fn new(core: Arc<FailoverCore>) -> Self {
        FailoverAdapter { core }
    }

    fn call(&self, request: Request) -> CallOutcome {
        let Some(endpoint) = self.core.endpoint_for_call() else {
            // About to serve locally with no surrogate attached: any
            // shipment still parked in the relay queue must come home
            // first, or touching a queued object would surface a dangling
            // reference.
            self.core.recall_relay();
            return CallOutcome::FailedOver;
        };
        // Retries (same seq, deduplicated on the serving side) mask
        // transient loss and corruption; only a persistently unreachable
        // surrogate escalates to failover.
        match endpoint.call_with_retry(request) {
            Ok(reply) => CallOutcome::Reply(reply),
            Err(RpcError::Remote(msg)) => CallOutcome::RemoteErr(msg),
            Err(RpcError::Protocol(msg)) => CallOutcome::RemoteErr(format!("protocol: {msg}")),
            Err(RpcError::Disconnected | RpcError::Timeout) => {
                self.core.handle_failure();
                CallOutcome::FailedOver
            }
            // A saturated surrogate is unusable for steady-state touches
            // just like a dead one — recover locally and let the next
            // placement pick a peer with headroom. The provider layer is
            // told this was saturation, not death, so the surrogate stays
            // in the registry under a brief cooldown.
            Err(RpcError::Busy { retry_after_ms }) => {
                self.core.handle_saturation(retry_after_ms);
                CallOutcome::FailedOver
            }
        }
    }

    /// Pins `id` if it is a local object about to be referenced remotely.
    fn export_if_local(&self, id: ObjectId) {
        let vm = self.core.client.vm();
        let mut vm = vm.lock();
        if vm.heap().contains(id) && self.core.tables.exports.export(id) {
            vm.external_root_inc(id);
        }
    }

    /// Notes receipt of a reference owned by the peer.
    fn import_if_remote(&self, id: ObjectId) {
        let vm = self.core.client.vm();
        let vm = vm.lock();
        if !vm.heap().contains(id) {
            self.core.tables.imports.import(id);
        }
    }
}

impl std::fmt::Debug for FailoverAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverAdapter").finish()
    }
}

impl RemoteAccess for FailoverAdapter {
    fn invoke(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        arg_bytes: u32,
        ret_bytes: u32,
        args: &[ObjectId],
    ) -> VmResult<()> {
        for &a in args {
            self.export_if_local(a);
        }
        self.import_if_remote(target);
        match self.call(Request::Invoke {
            target,
            class,
            method,
            arg_bytes,
            ret_bytes,
            args: args.to_vec(),
        }) {
            CallOutcome::Reply(_) => Ok(()),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => self.core.client.call_on(target, class, method, args),
        }
    }

    fn field_access(&self, target: ObjectId, bytes: u32, write: bool) -> VmResult<()> {
        self.import_if_remote(target);
        match self.call(Request::FieldAccess {
            target,
            bytes,
            write,
        }) {
            CallOutcome::Reply(_) => Ok(()),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => self.core.client.field_access_on(target, bytes, write),
        }
    }

    fn get_slot(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>> {
        self.import_if_remote(target);
        match self.call(Request::GetSlot { target, slot }) {
            CallOutcome::Reply(Reply::Slot(value)) => {
                if let Some(v) = value {
                    self.import_if_remote(v);
                }
                Ok(value)
            }
            CallOutcome::Reply(other) => Err(VmError::RemoteFailure(format!(
                "unexpected reply {other:?} to GetSlot"
            ))),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => self.core.client.get_slot_on(target, slot),
        }
    }

    fn put_slot(&self, target: ObjectId, slot: u16, value: Option<ObjectId>) -> VmResult<()> {
        if let Some(v) = value {
            self.export_if_local(v);
        }
        self.import_if_remote(target);
        match self.call(Request::PutSlot {
            target,
            slot,
            value,
        }) {
            CallOutcome::Reply(_) => Ok(()),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => self.core.client.put_slot_on(target, slot, value),
        }
    }

    fn native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        arg_bytes: u32,
        ret_bytes: u32,
    ) -> VmResult<()> {
        match self.call(Request::Native {
            caller,
            kind,
            work_micros,
            arg_bytes,
            ret_bytes,
        }) {
            CallOutcome::Reply(_) => Ok(()),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => {
                self.core.client.native_on(work_micros);
                Ok(())
            }
        }
    }

    fn static_access(
        &self,
        accessor: ClassId,
        class: ClassId,
        bytes: u32,
        write: bool,
    ) -> VmResult<()> {
        match self.call(Request::StaticAccess {
            accessor,
            class,
            bytes,
            write,
        }) {
            CallOutcome::Reply(_) => Ok(()),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => {
                self.core.client.static_access_on(class, bytes, write);
                Ok(())
            }
        }
    }

    fn class_of(&self, target: ObjectId) -> VmResult<ClassId> {
        match self.call(Request::ClassOf { target }) {
            CallOutcome::Reply(Reply::Class(c)) => Ok(c),
            CallOutcome::Reply(other) => Err(VmError::RemoteFailure(format!(
                "unexpected reply {other:?} to ClassOf"
            ))),
            CallOutcome::RemoteErr(msg) => Err(VmError::RemoteFailure(msg)),
            CallOutcome::FailedOver => self.core.client.class_of_local(target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_rpc::Link;
    use aide_vm::{MethodDef, ProgramBuilder, VmConfig};

    fn test_machine() -> Machine {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let _doc = b.add_class("Doc");
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());
        Machine::new(program, VmConfig::client(1 << 20))
    }

    struct NullDispatcher;
    impl Dispatcher for NullDispatcher {
        fn dispatch(&self, _request: Request) -> Result<Reply, String> {
            Ok(Reply::Unit)
        }
    }

    /// A provider handing out pre-built leases in order, counting calls.
    struct QueueProvider {
        leases: Mutex<Vec<SurrogateLease>>,
        acquire_calls: AtomicU64,
        failures: Mutex<Vec<String>>,
    }

    impl SurrogateProvider for QueueProvider {
        fn acquire(&self, _ctx: &ProviderContext) -> Option<SurrogateLease> {
            self.acquire_calls.fetch_add(1, Ordering::Relaxed);
            let mut leases = self.leases.lock();
            if leases.is_empty() {
                None
            } else {
                Some(leases.remove(0))
            }
        }

        fn report_failure(&self, name: &str) {
            self.failures.lock().push(name.to_string());
        }
    }

    fn test_ctx(clock: Arc<NetClock>) -> ProviderContext {
        ProviderContext {
            comm: CommParams::WAVELAN,
            clock,
            dispatcher: Arc::new(NullDispatcher),
            endpoint_config: EndpointConfig {
                workers: 2,
                call_timeout: Duration::from_millis(200),
                drain_timeout: Duration::from_millis(100),
                ..EndpointConfig::default()
            },
        }
    }

    /// Builds a lease over an in-process link whose surrogate side is a
    /// trivially-serving endpoint. Returns the surrogate endpoint too so
    /// the test can keep (or kill) it.
    fn test_lease(name: &str) -> (SurrogateLease, Arc<Endpoint>) {
        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let config = EndpointConfig {
            workers: 2,
            call_timeout: Duration::from_millis(200),
            drain_timeout: Duration::from_millis(100),
            retry: aide_rpc::RetryPolicy {
                max_attempts: 2,
                attempt_timeout: Duration::from_millis(200),
                deadline: Duration::from_millis(500),
                ..aide_rpc::RetryPolicy::default()
            },
        };
        let client_ep = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(NullDispatcher),
            config,
        );
        let surrogate_ep =
            Endpoint::start(st, link.params, clock, Arc::new(NullDispatcher), config);
        (
            SurrogateLease {
                name: name.to_string(),
                endpoint: client_ep,
            },
            surrogate_ep,
        )
    }

    fn quick_config() -> FailoverConfig {
        FailoverConfig {
            heartbeat_interval: Duration::from_millis(20),
            probe_timeout: Duration::from_millis(100),
            backoff: BackoffConfig {
                base: Duration::from_millis(5),
                factor: 2.0,
                max: Duration::from_millis(50),
                jitter: 0.2,
                seed: 7,
            },
        }
    }

    #[test]
    fn backoff_delays_grow_and_reset() {
        let config = BackoffConfig {
            base: Duration::from_millis(100),
            factor: 2.0,
            max: Duration::from_secs(1),
            jitter: 0.25,
            seed: 42,
        };
        let mut b = Backoff::new(config);
        assert!(b.ready(), "no failures yet");
        let d0 = b.next_delay();
        // First delay jitters around the base.
        assert!(
            d0 >= Duration::from_millis(75) && d0 <= Duration::from_millis(125),
            "{d0:?}"
        );
        b.note_failure();
        assert!(!b.ready(), "gate closed after a failure");
        let d1 = b.next_delay();
        assert!(
            d1 >= Duration::from_millis(150) && d1 <= Duration::from_millis(250),
            "{d1:?}"
        );
        // Delays never exceed max (plus jitter headroom).
        for _ in 0..20 {
            b.note_failure();
        }
        assert!(b.next_delay() <= Duration::from_millis(1250));
        b.note_success();
        assert!(b.ready(), "success reopens the gate");
        let d_reset = b.next_delay();
        assert!(d_reset <= Duration::from_millis(125), "{d_reset:?}");
    }

    #[test]
    fn backoff_jitter_is_deterministic_per_seed() {
        let config = BackoffConfig::default();
        let mut a = Backoff::new(config);
        let mut b = Backoff::new(config);
        for _ in 0..5 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn acquire_is_gated_by_backoff_after_provider_failure() {
        let client = test_machine();
        let tables = Arc::new(RefTables::new());
        let provider = Arc::new(QueueProvider {
            leases: Mutex::new(Vec::new()), // never has a surrogate
            acquire_calls: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
        });
        let clock = Arc::new(NetClock::new());
        let mut config = quick_config();
        config.backoff.base = Duration::from_secs(60); // gate stays closed
        let core = FailoverCore::new(provider.clone(), test_ctx(clock), client, tables, &config);
        assert!(core.acquire_for_offload().is_none());
        assert_eq!(provider.acquire_calls.load(Ordering::Relaxed), 1);
        // Second attempt is swallowed by the backoff gate: no provider call.
        assert!(core.acquire_for_offload().is_none());
        assert_eq!(provider.acquire_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn acquire_reuses_the_active_lease() {
        let client = test_machine();
        let tables = Arc::new(RefTables::new());
        let (lease, _sep) = test_lease("s1");
        let provider = Arc::new(QueueProvider {
            leases: Mutex::new(vec![lease]),
            acquire_calls: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
        });
        let clock = Arc::new(NetClock::new());
        let core = FailoverCore::new(
            provider.clone(),
            test_ctx(clock),
            client,
            tables,
            &quick_config(),
        );
        assert!(core.acquire_for_offload().is_some());
        assert!(core.acquire_for_offload().is_some());
        assert_eq!(
            provider.acquire_calls.load(Ordering::Relaxed),
            1,
            "lease reused"
        );
        assert_eq!(core.report().surrogates_used, vec!["s1".to_string()]);
        core.shutdown();
    }

    #[test]
    fn handle_failure_reinstates_ledger_objects_and_releases_pins() {
        let client = test_machine();
        let tables = Arc::new(RefTables::new());
        let (lease, _sep) = test_lease("s1");
        let provider = Arc::new(QueueProvider {
            leases: Mutex::new(Vec::new()),
            acquire_calls: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
        });
        let clock = Arc::new(NetClock::new());
        let core = FailoverCore::new(
            provider.clone(),
            test_ctx(clock),
            client.clone(),
            tables.clone(),
            &quick_config(),
        );
        *core.active.lock() = Some(lease);

        // Simulate an earlier offload: three Docs left the client heap.
        // `doc_a` (still imported) references local `anchor` (pinned) and
        // offloaded `doc_c` (reachable only through `doc_a`); `doc_b` was
        // since dropped by distributed GC and is garbage.
        let doc_a = ObjectId::client(1);
        let doc_b = ObjectId::client(2);
        let doc_c = ObjectId::client(3);
        let anchor = ObjectId::client(10);
        let (rec_a, rec_b, rec_c) = {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(anchor, ObjectRecord::new(ClassId(0), 64, 0))
                .unwrap();
            let mut rec_a = ObjectRecord::new(ClassId(1), 1_000, 2);
            rec_a.slots[0] = Some(anchor);
            rec_a.slots[1] = Some(doc_c);
            vm.heap_mut().insert(doc_a, rec_a).unwrap();
            vm.heap_mut()
                .insert(doc_b, ObjectRecord::new(ClassId(1), 2_000, 0))
                .unwrap();
            vm.heap_mut()
                .insert(doc_c, ObjectRecord::new(ClassId(1), 500, 0))
                .unwrap();
            let rec_a = vm.heap_mut().migrate_out(doc_a).unwrap();
            let rec_b = vm.heap_mut().migrate_out(doc_b).unwrap();
            let rec_c = vm.heap_mut().migrate_out(doc_c).unwrap();
            if tables.exports.export(anchor) {
                vm.external_root_inc(anchor);
            }
            (rec_a, rec_b, rec_c)
        };
        tables.imports.import(doc_a); // still referenced by the client
        core.record_shipment(
            vec![(doc_a, rec_a), (doc_b, rec_b), (doc_c, rec_c)],
            vec![anchor],
        );

        assert!(core.handle_failure(), "this call performs the recovery");
        assert!(!core.handle_failure(), "second detector finds nothing");

        let report = core.report();
        assert_eq!(report.failovers, 1);
        assert_eq!(
            report.failover_durations_micros.len(),
            1,
            "one recovery, one measured duration"
        );
        assert_eq!(
            report.reinstated_objects, 2,
            "the live doc and its transitively-held doc return"
        );
        assert!(report.reinstated_bytes >= 1_500);
        assert_eq!(report.objects_lost, 0);
        {
            let vm = client.vm();
            let vm = vm.lock();
            assert!(vm.heap().contains(doc_a));
            assert!(
                vm.heap().contains(doc_c),
                "entry reachable through doc_a's slot comes back too"
            );
            assert!(!vm.heap().contains(doc_b), "GC-dropped entry stays gone");
            assert_eq!(vm.external_root_count(), 0, "pin released");
        }
        assert!(
            !tables.imports.contains(doc_a),
            "reinstated: no longer remote"
        );
        assert_eq!(provider.failures.lock().as_slice(), &["s1".to_string()]);
        assert!(core.endpoint_for_call().is_none(), "no active lease");
    }

    #[test]
    fn failed_over_adapter_serves_locally() {
        let client = test_machine();
        let tables = Arc::new(RefTables::new());
        let provider = Arc::new(QueueProvider {
            leases: Mutex::new(Vec::new()),
            acquire_calls: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
        });
        let clock = Arc::new(NetClock::new());
        let core = Arc::new(FailoverCore::new(
            provider,
            test_ctx(clock),
            client.clone(),
            tables,
            &quick_config(),
        ));
        let adapter = FailoverAdapter::new(core);
        let id = ObjectId::client(5);
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(id, ObjectRecord::new(ClassId(1), 100, 0))
                .unwrap();
        }
        // No active surrogate: every operation is served locally.
        assert_eq!(adapter.class_of(id).unwrap(), ClassId(1));
        adapter.field_access(id, 16, false).unwrap();
        assert!(matches!(
            adapter.class_of(ObjectId::surrogate(404)),
            Err(VmError::DanglingReference(_)) | Err(VmError::RemoteFailure(_))
        ));
    }
}
