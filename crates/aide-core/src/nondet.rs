//! The nondeterminism seam of the decision pipeline.
//!
//! Everything the monitor → partitioner → migration pipeline consumes
//! that is not a pure function of the program — GC reports, drained
//! graph deltas, heap snapshots, migration outcomes, link deaths —
//! flows through a [`NondetSource`]. The default [`LiveSource`] passes
//! live values through untouched; the `aide-replay` crate provides a
//! recording source (captures every value into a trace) and a replay
//! driver (substitutes recorded values and verifies the pipeline
//! reproduces the recorded decision timeline bit-for-bit).
//!
//! The seam deliberately sits *outside* the partitioner: given the same
//! deltas, snapshot, and policy, `IncrementalPartitioner::epoch` is
//! deterministic, so only its inputs need capturing.

use aide_graph::{GraphDelta, ResourceSnapshot};
use aide_vm::GcReport;
use serde::{Deserialize, Serialize};

use crate::monitor::NodeKey;

/// Which role a [`NondetSource`] plays in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NondetMode {
    /// Normal execution; values pass through unchanged.
    Live,
    /// Live execution, with every value captured into a trace.
    Recording,
    /// Values are substituted from a previously recorded trace.
    Replaying,
}

/// The full nondeterministic input to one trigger evaluation: what the
/// controller feeds the incremental partitioner when a trigger fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriggerSample {
    /// GC cycle the trigger was attributed to.
    pub at_gc_cycle: u64,
    /// Human-readable trigger reason ("memory-pressure", "periodic").
    pub reason: String,
    /// Client heap occupancy at evaluation time.
    pub snapshot: ResourceSnapshot,
    /// Graph deltas drained from the monitor for this epoch.
    pub deltas: Vec<GraphDelta>,
    /// Reference keys dropped since the last drain (distributed GC).
    pub keys: Vec<NodeKey>,
}

/// The outcome of one migration attempt, as observed by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationRecord {
    /// The two-phase migration committed.
    Completed {
        /// Objects shipped to the surrogate.
        objects: u64,
        /// Bytes shipped to the surrogate.
        bytes: u64,
        /// Wall-clock migration duration, in microseconds.
        duration_micros: u64,
    },
    /// The migration aborted (and, if partially applied, rolled back).
    Failed,
    /// No live surrogate lease was available; the winner was dropped
    /// without a migration attempt.
    NoSurrogate,
}

/// A surrogate link transition observed by the failover layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkPhase {
    /// The link was declared dead.
    Died,
    /// Failover onto a standby completed.
    Recovered,
}

/// Source (and sink) for the decision pipeline's nondeterministic values.
///
/// All methods default to live pass-through no-ops, so implementations
/// override only the streams they care about. Methods take `&self`; the
/// controller shares one source across the GC hook and worker threads.
pub trait NondetSource: Send + Sync {
    /// Which role this source plays.
    fn mode(&self) -> NondetMode {
        NondetMode::Live
    }

    /// A GC report reached the controller (after the monitor's trigger
    /// state machine consumed it).
    fn observe_gc(&self, report: &GcReport) {
        let _ = report;
    }

    /// A trigger is about to be evaluated. The returned sample is what
    /// the pipeline actually uses: live and recording sources return
    /// `live` unchanged, a replaying source substitutes recorded values.
    fn trigger(&self, live: TriggerSample) -> TriggerSample {
        live
    }

    /// A migration attempt finished (or was skipped for lack of a
    /// surrogate).
    fn migration(&self, record: MigrationRecord) {
        let _ = record;
    }

    /// The failover layer observed a link transition on `surrogate`.
    fn link_transition(&self, surrogate: &str, phase: LinkPhase) {
        let _ = (surrogate, phase);
    }
}

/// The identity source used by normal runs: no capture, no substitution.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveSource;

impl NondetSource for LiveSource {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_source_passes_samples_through() {
        let sample = TriggerSample {
            at_gc_cycle: 7,
            reason: "memory-pressure".into(),
            snapshot: ResourceSnapshot::new(100, 90),
            deltas: vec![],
            keys: vec![],
        };
        let src = LiveSource;
        assert_eq!(src.mode(), NondetMode::Live);
        assert_eq!(src.trigger(sample.clone()), sample);
    }

    #[test]
    fn records_round_trip_through_serde() {
        let r = MigrationRecord::Completed {
            objects: 3,
            bytes: 4096,
            duration_micros: 17,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: MigrationRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
