//! Platform configuration.

use aide_graph::{
    CombinedPolicy, CommParams, CpuPolicy, MemoryPolicy, PartitionPolicy, PredictedTime,
};
use aide_rpc::ChaosSchedule;
use aide_vm::{CostModel, GcConfig};
use serde::{Deserialize, Serialize};

use crate::monitor::TriggerConfig;
use crate::partitioner::PartitionerConfig;

/// Which partitioning policy the platform applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Relieve memory pressure: free at least `min_free_fraction` of the
    /// client heap while minimizing historical cut bytes (paper §5.1).
    Memory {
        /// Minimum heap fraction any acceptable partitioning must free.
        min_free_fraction: f64,
    },
    /// Relieve processing pressure: minimize predicted completion time,
    /// offloading only when beneficial (paper §5.2).
    Cpu {
        /// Required fractional improvement before offloading.
        margin: f64,
    },
    /// Memory feasibility with time-optimal selection (paper §8).
    Combined {
        /// Minimum heap fraction any acceptable partitioning must free.
        min_free_fraction: f64,
        /// Required fractional improvement before offloading.
        margin: f64,
    },
}

impl PolicyKind {
    /// Builds the concrete policy for the given link and speed ratio.
    pub fn build(self, comm: CommParams, surrogate_speed: f64) -> Box<dyn PartitionPolicy> {
        let predictor = PredictedTime::new(comm, surrogate_speed);
        match self {
            PolicyKind::Memory { min_free_fraction } => {
                Box::new(MemoryPolicy::new(min_free_fraction))
            }
            PolicyKind::Cpu { margin } => Box::new(CpuPolicy::new(predictor).with_margin(margin)),
            PolicyKind::Combined {
                min_free_fraction,
                margin,
            } => Box::new(CombinedPolicy::new(
                MemoryPolicy::new(min_free_fraction),
                CpuPolicy::new(predictor).with_margin(margin),
            )),
        }
    }
}

/// Which carrier the prototype's RPC link uses. All three are reached
/// through the same `aide_rpc::Transport` seam; platform code never sees
/// the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportKind {
    /// In-process channels (deterministic, no I/O) — the default.
    InProcess,
    /// A real localhost TCP socket carrying multiplexed sessions.
    Tcp,
    /// In-process channels that additionally charge emulated link time
    /// per frame at the configured [`CommParams`](aide_graph::CommParams)
    /// rates, for deterministic emulator runs.
    Emulated,
}

/// When the platform re-evaluates partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EvaluationMode {
    /// Evaluate when the memory-pressure trigger fires (GC-report driven).
    OnMemoryPressure,
    /// Evaluate every `every_micros` of accumulated exclusive work
    /// (periodic re-evaluation for processing constraints).
    Periodic {
        /// Exclusive-work period between evaluations, in microseconds.
        every_micros: f64,
    },
}

/// Full configuration of a distributed platform run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Client heap capacity in bytes.
    pub client_heap: u64,
    /// Surrogate heap capacity in bytes.
    pub surrogate_heap: u64,
    /// Link parameters (defaults to the paper's WaveLAN).
    pub comm: CommParams,
    /// Surrogate CPU speed relative to the client (paper: 3.5).
    pub surrogate_speed: f64,
    /// Memory-pressure trigger configuration.
    pub trigger: TriggerConfig,
    /// Partitioning policy.
    pub policy: PolicyKind,
    /// When partitioning is re-evaluated.
    pub evaluation: EvaluationMode,
    /// Paper §5.2 "Native" enhancement: stateless natives run where invoked.
    pub stateless_natives_local: bool,
    /// Paper §5.2 "Array" enhancement: primitive arrays placed per object.
    pub array_object_granularity: bool,
    /// Whether execution monitoring is attached at all.
    pub monitoring: bool,
    /// Virtual cost charged per monitoring event (models the paper's ~11%
    /// monitoring overhead; 0 disables the overhead model).
    pub monitor_event_micros: f64,
    /// Maximum number of offload operations (the prototype performs one).
    pub max_offloads: u32,
    /// Garbage-collector configuration (both VMs).
    pub gc: GcConfig,
    /// Virtual CPU cost model (both VMs).
    pub cost: CostModel,
    /// Carrier for the RPC link.
    pub transport: TransportKind,
    /// Incremental-partitioner tuning: candidate evaluation strategy and
    /// the dirty-region churn threshold. The default (sequential, never
    /// skip) reproduces the classic evaluate-every-trigger pipeline.
    #[serde(default)]
    pub partitioner: PartitionerConfig,
    /// Optional fault injection on the client↔surrogate sessions: both
    /// directions are wrapped in a seeded chaos shim (hostile soak runs,
    /// record/replay tests). `None` leaves the carrier untouched.
    #[serde(default)]
    pub chaos: Option<ChaosSchedule>,
}

impl PlatformConfig {
    /// The paper's prototype setup: 6 MB client heap, large surrogate,
    /// WaveLAN link, 3.5× surrogate, memory policy freeing ≥ 20%, trigger
    /// at three successive cycles under 5% free, single offload.
    pub fn prototype(client_heap: u64) -> Self {
        PlatformConfig {
            client_heap,
            surrogate_heap: 64 << 20,
            comm: CommParams::WAVELAN,
            surrogate_speed: 3.5,
            trigger: TriggerConfig::default(),
            policy: PolicyKind::Memory {
                min_free_fraction: 0.20,
            },
            evaluation: EvaluationMode::OnMemoryPressure,
            stateless_natives_local: false,
            array_object_granularity: false,
            monitoring: true,
            monitor_event_micros: 0.0,
            max_offloads: 1,
            gc: GcConfig::default(),
            cost: CostModel::default(),
            transport: TransportKind::InProcess,
            partitioner: PartitionerConfig::default(),
            chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_defaults_match_paper() {
        let c = PlatformConfig::prototype(6 << 20);
        assert_eq!(c.client_heap, 6 << 20);
        assert_eq!(c.comm, CommParams::WAVELAN);
        assert_eq!(c.surrogate_speed, 3.5);
        assert_eq!(c.trigger.consecutive_reports, 3);
        assert!((c.trigger.low_free_fraction - 0.05).abs() < 1e-12);
        assert_eq!(c.max_offloads, 1);
        match c.policy {
            PolicyKind::Memory { min_free_fraction } => {
                assert!((min_free_fraction - 0.20).abs() < 1e-12);
            }
            other => panic!("unexpected policy {other:?}"),
        }
    }

    #[test]
    fn policies_build() {
        for kind in [
            PolicyKind::Memory {
                min_free_fraction: 0.2,
            },
            PolicyKind::Cpu { margin: 0.0 },
            PolicyKind::Combined {
                min_free_fraction: 0.2,
                margin: 0.05,
            },
        ] {
            let p = kind.build(CommParams::WAVELAN, 3.5);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn config_serde_round_trip() {
        let c = PlatformConfig::prototype(6 << 20);
        let json = serde_json::to_string(&c).unwrap();
        let back: PlatformConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn configs_without_a_partitioner_section_still_parse() {
        let c = PlatformConfig::prototype(6 << 20);
        let json = serde_json::to_string(&c).unwrap();
        // Strip the partitioner field to emulate a pre-existing config.
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value.as_object_mut().unwrap().remove("partitioner");
        let back: PlatformConfig = serde_json::from_str(&value.to_string()).unwrap();
        assert_eq!(back.partitioner, PartitionerConfig::default());
        assert_eq!(back, c);
    }
}
