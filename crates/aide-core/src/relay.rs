//! Store-and-forward relay: the seam between the platform core and a
//! relay queue implementation.
//!
//! When memory pressure forces an offload but no surrogate is reachable,
//! the platform can *defer* the shipment instead of abandoning it: the
//! victims are gathered out of the client heap exactly as a live offload
//! would (serialized, back-references pinned, import stubs installed) and
//! parked in a [`RelaySink`] keyed by a transaction id. When a surrogate
//! next becomes reachable the queue is flushed over the fresh lease with
//! `Request::RelayDeliver`, and the delivered objects enter the failover
//! ledger exactly as if they had been offloaded live. Entries that sit
//! queued past their TTL are reinstated into the client heap — better to
//! be slow than to lose objects.
//!
//! The sink trait lives in `aide-core` (the queue implementation lives in
//! `aide-surrogate`) so the dependency arrow keeps pointing the right way:
//! the core knows *that* shipments can be parked, not *where*.

use std::sync::Arc;

use aide_rpc::Endpoint;
use aide_vm::{ObjectId, ObjectRecord};

/// One deferred migration: the serialized victims of a single offload
/// decision, gathered out of the client heap and awaiting a surrogate.
#[derive(Debug, Clone)]
pub struct RelayShipment {
    /// Queue-assigned transaction id; the surrogate dedups deliveries on
    /// it, so retrying a `RelayDeliver` after a lost reply is safe.
    pub txn: u64,
    /// The serialized victim objects, in migration order.
    pub objects: Vec<(ObjectId, ObjectRecord)>,
    /// Objects pinned locally because queued objects reference them;
    /// released when the shipment is delivered-and-recorded or reinstated.
    pub pins: Vec<ObjectId>,
    /// Serialized payload size, for telemetry and recorder events.
    pub bytes: u64,
    /// How long the shipment sat queued, stamped by the sink at delivery
    /// or expiry; zero while the entry is still parked.
    pub queued_for_ms: u64,
}

/// Where deferred shipments park while no surrogate is reachable.
///
/// Implementations decide capacity, TTL, and the clock; the platform core
/// decides *when* to queue (offload with no surrogate), *when* to flush
/// (a fresh lease), *when* to expire (heartbeat ticks), and *when* to
/// recall everything (serving locally with no surrogate attached).
pub trait RelaySink: Send + Sync + std::fmt::Debug {
    /// Whether a new shipment would currently be accepted. Checked before
    /// the expensive gather so a full queue costs nothing.
    fn accepting(&self) -> bool;

    /// Parks a shipment, assigning and returning its transaction id. A
    /// sink at capacity hands the shipment back so the caller can
    /// reinstate the objects into the client heap.
    fn queue(&self, shipment: RelayShipment) -> Result<u64, RelayShipment>;

    /// Delivers queued shipments over a fresh surrogate lease, in queue
    /// order, stopping at the first failure. Returns the shipments that
    /// were acknowledged (with `queued_for_ms` stamped) so the caller can
    /// enter them into the failover ledger.
    fn flush(&self, endpoint: &Arc<Endpoint>) -> Vec<RelayShipment>;

    /// Removes and returns every shipment that has sat queued past the
    /// sink's TTL. Idempotent: a second call under the same clock reading
    /// returns nothing.
    fn take_expired(&self) -> Vec<RelayShipment>;

    /// Drains the queue unconditionally (shipments are handed back for
    /// reinstatement; used before serving locally with no surrogate).
    fn take_all(&self) -> Vec<RelayShipment>;

    /// Number of shipments currently parked.
    fn depth(&self) -> usize;
}
