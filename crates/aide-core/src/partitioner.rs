//! The partitioning module: candidate generation plus policy selection.
//!
//! Thin orchestration over [`aide_graph`]: snapshot the monitor's execution
//! graph, run the modified-MINCUT heuristic, let the configured policy pick
//! the best feasible candidate, and time the whole decision (the paper
//! reports ≈0.1 s for JavaNote's 138-class graph on a 600 MHz Pentium).
//!
//! [`IncrementalPartitioner`] is the scalable epoch-driven variant: it
//! maintains the execution graph from [`GraphDelta`] batches (O(delta) per
//! epoch instead of a from-scratch rebuild), runs the plan-based heuristic
//! with cached per-node strengths, evaluates candidates with a configurable
//! [`EvalStrategy`], and skips whole epochs when churn since the last
//! decision stays below a threshold (the dirty-region shortcut). Decisions
//! are bit-identical to the classic [`decide`] pipeline on the same graph.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_graph::{
    candidate_partitionings, density_candidates, plan_candidates_cached, ChurnSummary,
    EvalStrategy, ExecutionGraph, GraphDelta, IncrementalGraph, PartitionPolicy, ResourceSnapshot,
    SelectedPartition,
};
use serde::{Deserialize, Serialize};

/// Which candidate-generation heuristic the partitioning module runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// The paper's modified Stoer-Wagner MINCUT sweep (§3.3).
    #[default]
    ModifiedMincut,
    /// The memory-density sweep (paper §8 "additional partitioning
    /// heuristics"; see [`aide_graph::density_candidates`]).
    MemoryDensity,
}

/// The outcome of one partitioning decision.
#[derive(Debug)]
pub struct PartitionDecision {
    /// The selected partitioning, or `None` when the policy judged that no
    /// candidate was feasible and beneficial (the application then stays
    /// on the client).
    pub selection: Option<SelectedPartition>,
    /// Number of candidate partitionings the heuristic produced.
    pub candidates_evaluated: usize,
    /// Wall-clock time the decision took.
    pub elapsed: Duration,
    /// The graph the decision was computed over.
    pub graph: ExecutionGraph,
}

impl PartitionDecision {
    /// Returns `true` if a beneficial partitioning was found.
    pub fn should_offload(&self) -> bool {
        self.selection.is_some()
    }
}

/// Runs the full decision pipeline over a snapshot with the paper's
/// modified-MINCUT heuristic.
pub fn decide(
    graph: ExecutionGraph,
    snapshot: ResourceSnapshot,
    policy: &dyn PartitionPolicy,
) -> PartitionDecision {
    decide_with(graph, snapshot, policy, HeuristicKind::ModifiedMincut)
}

/// Runs the full decision pipeline with an explicit candidate heuristic.
pub fn decide_with(
    graph: ExecutionGraph,
    snapshot: ResourceSnapshot,
    policy: &dyn PartitionPolicy,
    heuristic: HeuristicKind,
) -> PartitionDecision {
    let start = Instant::now();
    let candidates = match heuristic {
        HeuristicKind::ModifiedMincut => candidate_partitionings(&graph),
        HeuristicKind::MemoryDensity => density_candidates(&graph),
    };
    let selection = policy.select(&graph, snapshot, &candidates);
    PartitionDecision {
        selection,
        candidates_evaluated: candidates.len(),
        elapsed: start.elapsed(),
        graph,
    }
}

/// Tuning for the [`IncrementalPartitioner`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct PartitionerConfig {
    /// Skip an evaluation epoch when the weight-equivalent churn since the
    /// last evaluated epoch is below this threshold (and nothing structural
    /// changed). `0` — the default — never skips, matching the classic
    /// evaluate-every-trigger behavior.
    pub churn_threshold: u64,
    /// How candidates are evaluated. The winner is bit-identical across
    /// strategies; parallel evaluation only changes wall-clock time.
    pub eval: EvalStrategy,
}

/// The outcome of one [`IncrementalPartitioner::epoch`].
#[derive(Debug)]
pub struct EpochDecision {
    /// The selected partitioning, or `None` when the epoch was skipped or
    /// the policy judged no candidate feasible and beneficial.
    pub selection: Option<SelectedPartition>,
    /// Whether the dirty-region shortcut skipped evaluation entirely.
    pub skipped: bool,
    /// Number of candidate partitionings the heuristic produced (0 when
    /// skipped).
    pub candidates_evaluated: usize,
    /// Wall-clock time the evaluation took (zero when skipped).
    pub elapsed: Duration,
    /// Churn accumulated since the last evaluated epoch, as seen by this
    /// epoch's skip decision.
    pub churn: ChurnSummary,
}

/// Epoch-driven partitioning over an incrementally maintained graph.
///
/// Feed it the monitor's drained [`GraphDelta`] batches with
/// [`apply_deltas`](IncrementalPartitioner::apply_deltas), then ask for a
/// decision with [`epoch`](IncrementalPartitioner::epoch). Between epochs
/// the graph and the heuristic's per-node strength cache stay warm, so an
/// epoch costs O(delta + (V + E) log V) instead of the classic
/// O(V·(V + E)) rebuild-and-materialize pipeline.
pub struct IncrementalPartitioner {
    config: PartitionerConfig,
    inc: IncrementalGraph,
    /// Whether at least one epoch has actually been evaluated (the shortcut
    /// never skips the first evaluation).
    evaluated_once: bool,
    epochs: Arc<aide_telemetry::Counter>,
    epochs_skipped: Arc<aide_telemetry::Counter>,
    deltas_applied: Arc<aide_telemetry::Counter>,
    eval_micros: Arc<aide_telemetry::Histogram>,
}

impl std::fmt::Debug for IncrementalPartitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalPartitioner")
            .field("config", &self.config)
            .field("nodes", &self.inc.graph().node_count())
            .field("evaluated_once", &self.evaluated_once)
            .finish()
    }
}

impl IncrementalPartitioner {
    /// Creates an empty incremental partitioner.
    pub fn new(config: PartitionerConfig) -> Self {
        IncrementalPartitioner::with_graph(config, IncrementalGraph::new())
    }

    /// Creates a partitioner over an existing incremental graph.
    pub fn with_graph(config: PartitionerConfig, inc: IncrementalGraph) -> Self {
        let telemetry = aide_telemetry::global();
        IncrementalPartitioner {
            config,
            inc,
            evaluated_once: false,
            epochs: telemetry.counter(aide_telemetry::names::PARTITION_EPOCHS),
            epochs_skipped: telemetry.counter(aide_telemetry::names::PARTITION_EPOCHS_SKIPPED),
            deltas_applied: telemetry.counter(aide_telemetry::names::GRAPH_DELTAS_APPLIED),
            eval_micros: telemetry.histogram(
                aide_telemetry::names::PARTITION_EVAL_MICROS,
                aide_telemetry::buckets::LATENCY_MICROS,
            ),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> PartitionerConfig {
        self.config
    }

    /// The maintained execution graph.
    pub fn graph(&self) -> &ExecutionGraph {
        self.inc.graph()
    }

    /// Churn accumulated since the last evaluated epoch.
    pub fn pending_churn(&self) -> ChurnSummary {
        self.inc.churn()
    }

    /// Applies a batch of monitor deltas in O(delta).
    pub fn apply_deltas(&mut self, deltas: &[GraphDelta]) {
        self.inc.apply_all(deltas);
        self.deltas_applied.add(deltas.len() as u64);
    }

    /// Runs one decision epoch.
    ///
    /// When churn since the last evaluated epoch is below the configured
    /// threshold (and nothing structural changed), the epoch is skipped
    /// outright: the churn keeps accumulating so a later epoch sees the
    /// full backlog. Otherwise the plan-based heuristic runs with the warm
    /// strength cache and the policy evaluates the sweep under the
    /// configured [`EvalStrategy`] — producing exactly the selection the
    /// classic [`decide`] pipeline would make on this graph.
    pub fn epoch(
        &mut self,
        snapshot: ResourceSnapshot,
        policy: &dyn PartitionPolicy,
    ) -> EpochDecision {
        let churn = self.inc.churn();
        if self.evaluated_once && !churn.structural && churn.weight < self.config.churn_threshold {
            self.epochs_skipped.inc();
            return EpochDecision {
                selection: None,
                skipped: true,
                candidates_evaluated: 0,
                elapsed: Duration::ZERO,
                churn,
            };
        }
        let start = Instant::now();
        let plan = plan_candidates_cached(self.inc.graph(), self.inc.strengths());
        let selection = policy.select_plan(self.inc.graph(), snapshot, &plan, self.config.eval);
        let elapsed = start.elapsed();
        self.inc.take_churn();
        self.evaluated_once = true;
        self.epochs.inc();
        self.eval_micros
            .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        EpochDecision {
            selection,
            skipped: false,
            candidates_evaluated: plan.len(),
            elapsed,
            churn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_graph::{EdgeInfo, MemoryPolicy, NodeInfo, PinReason};

    fn graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("Doc"));
        g.node_mut(doc).memory_bytes = 4_000_000;
        g.record_interaction(ui, doc, EdgeInfo::new(10, 1_000));
        g
    }

    #[test]
    fn decide_selects_when_feasible() {
        let d = decide(
            graph(),
            ResourceSnapshot::new(6_000_000, 5_900_000),
            &MemoryPolicy::new(0.2),
        );
        assert!(d.should_offload());
        assert_eq!(d.candidates_evaluated, 1);
        assert!(d.elapsed.as_secs() < 1);
    }

    #[test]
    fn decide_with_density_also_selects() {
        let d = decide_with(
            graph(),
            ResourceSnapshot::new(6_000_000, 5_900_000),
            &MemoryPolicy::new(0.2),
            HeuristicKind::MemoryDensity,
        );
        assert!(d.should_offload());
    }

    #[test]
    fn decide_declines_when_infeasible() {
        let d = decide(
            graph(),
            ResourceSnapshot::new(100_000_000, 90_000_000),
            &MemoryPolicy::new(0.9),
        );
        assert!(!d.should_offload());
    }

    /// Deltas that rebuild exactly the graph from [`graph`].
    fn graph_deltas() -> Vec<GraphDelta> {
        vec![
            GraphDelta::AddNode {
                label: "Ui".into(),
                pinned: Some(PinReason::NativeMethods),
                memory_bytes: 0,
                cpu_micros: 0,
                live_objects: 0,
            },
            GraphDelta::AddNode {
                label: "Doc".into(),
                pinned: None,
                memory_bytes: 4_000_000,
                cpu_micros: 0,
                live_objects: 0,
            },
            GraphDelta::Interaction {
                a: aide_graph::NodeId(0),
                b: aide_graph::NodeId(1),
                delta: EdgeInfo::new(10, 1_000),
            },
        ]
    }

    #[test]
    fn epoch_matches_the_classic_pipeline() {
        let snapshot = ResourceSnapshot::new(6_000_000, 5_900_000);
        let policy = MemoryPolicy::new(0.2);

        let mut part = IncrementalPartitioner::new(PartitionerConfig::default());
        part.apply_deltas(&graph_deltas());
        assert_eq!(part.graph(), &graph());

        let epoch = part.epoch(snapshot, &policy);
        let classic = decide(graph(), snapshot, &policy);
        assert!(!epoch.skipped);
        assert_eq!(epoch.candidates_evaluated, classic.candidates_evaluated);
        assert_eq!(epoch.selection, classic.selection);
    }

    #[test]
    fn churn_threshold_skips_quiet_epochs() {
        let snapshot = ResourceSnapshot::new(100_000_000, 90_000_000);
        let policy = MemoryPolicy::new(0.9);
        let config = PartitionerConfig {
            churn_threshold: 1_000,
            eval: EvalStrategy::Sequential,
        };
        let mut part = IncrementalPartitioner::new(config);
        part.apply_deltas(&graph_deltas());

        // The first epoch always evaluates, even though AddNode churn is
        // structural anyway.
        let first = part.epoch(snapshot, &policy);
        assert!(!first.skipped);

        // Tiny churn below the threshold: skip.
        part.apply_deltas(&[GraphDelta::Interaction {
            a: aide_graph::NodeId(0),
            b: aide_graph::NodeId(1),
            delta: EdgeInfo::new(1, 50),
        }]);
        let quiet = part.epoch(snapshot, &policy);
        assert!(quiet.skipped);
        assert!(quiet.selection.is_none());
        assert_eq!(quiet.candidates_evaluated, 0);
        assert_eq!(quiet.churn.weight, 51);

        // Churn accumulates across skipped epochs; once the running total
        // crosses the threshold the backlog forces an evaluation.
        part.apply_deltas(&[GraphDelta::Interaction {
            a: aide_graph::NodeId(0),
            b: aide_graph::NodeId(1),
            delta: EdgeInfo::new(9, 991),
        }]);
        let loud = part.epoch(snapshot, &policy);
        assert!(!loud.skipped);
        assert_eq!(loud.churn.weight, 51 + 1_000);

        // Evaluation resets the backlog.
        assert_eq!(part.pending_churn(), ChurnSummary::default());
    }

    #[test]
    fn structural_churn_always_forces_evaluation() {
        let snapshot = ResourceSnapshot::new(100_000_000, 90_000_000);
        let policy = MemoryPolicy::new(0.9);
        let config = PartitionerConfig {
            churn_threshold: u64::MAX,
            eval: EvalStrategy::Sequential,
        };
        let mut part = IncrementalPartitioner::new(config);
        part.apply_deltas(&graph_deltas());
        part.epoch(snapshot, &policy);

        part.apply_deltas(&[GraphDelta::AddNode {
            label: "New".into(),
            pinned: None,
            memory_bytes: 10,
            cpu_micros: 0,
            live_objects: 1,
        }]);
        let epoch = part.epoch(snapshot, &policy);
        assert!(!epoch.skipped, "node addition must invalidate the shortcut");
        assert!(epoch.churn.structural);
    }

    #[test]
    fn zero_threshold_never_skips() {
        let snapshot = ResourceSnapshot::new(100_000_000, 90_000_000);
        let policy = MemoryPolicy::new(0.9);
        let mut part = IncrementalPartitioner::new(PartitionerConfig::default());
        part.apply_deltas(&graph_deltas());
        part.epoch(snapshot, &policy);
        // No deltas at all — churn weight 0 is still not < threshold 0.
        let epoch = part.epoch(snapshot, &policy);
        assert!(!epoch.skipped);
    }

    #[test]
    fn partitioner_config_serde_round_trips() {
        let config = PartitionerConfig {
            churn_threshold: 4_096,
            eval: EvalStrategy::Parallel { threads: 4 },
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: PartitionerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        // Missing fields fall back to the never-skip sequential default.
        let empty: PartitionerConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, PartitionerConfig::default());
    }
}
