//! The partitioning module: candidate generation plus policy selection.
//!
//! Thin orchestration over [`aide_graph`]: snapshot the monitor's execution
//! graph, run the modified-MINCUT heuristic, let the configured policy pick
//! the best feasible candidate, and time the whole decision (the paper
//! reports ≈0.1 s for JavaNote's 138-class graph on a 600 MHz Pentium).

use std::time::{Duration, Instant};

use aide_graph::{
    candidate_partitionings, density_candidates, ExecutionGraph, PartitionPolicy, ResourceSnapshot,
    SelectedPartition,
};
use serde::{Deserialize, Serialize};

/// Which candidate-generation heuristic the partitioning module runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// The paper's modified Stoer-Wagner MINCUT sweep (§3.3).
    #[default]
    ModifiedMincut,
    /// The memory-density sweep (paper §8 "additional partitioning
    /// heuristics"; see [`aide_graph::density_candidates`]).
    MemoryDensity,
}

/// The outcome of one partitioning decision.
#[derive(Debug)]
pub struct PartitionDecision {
    /// The selected partitioning, or `None` when the policy judged that no
    /// candidate was feasible and beneficial (the application then stays
    /// on the client).
    pub selection: Option<SelectedPartition>,
    /// Number of candidate partitionings the heuristic produced.
    pub candidates_evaluated: usize,
    /// Wall-clock time the decision took.
    pub elapsed: Duration,
    /// The graph the decision was computed over.
    pub graph: ExecutionGraph,
}

impl PartitionDecision {
    /// Returns `true` if a beneficial partitioning was found.
    pub fn should_offload(&self) -> bool {
        self.selection.is_some()
    }
}

/// Runs the full decision pipeline over a snapshot with the paper's
/// modified-MINCUT heuristic.
pub fn decide(
    graph: ExecutionGraph,
    snapshot: ResourceSnapshot,
    policy: &dyn PartitionPolicy,
) -> PartitionDecision {
    decide_with(graph, snapshot, policy, HeuristicKind::ModifiedMincut)
}

/// Runs the full decision pipeline with an explicit candidate heuristic.
pub fn decide_with(
    graph: ExecutionGraph,
    snapshot: ResourceSnapshot,
    policy: &dyn PartitionPolicy,
    heuristic: HeuristicKind,
) -> PartitionDecision {
    let start = Instant::now();
    let candidates = match heuristic {
        HeuristicKind::ModifiedMincut => candidate_partitionings(&graph),
        HeuristicKind::MemoryDensity => density_candidates(&graph),
    };
    let selection = policy.select(&graph, snapshot, &candidates);
    PartitionDecision {
        selection,
        candidates_evaluated: candidates.len(),
        elapsed: start.elapsed(),
        graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_graph::{EdgeInfo, MemoryPolicy, NodeInfo, PinReason};

    fn graph() -> ExecutionGraph {
        let mut g = ExecutionGraph::new();
        let ui = g.add_node(NodeInfo::pinned("Ui", PinReason::NativeMethods));
        let doc = g.add_node(NodeInfo::new("Doc"));
        g.node_mut(doc).memory_bytes = 4_000_000;
        g.record_interaction(ui, doc, EdgeInfo::new(10, 1_000));
        g
    }

    #[test]
    fn decide_selects_when_feasible() {
        let d = decide(
            graph(),
            ResourceSnapshot::new(6_000_000, 5_900_000),
            &MemoryPolicy::new(0.2),
        );
        assert!(d.should_offload());
        assert_eq!(d.candidates_evaluated, 1);
        assert!(d.elapsed.as_secs() < 1);
    }

    #[test]
    fn decide_with_density_also_selects() {
        let d = decide_with(
            graph(),
            ResourceSnapshot::new(6_000_000, 5_900_000),
            &MemoryPolicy::new(0.2),
            HeuristicKind::MemoryDensity,
        );
        assert!(d.should_offload());
    }

    #[test]
    fn decide_declines_when_infeasible() {
        let d = decide(
            graph(),
            ResourceSnapshot::new(100_000_000, 90_000_000),
            &MemoryPolicy::new(0.9),
        );
        assert!(!d.should_offload());
    }
}
