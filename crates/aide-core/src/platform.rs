//! The distributed platform: two VMs, a link, the AIDE modules, and the
//! offloading controller (the paper's Figure 4 architecture).
//!
//! [`Platform::run`] executes a program on the client VM while the monitor
//! watches execution and the controller reacts to resource pressure:
//!
//! 1. The client runs the application; the monitor builds the execution
//!    graph from the hook stream.
//! 2. Garbage-collection reports feed the memory trigger (three successive
//!    cycles under the free threshold). For processing constraints, the
//!    controller instead re-evaluates periodically by accumulated work.
//! 3. On trigger, the partitioning module generates candidate partitionings
//!    (modified MINCUT) and the policy selects a beneficial one — or none.
//! 4. The offload executor migrates the selected objects to the surrogate
//!    over the RPC link; subsequent touches of those objects become
//!    transparent remote operations.
//! 5. After every client collection, dropped cross-VM references are
//!    released to the peer (distributed GC).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aide_graph::{ExecutionGraph, PartitionPolicy, Partitioning, ResourceSnapshot};
use aide_rpc::{
    live_remote_refs, Acceptor, Endpoint, EndpointConfig, Link, NetClock, Request, Session,
    Transport,
};
use aide_telemetry::{FlightRecorder, PlatformEvent, TelemetrySnapshot, TimedEvent};
use aide_vm::{
    ClassId, GcReport, HookChain, Machine, NullHooks, Program, RunSummary, RuntimeHooks, Vm,
    VmConfig, VmError, VmKind,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::adapter::{RefTables, RemoteAdapter, VmDispatcher};
use crate::config::{EvaluationMode, PlatformConfig, TransportKind};
use crate::failover::{
    FailoverAdapter, FailoverConfig, FailoverCore, FailoverReport, ProviderContext,
    SurrogateProvider,
};
use crate::monitor::{Monitor, MonitorMetrics, RemoteStats};
use crate::nondet::{LiveSource, MigrationRecord, NondetSource, TriggerSample};
use crate::offload::{execute_offload_tracked, OffloadOutcome};
use crate::partitioner::IncrementalPartitioner;
use crate::relay::RelaySink;

/// Flight-recorder capacity per run: ample for every decision of a run
/// while bounding memory on constrained clients.
const FLIGHT_RECORDER_EVENTS: usize = 1024;

/// A record of one offload decision that actually migrated objects.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OffloadEvent {
    /// GC cycle (client) at which the offload happened, if memory-driven.
    pub at_gc_cycle: u64,
    /// The execution graph the decision was computed over.
    pub graph: ExecutionGraph,
    /// The chosen placement.
    pub partitioning: Partitioning,
    /// Candidates the heuristic generated.
    pub candidates_evaluated: usize,
    /// Wall-clock duration of the partitioning computation.
    pub partition_elapsed: Duration,
    /// Fraction of graph-tracked memory offloaded.
    pub offloaded_memory_fraction: f64,
    /// Historical bytes crossing the selected cut.
    pub cut_bytes: u64,
    /// Historical interactions crossing the selected cut.
    pub cut_interactions: u64,
    /// The cost-function score of the winning candidate (lower was better).
    pub policy_score: f64,
    /// Migration results.
    pub outcome: OffloadOutcome,
}

/// Everything a platform run produced.
#[derive(Debug, Serialize, Deserialize)]
pub struct PlatformReport {
    /// How the application ended: `Ok` or the fatal [`VmError`].
    pub outcome: Result<RunSummary, VmError>,
    /// Virtual CPU seconds burned on the client.
    pub client_cpu_seconds: f64,
    /// Virtual CPU seconds burned on the surrogate.
    pub surrogate_cpu_seconds: f64,
    /// Portion of `client_cpu_seconds` spent emitting monitor events
    /// (hook time) rather than in the interpreter loop.
    #[serde(default)]
    pub client_hook_seconds: f64,
    /// Portion of `surrogate_cpu_seconds` spent emitting monitor events.
    #[serde(default)]
    pub surrogate_hook_seconds: f64,
    /// Simulated link seconds (remote interactions + offload transfers).
    pub comm_seconds: f64,
    /// Client garbage-collection cycles.
    pub client_gc_cycles: u64,
    /// Offloads performed.
    pub offloads: Vec<OffloadEvent>,
    /// Final execution graph snapshot.
    pub final_graph: ExecutionGraph,
    /// Table 2-style execution metrics.
    pub metrics: MonitorMetrics,
    /// Figure 8-style remote-interaction counters.
    pub remote_stats: RemoteStats,
    /// RPC requests the surrogate served for the client.
    pub surrogate_requests_served: u64,
    /// RPC requests the client served for the surrogate.
    pub client_requests_served: u64,
    /// Real frames exchanged on the link (both directions).
    pub frames_exchanged: u64,
    /// What the failover machinery did, when the run was provider-backed
    /// (see [`Platform::with_surrogates`]); `None` for fixed-link runs.
    pub failover: Option<FailoverReport>,
    /// Metric activity attributable to this run (delta of the process-wide
    /// registry between run start and run end).
    pub telemetry: TelemetrySnapshot,
    /// Flight-recorder trace of the run's platform decisions, in order.
    pub events: Vec<TimedEvent>,
}

impl PlatformReport {
    /// Total virtual completion time: execution is serial across the two
    /// VMs and the link (the paper's emulator assumption), so components
    /// add.
    pub fn total_seconds(&self) -> f64 {
        self.client_cpu_seconds + self.surrogate_cpu_seconds + self.comm_seconds
    }

    /// Returns `true` if at least one offload happened.
    pub fn offloaded(&self) -> bool {
        !self.offloads.is_empty()
    }

    /// Human-readable flight-recorder timeline explaining what the platform
    /// decided and when (trigger, candidates, winner's policy score,
    /// migrations, failovers).
    pub fn timeline(&self) -> String {
        aide_telemetry::render_timeline(&self.events)
    }
}

/// Decision + migration driver, wired into the hook chain after the
/// monitor so it reacts to fresh trigger state without holding VM locks.
struct Controller {
    monitor: Arc<Monitor>,
    policy: Box<dyn PartitionPolicy>,
    /// The incremental decision engine: fed the monitor's drained deltas,
    /// it keeps the execution graph and strength cache warm across epochs.
    partitioner: Mutex<IncrementalPartitioner>,
    evaluation: EvaluationMode,
    /// Late-bound: the controller participates in the client's hook chain,
    /// which must exist before the machine and endpoint it drives.
    client: std::sync::OnceLock<Machine>,
    endpoint: std::sync::OnceLock<Arc<Endpoint>>,
    /// Present on provider-backed runs: the failover core supplies (and
    /// replaces) the surrogate endpoint instead of `endpoint`.
    failover: std::sync::OnceLock<Arc<FailoverCore>>,
    tables: Arc<RefTables>,
    max_offloads: u32,
    offloads_done: AtomicU32,
    events: Mutex<Vec<OffloadEvent>>,
    /// Flight recorder tracing every decision this controller takes.
    recorder: Arc<FlightRecorder>,
    /// Nondeterminism seam: live pass-through, trace recorder, or replay
    /// substitution (see [`crate::nondet`]).
    nondet: Arc<dyn NondetSource>,
    /// Guards against re-entrant evaluation from nested GC cycles.
    evaluating: Mutex<()>,
}

impl Controller {
    fn bind(&self, client: Machine, endpoint: Arc<Endpoint>) {
        self.client
            .set(client)
            .ok()
            .expect("controller already bound");
        self.endpoint
            .set(endpoint)
            .ok()
            .expect("controller already bound");
    }

    fn bind_failover(&self, client: Machine, core: Arc<FailoverCore>) {
        self.client
            .set(client)
            .ok()
            .expect("controller already bound");
        self.failover
            .set(core)
            .ok()
            .expect("controller already bound");
    }

    fn client(&self) -> &Machine {
        self.client
            .get()
            .expect("controller bound before execution")
    }

    /// How many offloads the run may still perform. Each recovered failover
    /// earns one replacement offload, so a re-offload to the next surrogate
    /// is not blocked by the original budget.
    fn offload_budget(&self) -> u32 {
        self.max_offloads
            .saturating_add(self.failover.get().map_or(0, |c| c.failovers_so_far()))
    }

    fn maybe_offload(&self, at_gc_cycle: u64, reason: &str) {
        if self.offloads_done.load(Ordering::SeqCst) >= self.offload_budget() {
            return;
        }
        let Some(_guard) = self.evaluating.try_lock() else {
            return;
        };
        if self.offloads_done.load(Ordering::SeqCst) >= self.offload_budget() {
            return;
        }

        // The decision span roots this epoch's pipeline: sampling,
        // partitioning, and (when selected) the migration hang under it.
        let mut decision_span = aide_trace::span(aide_trace::names::DECISION, "core");
        decision_span.arg("reason", reason);
        decision_span.arg("gc_cycle", at_gc_cycle);

        let sample_span = aide_trace::span(aide_trace::names::TRIGGER_SAMPLE, "core");
        let (deltas, keys) = self.monitor.drain_deltas();
        let live_snapshot = {
            let vm = self.client().vm();
            let vm = vm.lock();
            ResourceSnapshot::new(vm.heap().capacity(), vm.heap().stats().used_bytes)
        };
        // The nondeterminism seam sees (and may substitute) everything the
        // pipeline consumes this epoch.
        let TriggerSample {
            at_gc_cycle,
            reason,
            snapshot,
            deltas,
            keys,
        } = self.nondet.trigger(TriggerSample {
            at_gc_cycle,
            reason: reason.to_string(),
            snapshot: live_snapshot,
            deltas,
            keys,
        });
        drop(sample_span);
        self.recorder.record(PlatformEvent::TriggerFired {
            at_gc_cycle,
            heap_used: snapshot.heap_used,
            heap_capacity: snapshot.heap_capacity,
            reason: reason.clone(),
        });
        let mut epoch_span = aide_trace::span(aide_trace::names::PARTITION_EPOCH, "core");
        let mut partitioner = self.partitioner.lock();
        partitioner.apply_deltas(&deltas);
        let decision = partitioner.epoch(snapshot, self.policy.as_ref());
        epoch_span.arg("candidates", decision.candidates_evaluated);
        epoch_span.arg("skipped", decision.skipped);
        drop(epoch_span);
        if decision.skipped {
            // Dirty-region shortcut: churn since the last evaluation stayed
            // below the configured threshold, so the previous decision
            // stands without re-running the heuristic.
            self.recorder.record(PlatformEvent::EpochSkipped {
                churn_weight: decision.churn.weight,
                threshold: partitioner.config().churn_threshold,
            });
            decision_span.arg("outcome", "epoch_skipped");
            self.monitor.reset_memory_trigger();
            return;
        }
        self.recorder.record(PlatformEvent::CandidatesEvaluated {
            candidates: decision.candidates_evaluated,
            elapsed_micros: u64::try_from(decision.elapsed.as_micros()).unwrap_or(u64::MAX),
        });
        if std::env::var_os("AIDE_DEBUG").is_some() {
            let graph = partitioner.graph();
            eprintln!(
                "[aide] evaluate: nodes={} candidates={} selected={} heap_used={} graph_mem={}",
                graph.node_count(),
                decision.candidates_evaluated,
                decision.selection.is_some(),
                snapshot.heap_used,
                graph.total_memory(),
            );
            for (id, n) in graph.iter() {
                eprintln!(
                    "[aide]   node {id} {} mem={} pinned={:?}",
                    n.label, n.memory_bytes, n.pinned
                );
            }
            if let Some(sel) = &decision.selection {
                let client: Vec<&str> = sel
                    .partitioning
                    .nodes_on(aide_graph::Side::Client)
                    .map(|n| graph.node(n).label.as_str())
                    .collect();
                eprintln!(
                    "[aide] selected: {} offloaded, client side = {:?}, cut = {:?}",
                    sel.partitioning.offloaded_count(),
                    client,
                    sel.stats.cut
                );
            }
        }
        let Some(selection) = decision.selection else {
            // Not beneficial / not feasible: leave the trigger armed only if
            // pressure persists (the monitor will re-fire).
            self.recorder.record(PlatformEvent::OffloadDeclined {
                candidates: decision.candidates_evaluated,
            });
            decision_span.arg("outcome", "declined");
            self.monitor.reset_memory_trigger();
            return;
        };

        let stats = &selection.stats;
        let offloaded_memory_fraction = stats.offloaded_memory_fraction();
        let cut = stats.cut;
        let policy_score = selection.score;
        self.recorder.record(PlatformEvent::WinnerChosen {
            policy_score,
            offload_bytes: stats.offloaded_memory_bytes,
            cut_interactions: cut.interactions,
        });
        // Resolve the surrogate endpoint: provider-backed runs acquire one
        // lazily (and may have none reachable right now); fixed-link runs
        // use the endpoint bound at startup.
        let endpoint = if let Some(core) = self.failover.get() {
            match core.acquire_for_offload() {
                Some(ep) => ep,
                None => {
                    // No surrogate reachable (or backoff gate closed). With
                    // a relay wired the decision still frees memory *now*:
                    // the victims are gathered out of the heap and parked
                    // for delivery to the next surrogate. Without one, stay
                    // local; the next trigger re-evaluates.
                    self.nondet.migration(MigrationRecord::NoSurrogate);
                    if core.queue_for_relay(&selection, &keys) {
                        decision_span.arg("outcome", "queued_for_relay");
                    } else {
                        decision_span.arg("outcome", "no_surrogate");
                    }
                    self.monitor.reset_memory_trigger();
                    return;
                }
            }
        } else {
            self.endpoint.get().expect("controller bound").clone()
        };
        match execute_offload_tracked(
            &selection,
            &keys,
            self.client(),
            &endpoint,
            &self.tables,
            Some(self.recorder.as_ref()),
        ) {
            Ok((outcome, shadow, pins)) => {
                if let Some(core) = self.failover.get() {
                    core.record_shipment(shadow, pins);
                }
                self.nondet.migration(MigrationRecord::Completed {
                    objects: outcome.objects_moved,
                    bytes: outcome.bytes_moved,
                    duration_micros: outcome.duration_micros,
                });
                self.recorder.record(PlatformEvent::ClassMigrated {
                    objects: outcome.objects_moved,
                    bytes: outcome.bytes_moved,
                    duration_micros: outcome.duration_micros,
                });
                self.events.lock().push(OffloadEvent {
                    at_gc_cycle,
                    graph: partitioner.graph().clone(),
                    partitioning: selection.partitioning,
                    candidates_evaluated: decision.candidates_evaluated,
                    partition_elapsed: decision.elapsed,
                    offloaded_memory_fraction,
                    cut_bytes: cut.bytes,
                    cut_interactions: cut.interactions,
                    policy_score,
                    outcome,
                });
                self.offloads_done.fetch_add(1, Ordering::SeqCst);
                decision_span.arg("outcome", "offloaded");
                self.monitor.reset_memory_trigger();
            }
            Err(err) => {
                // Migration failure is not fatal to the application; the
                // offload layer already rolled the heap back (and recorded
                // MigrationAborted/MigrationRolledBack). On a
                // provider-backed run, check whether the failure was the
                // surrogate dying mid-migration and recover if so.
                let _ = err;
                self.nondet.migration(MigrationRecord::Failed);
                decision_span.arg("outcome", "migration_failed");
                if let Some(core) = self.failover.get() {
                    core.fail_active_if_dead();
                }
                self.monitor.reset_memory_trigger();
            }
        }
    }

    /// Distributed GC: after a client collection, release remote references
    /// the client no longer holds in heap slots or mutator roots.
    fn release_dropped_refs(&self) {
        let endpoint = if let Some(core) = self.failover.get() {
            // Provider-backed: the active lease, if any. With no surrogate
            // attached, still sweep the import table (nobody to notify, but
            // the table must reflect what the client actually references).
            core.endpoint_for_call()
        } else {
            match self.endpoint.get() {
                Some(ep) => Some(ep.clone()),
                None => return,
            }
        };
        let still = {
            let vm = self.client().vm();
            let vm = vm.lock();
            live_remote_refs(&vm)
        };
        let dropped = self.tables.imports.sweep_dropped(&still);
        if !dropped.is_empty() {
            if let Some(endpoint) = endpoint {
                // Watermarked release: the sequence number makes retries
                // and chaos duplicates counted no-ops on the surrogate, so
                // the retry policy can resend aggressively. A batch lost
                // outright is covered by lease expiry on the other side.
                let _ = endpoint.call_with_retry(Request::GcReleaseSeq {
                    epoch: self.tables.imports.advertised_epoch(),
                    release_seq: self.tables.imports.next_release_seq(),
                    objects: dropped,
                });
            }
        } else if !self.tables.imports.is_empty() {
            // Quiet session with live remote holds: renew explicitly so
            // silence alone never expires a reference still in use.
            if let Some(endpoint) = endpoint {
                let _ = endpoint.call(Request::GcRenew {
                    epoch: self.tables.imports.advertised_epoch(),
                });
            }
        }
    }
}

impl RuntimeHooks for Controller {
    fn on_gc(&self, report: &GcReport) {
        // The monitor (earlier in the hook chain) has already folded this
        // report into its trigger state machine.
        self.nondet.observe_gc(report);
        if matches!(self.evaluation, EvaluationMode::OnMemoryPressure)
            && self.monitor.memory_triggered()
        {
            self.maybe_offload(report.cycle, "memory-pressure");
        }
        self.release_dropped_refs();
    }

    fn on_work(&self, _class: ClassId, _micros: f64) {
        if let EvaluationMode::Periodic { every_micros } = self.evaluation {
            if self.monitor.work_since_eval() >= every_micros {
                self.monitor.take_work_since_eval();
                self.maybe_offload(0, "periodic");
            }
        }
    }
}

/// Opens the client/surrogate session pair for the configured backend.
///
/// Every branch funnels through [`sessions_via`] and its `dyn Transport` /
/// `dyn Acceptor` seam, so everything above this point — offload, failover,
/// retry, chaos — is provably backend-agnostic.
fn build_sessions(cfg: &PlatformConfig) -> (Link, Session, Session) {
    match cfg.transport {
        TransportKind::InProcess => {
            let (t, a) = aide_rpc::channel_transport();
            sessions_via(Box::new(t), Box::new(a), cfg.comm)
        }
        TransportKind::Tcp => {
            let listener =
                aide_rpc::TcpMuxListener::bind(std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
                    .expect("binding a localhost RPC listener");
            let addr = listener.local_addr();
            let accepted = std::thread::spawn(move || listener.accept());
            let transport = aide_rpc::TcpTransport::connect(addr, Duration::from_secs(2))
                .expect("connecting the RPC client");
            let conn = accepted
                .join()
                .expect("accept thread panicked")
                .expect("accepting the RPC connection");
            sessions_via(Box::new(transport), Box::new(conn), cfg.comm)
        }
        TransportKind::Emulated => {
            // The emulated link charges virtual time per frame to its own
            // link-level clock; the platform's simulated accounting stays on
            // the endpoint clock so round trips are not double-counted.
            let (t, a, _link_clock) = aide_rpc::virtual_transport(cfg.comm);
            sessions_via(Box::new(t), Box::new(a), cfg.comm)
        }
    }
}

/// Opens one session from the initiating side and accepts its peer end —
/// the only way platform code obtains sessions, regardless of backend.
fn sessions_via(
    transport: Box<dyn Transport>,
    acceptor: Box<dyn Acceptor>,
    params: aide_graph::CommParams,
) -> (Link, Session, Session) {
    let ct = transport
        .open_session()
        .expect("opening the client session");
    let st = acceptor.accept().expect("accepting the surrogate session");
    (
        Link {
            params,
            clock: Arc::new(NetClock::new()),
        },
        ct,
        st,
    )
}

/// The AIDE distributed platform for one application run.
pub struct Platform {
    program: Arc<Program>,
    config: PlatformConfig,
    /// Provider-backed surrogate mode: when set, the run discovers and
    /// acquires surrogates through the provider (with failover) instead of
    /// building a fixed in-process pair.
    surrogates: Option<(Arc<dyn SurrogateProvider>, FailoverConfig)>,
    /// Nondeterminism seam override (`None` means [`LiveSource`]).
    nondet: Option<Arc<dyn NondetSource>>,
    /// Store-and-forward relay queue for offloads decided while no
    /// surrogate is reachable. Only meaningful on provider-backed runs.
    relay: Option<Arc<dyn RelaySink>>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("config", &self.config)
            .finish()
    }
}

impl Platform {
    /// Creates a platform that will run `program` under `config`.
    pub fn new(program: Arc<Program>, config: PlatformConfig) -> Self {
        Platform {
            program,
            config,
            surrogates: None,
            nondet: None,
            relay: None,
        }
    }

    /// Creates a platform whose surrogate connections come from `provider`
    /// (e.g. the discovery registry in the `aide-surrogate` crate) instead
    /// of a fixed in-process pair. The run survives surrogate failure: on
    /// heartbeat loss or a mid-call disconnect, offloaded objects are
    /// reinstated locally and the next resource-pressure trigger retries
    /// against the provider's next candidate.
    ///
    /// `config.transport`, `config.surrogate_heap`, and
    /// `config.surrogate_speed` are ignored in this mode — the surrogate end
    /// is whatever the provider connects to.
    pub fn with_surrogates(
        program: Arc<Program>,
        config: PlatformConfig,
        provider: Arc<dyn SurrogateProvider>,
    ) -> Self {
        Platform {
            program,
            config,
            surrogates: Some((provider, FailoverConfig::default())),
            nondet: None,
            relay: None,
        }
    }

    /// Wires a store-and-forward relay queue (e.g.
    /// `aide_surrogate::RelayQueue`): offload decisions made while no
    /// surrogate is reachable are gathered out of the heap and parked
    /// there, then delivered to the next surrogate the provider produces
    /// — or reinstated locally when they expire. Only meaningful after
    /// [`Platform::with_surrogates`].
    pub fn with_relay(mut self, relay: Arc<dyn RelaySink>) -> Self {
        self.relay = Some(relay);
        self
    }

    /// Threads a [`NondetSource`] through the run's controller, monitor
    /// hook path, and failover core — the seam the `aide-replay` crate
    /// uses to record (or substitute) every nondeterministic decision
    /// input. Defaults to the pass-through [`LiveSource`].
    pub fn with_nondet_source(mut self, source: Arc<dyn NondetSource>) -> Self {
        self.nondet = Some(source);
        self
    }

    /// Overrides the failover tuning (heartbeat cadence, probe timeout,
    /// re-acquisition backoff). Only meaningful after
    /// [`Platform::with_surrogates`].
    pub fn with_failover_config(mut self, failover: FailoverConfig) -> Self {
        if let Some((_, cfg)) = self.surrogates.as_mut() {
            *cfg = failover;
        }
        self
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Runs the application to completion (or failure) and reports.
    pub fn run(&self) -> PlatformReport {
        if let Some((provider, failover_cfg)) = self.surrogates.clone() {
            return self.run_with_provider(provider, &failover_cfg);
        }
        let cfg = &self.config;

        // VM configurations.
        let mut client_cfg = VmConfig::client(cfg.client_heap);
        client_cfg.gc = cfg.gc;
        client_cfg.cost = cfg.cost;
        client_cfg.stateless_natives_local = cfg.stateless_natives_local;
        if cfg.monitoring {
            client_cfg.cost.monitor_event_micros = cfg.monitor_event_micros;
        }
        let mut surrogate_cfg = VmConfig {
            kind: VmKind::Surrogate,
            heap_capacity: cfg.surrogate_heap,
            speed_factor: cfg.surrogate_speed,
            gc: cfg.gc,
            cost: cfg.cost,
            stateless_natives_local: cfg.stateless_natives_local,
        };
        if cfg.monitoring {
            surrogate_cfg.cost.monitor_event_micros = cfg.monitor_event_micros;
        }

        // Monitor (shared by both VMs).
        let object_granular = if cfg.array_object_granularity {
            self.program
                .classes()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_primitive_array)
                .map(|(i, _)| ClassId(i as u32))
                .collect()
        } else {
            Default::default()
        };
        let monitor = Arc::new(Monitor::new(
            self.program.clone(),
            cfg.trigger,
            object_granular,
        ));

        // VMs and link.
        let client_vm = Arc::new(Mutex::new(Vm::new(self.program.clone(), client_cfg)));
        let surrogate_vm = Arc::new(Mutex::new(Vm::new(self.program.clone(), surrogate_cfg)));
        let (link, ct, st) = build_sessions(&cfg);
        // Optional fault injection: both directions wrapped in seeded chaos
        // shims, the surrogate direction reseeded exactly like `chaos_pair`
        // so one seed drives a deterministic fault schedule per direction.
        let (ct, st) = match cfg.chaos {
            Some(schedule) => {
                let (ct, _client_stats) = aide_rpc::chaos_wrap(ct, schedule);
                let (st, _surrogate_stats) = aide_rpc::chaos_wrap(
                    st,
                    schedule.reseeded(schedule.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
                );
                (ct, st)
            }
            None => (ct, st),
        };
        let net_clock = link.clock.clone();
        let client_tables = Arc::new(RefTables::new());
        let surrogate_tables = Arc::new(RefTables::new());
        let telemetry_before = aide_telemetry::global().snapshot();
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_RECORDER_EVENTS));

        // Tracing: flight-recorder events link to the active span, and the
        // two in-process roles get distinct Perfetto lanes.
        aide_trace::install_recorder_annotator();
        aide_trace::set_process_label("client");

        // Controller first (late-bound), so the client machine's hook chain
        // can include it from the start.
        let controller = Arc::new(Controller {
            monitor: monitor.clone(),
            policy: cfg.policy.build(cfg.comm, cfg.surrogate_speed),
            partitioner: Mutex::new(IncrementalPartitioner::new(cfg.partitioner)),
            evaluation: cfg.evaluation,
            client: std::sync::OnceLock::new(),
            endpoint: std::sync::OnceLock::new(),
            failover: std::sync::OnceLock::new(),
            tables: client_tables.clone(),
            max_offloads: cfg.max_offloads,
            offloads_done: AtomicU32::new(0),
            events: Mutex::new(Vec::new()),
            recorder: recorder.clone(),
            nondet: self.nondet.clone().unwrap_or_else(|| Arc::new(LiveSource)),
            evaluating: Mutex::new(()),
        });

        // Machines: a single client machine (mutator AND dispatcher target,
        // so callbacks from the surrogate are monitored too) and one
        // surrogate machine.
        let client_hooks: Arc<dyn RuntimeHooks> = if cfg.monitoring {
            Arc::new(HookChain::new(vec![monitor.clone(), controller.clone()]))
        } else {
            Arc::new(NullHooks)
        };
        let client_machine = Machine::with_parts(client_vm.clone(), client_hooks, None);
        let surrogate_hooks: Arc<dyn RuntimeHooks> = if cfg.monitoring {
            monitor.clone()
        } else {
            Arc::new(NullHooks)
        };
        let surrogate_machine = Machine::with_parts(surrogate_vm.clone(), surrogate_hooks, None);

        // Endpoints: calls placed on an endpoint are served by the peer.
        let client_ep = Endpoint::start(
            ct,
            cfg.comm,
            net_clock.clone(),
            Arc::new(VmDispatcher::new(
                client_machine.clone(),
                client_tables.clone(),
            )),
            EndpointConfig::default(),
        );
        // The surrogate endpoint's workers inherit the track active at
        // start time, so even this single-process prototype exports its
        // serve spans on a "surrogate" lane.
        aide_trace::set_thread_track("surrogate");
        let surrogate_ep = Endpoint::start(
            st,
            cfg.comm,
            net_clock.clone(),
            Arc::new(VmDispatcher::new(
                surrogate_machine.clone(),
                surrogate_tables.clone(),
            )),
            EndpointConfig::default(),
        );
        aide_trace::set_thread_track("client");

        // Lease piggybacking: each endpoint stamps outgoing frames with its
        // imports epoch and renews its own exports on stamped arrivals, so
        // ordinary RPC traffic keeps cross-VM references alive.
        client_tables.attach_to(&client_ep);
        surrogate_tables.attach_to(&surrogate_ep);
        client_tables.exports.set_recorder(recorder.clone());
        surrogate_tables.exports.set_recorder(recorder.clone());

        client_machine.set_remote(Arc::new(RemoteAdapter::new(
            client_ep.clone(),
            client_machine.clone(),
            client_tables.clone(),
        )));
        surrogate_machine.set_remote(Arc::new(RemoteAdapter::new(
            surrogate_ep.clone(),
            surrogate_machine.clone(),
            surrogate_tables,
        )));
        controller.bind(client_machine.clone(), client_ep.clone());

        // Run the application on the client.
        let outcome = client_machine.run_entry();

        // Orderly teardown.
        client_ep.shutdown();
        surrogate_ep.shutdown();
        client_ep.join();
        surrogate_ep.join();

        let (final_graph, _) = monitor.snapshot();
        let offloads = std::mem::take(&mut *controller.events.lock());
        let client_vm_guard = client_vm.lock();
        let surrogate_vm_guard = surrogate_vm.lock();
        PlatformReport {
            outcome,
            client_cpu_seconds: client_vm_guard.cpu_seconds(),
            surrogate_cpu_seconds: surrogate_vm_guard.cpu_seconds(),
            client_hook_seconds: client_vm_guard.hook_seconds(),
            surrogate_hook_seconds: surrogate_vm_guard.hook_seconds(),
            comm_seconds: net_clock.seconds(),
            client_gc_cycles: client_vm_guard.collector().cycles(),
            offloads,
            final_graph,
            metrics: monitor.metrics(),
            remote_stats: monitor.remote_stats(),
            surrogate_requests_served: surrogate_ep.requests_served(),
            client_requests_served: client_ep.requests_served(),
            frames_exchanged: client_ep.traffic().frames_sent()
                + surrogate_ep.traffic().frames_sent(),
            failover: None,
            telemetry: aide_telemetry::global()
                .snapshot()
                .delta_since(&telemetry_before),
            events: recorder.events(),
        }
    }

    /// Provider-backed run: client VM only; surrogate sessions are acquired
    /// from the provider on demand and replaced on failure.
    fn run_with_provider(
        &self,
        provider: Arc<dyn SurrogateProvider>,
        failover_cfg: &FailoverConfig,
    ) -> PlatformReport {
        let cfg = &self.config;

        let mut client_cfg = VmConfig::client(cfg.client_heap);
        client_cfg.gc = cfg.gc;
        client_cfg.cost = cfg.cost;
        client_cfg.stateless_natives_local = cfg.stateless_natives_local;
        if cfg.monitoring {
            client_cfg.cost.monitor_event_micros = cfg.monitor_event_micros;
        }

        let object_granular = if cfg.array_object_granularity {
            self.program
                .classes()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_primitive_array)
                .map(|(i, _)| ClassId(i as u32))
                .collect()
        } else {
            Default::default()
        };
        let monitor = Arc::new(Monitor::new(
            self.program.clone(),
            cfg.trigger,
            object_granular,
        ));

        let client_vm = Arc::new(Mutex::new(Vm::new(self.program.clone(), client_cfg)));
        let net_clock = Arc::new(NetClock::new());
        let client_tables = Arc::new(RefTables::new());
        let telemetry_before = aide_telemetry::global().snapshot();
        let recorder = Arc::new(FlightRecorder::new(FLIGHT_RECORDER_EVENTS));

        // Tracing: this process is the client role; the surrogate side is
        // whatever the provider connects to (typically the daemon, which
        // labels itself).
        aide_trace::install_recorder_annotator();
        aide_trace::set_process_label("client");

        let nondet: Arc<dyn NondetSource> =
            self.nondet.clone().unwrap_or_else(|| Arc::new(LiveSource));
        let controller = Arc::new(Controller {
            monitor: monitor.clone(),
            policy: cfg.policy.build(cfg.comm, cfg.surrogate_speed),
            partitioner: Mutex::new(IncrementalPartitioner::new(cfg.partitioner)),
            evaluation: cfg.evaluation,
            client: std::sync::OnceLock::new(),
            endpoint: std::sync::OnceLock::new(),
            failover: std::sync::OnceLock::new(),
            tables: client_tables.clone(),
            max_offloads: cfg.max_offloads,
            offloads_done: AtomicU32::new(0),
            events: Mutex::new(Vec::new()),
            recorder: recorder.clone(),
            nondet: nondet.clone(),
            evaluating: Mutex::new(()),
        });

        let client_hooks: Arc<dyn RuntimeHooks> = if cfg.monitoring {
            Arc::new(HookChain::new(vec![monitor.clone(), controller.clone()]))
        } else {
            Arc::new(NullHooks)
        };
        let client_machine = Machine::with_parts(client_vm.clone(), client_hooks, None);

        // Every surrogate session the provider opens shares the client's
        // dispatcher (serving surrogate callbacks), link pricing, and clock.
        let ctx = ProviderContext {
            comm: cfg.comm,
            clock: net_clock.clone(),
            dispatcher: Arc::new(VmDispatcher::new(
                client_machine.clone(),
                client_tables.clone(),
            )),
            endpoint_config: EndpointConfig::default(),
        };
        let core = Arc::new(FailoverCore::new(
            provider,
            ctx,
            client_machine.clone(),
            client_tables.clone(),
            failover_cfg,
        ));
        core.set_recorder(recorder.clone());
        core.set_nondet(nondet.clone());
        if let Some(relay) = self.relay.clone() {
            core.set_relay(relay);
        }
        client_tables.exports.set_recorder(recorder.clone());
        client_machine.set_remote(Arc::new(FailoverAdapter::new(core.clone())));
        controller.bind_failover(client_machine.clone(), core.clone());

        // Heartbeat: probe the active surrogate so failures are detected
        // even while the mutator runs purely locally.
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeat = {
            let core = core.clone();
            let stop = stop.clone();
            let interval = failover_cfg.heartbeat_interval;
            std::thread::Builder::new()
                .name("aide-heartbeat".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(interval);
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        core.heartbeat_tick();
                    }
                })
                .expect("spawn heartbeat thread")
        };

        let outcome = client_machine.run_entry();

        stop.store(true, Ordering::Relaxed);
        let _ = heartbeat.join();
        // Shipments still parked at end-of-run come home: the report (and
        // the process-wide export/pin gauges) must reflect a consistent
        // heap, not objects stranded in a queue nobody will flush.
        core.recall_relay();
        core.shutdown();

        let (final_graph, _) = monitor.snapshot();
        let offloads = std::mem::take(&mut *controller.events.lock());
        let client_vm_guard = client_vm.lock();
        PlatformReport {
            outcome,
            client_cpu_seconds: client_vm_guard.cpu_seconds(),
            // Surrogate VMs live in the provider's daemons, out of process;
            // their virtual CPU time is not visible from here.
            surrogate_cpu_seconds: 0.0,
            client_hook_seconds: client_vm_guard.hook_seconds(),
            surrogate_hook_seconds: 0.0,
            comm_seconds: net_clock.seconds(),
            client_gc_cycles: client_vm_guard.collector().cycles(),
            offloads,
            final_graph,
            metrics: monitor.metrics(),
            remote_stats: monitor.remote_stats(),
            surrogate_requests_served: 0,
            client_requests_served: core.requests_served_total(),
            frames_exchanged: core.frames_total(),
            failover: Some(core.report()),
            telemetry: aide_telemetry::global()
                .snapshot()
                .delta_since(&telemetry_before),
            events: recorder.events(),
        }
    }
}
