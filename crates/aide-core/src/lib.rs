//! AIDE: an adaptive, transparent distributed platform for
//! resource-constrained devices.
//!
//! This crate assembles the three platform modules of the paper
//! "Towards a Distributed Platform for Resource-Constrained Devices"
//! (ICDCS 2002) on top of the [`aide_vm`] runtime and the [`aide_rpc`]
//! remote-execution substrate:
//!
//! * [`Monitor`] — records execution monitoring information as a weighted
//!   execution graph (and feeds the memory-pressure trigger).
//! * [`partitioner`] — applies the modified-MINCUT heuristic and a
//!   [`aide_graph::PartitionPolicy`] to decide whether a beneficial
//!   offloading exists.
//! * [`Platform`] — the full two-VM distributed platform: it runs an
//!   application on the client VM, offloads selected objects to the
//!   surrogate over a real RPC link when resources run low, and keeps
//!   executing with transparent remote invocations, client-pinned natives
//!   and statics, and distributed garbage collection.
//! * [`SurrogateProvider`] / [`Platform::with_surrogates`] — provider-backed
//!   surrogate acquisition with failover: when the surrogate dies, offloaded
//!   objects are reinstated into the client heap and offloading retries
//!   against the next surrogate (the `aide-surrogate` crate supplies the
//!   daemon, discovery, and ranking).
//!
//! # Examples
//!
//! Running a program under the paper's prototype configuration:
//!
//! ```
//! use std::sync::Arc;
//! use aide_core::{Platform, PlatformConfig};
//! use aide_vm::{MethodDef, Op, ProgramBuilder, Reg};
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.add_class("Main");
//! b.add_method(main, MethodDef::new("main", vec![Op::Work { micros: 50 }]));
//! let program = Arc::new(b.build(main, aide_vm::MethodId(0), 64, 4)?);
//!
//! let platform = Platform::new(program, PlatformConfig::prototype(6 << 20));
//! let report = platform.run();
//! assert!(report.outcome.is_ok());
//! assert!(!report.offloaded()); // tiny program: no pressure, no offload
//! # Ok::<(), aide_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod config;
mod failover;
mod monitor;
mod nondet;
mod offload;
pub mod partitioner;
mod platform;
mod relay;
mod selector;

pub use adapter::{RefTables, RemoteAdapter, VmDispatcher};
pub use config::{EvaluationMode, PlatformConfig, PolicyKind, TransportKind};
pub use failover::{
    BackoffConfig, FailoverConfig, FailoverReport, ProviderContext, SurrogateLease,
    SurrogateProvider,
};
pub use monitor::{Monitor, MonitorMetrics, NodeKey, RemoteStats, TriggerConfig};
pub use nondet::{LinkPhase, LiveSource, MigrationRecord, NondetMode, NondetSource, TriggerSample};
pub use offload::{execute_offload, execute_offload_tracked, OffloadOutcome};
pub use partitioner::{
    decide, decide_with, EpochDecision, HeuristicKind, IncrementalPartitioner, PartitionDecision,
    PartitionerConfig,
};
pub use platform::{OffloadEvent, Platform, PlatformReport};
pub use relay::{RelayShipment, RelaySink};
pub use selector::{PolicyRecommendation, PolicySelector, WorkloadProfile};
