//! Glue between the VM's [`RemoteAccess`] abstraction and the RPC layer.
//!
//! [`RemoteAdapter`] turns the interpreter's remote-object touches into RPC
//! calls; [`VmDispatcher`] serves the peer's RPC calls by re-entering the
//! local interpreter. Both maintain the export/import tables that implement
//! the distributed garbage collection scheme: any local object whose
//! reference leaves this VM is pinned as an external GC root until the peer
//! reports (via a watermarked `GcReleaseSeq`) that it no longer holds it,
//! or until its lease runs out unrenewed and
//! [`VmDispatcher::sweep_expired_exports`] hands it back to the collector.

use std::collections::HashMap;
use std::sync::Arc;

use aide_rpc::{Dispatcher, Endpoint, ExportTable, GcClock, ImportTable, Reply, Request, RpcError};
use aide_vm::{
    ClassId, Machine, MethodId, NativeKind, ObjectId, ObjectRecord, RemoteAccess, VmError, VmResult,
};
use parking_lot::Mutex;

/// Shared distributed-GC state for one side of the platform.
///
/// The tables are individually `Arc`-held so they can also be wired into
/// the endpoint's lease piggyback path ([`Endpoint::attach_gc`]) without
/// splitting ownership.
#[derive(Debug, Default)]
pub struct RefTables {
    /// Local objects exported to the peer (pinned while exported).
    pub exports: Arc<ExportTable>,
    /// Remote objects this side holds references to.
    pub imports: Arc<ImportTable>,
}

impl RefTables {
    /// Creates empty tables.
    pub fn new() -> Self {
        RefTables::default()
    }

    /// Creates empty tables whose export leases are measured against
    /// `clock` (the daemon advances one clock per session by wall time).
    pub fn with_clock(clock: Arc<GcClock>) -> Self {
        RefTables {
            exports: Arc::new(ExportTable::with_clock(clock)),
            imports: Arc::new(ImportTable::new()),
        }
    }

    /// Wires these tables into `endpoint` so every outgoing frame carries
    /// the import epoch and every incoming frame renews export leases.
    pub fn attach_to(&self, endpoint: &Endpoint) {
        endpoint.attach_gc(self.exports.clone(), self.imports.clone());
    }
}

fn rpc_to_vm_error(e: RpcError) -> VmError {
    match e {
        RpcError::Remote(msg) => VmError::RemoteFailure(msg),
        other => VmError::RemoteFailure(other.to_string()),
    }
}

/// The interpreter's window onto the peer VM, backed by an [`Endpoint`].
pub struct RemoteAdapter {
    endpoint: Arc<Endpoint>,
    machine: Machine,
    tables: Arc<RefTables>,
}

impl std::fmt::Debug for RemoteAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteAdapter").finish()
    }
}

impl RemoteAdapter {
    /// Creates an adapter sending through `endpoint`.
    ///
    /// `machine` must be the *local* machine: the adapter uses it to decide
    /// which outgoing references are local (and must be export-pinned).
    pub fn new(endpoint: Arc<Endpoint>, machine: Machine, tables: Arc<RefTables>) -> Self {
        RemoteAdapter {
            endpoint,
            machine,
            tables,
        }
    }

    /// Pins `id` if it is a local object about to be referenced remotely.
    fn export_if_local(&self, id: ObjectId) {
        let vm = self.machine.vm();
        let mut vm = vm.lock();
        if vm.heap().contains(id) && self.tables.exports.export(id) {
            vm.external_root_inc(id);
        }
    }

    /// Notes receipt of a reference owned by the peer.
    fn import_if_remote(&self, id: ObjectId) {
        let vm = self.machine.vm();
        let vm = vm.lock();
        if !vm.heap().contains(id) {
            self.tables.imports.import(id);
        }
    }
}

impl RemoteAccess for RemoteAdapter {
    fn invoke(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        arg_bytes: u32,
        ret_bytes: u32,
        args: &[ObjectId],
    ) -> VmResult<()> {
        for &a in args {
            self.export_if_local(a);
        }
        self.import_if_remote(target);
        self.endpoint
            .call_with_retry(Request::Invoke {
                target,
                class,
                method,
                arg_bytes,
                ret_bytes,
                args: args.to_vec(),
            })
            .map(|_| ())
            .map_err(rpc_to_vm_error)
    }

    fn field_access(&self, target: ObjectId, bytes: u32, write: bool) -> VmResult<()> {
        self.import_if_remote(target);
        self.endpoint
            .call_with_retry(Request::FieldAccess {
                target,
                bytes,
                write,
            })
            .map(|_| ())
            .map_err(rpc_to_vm_error)
    }

    fn get_slot(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>> {
        self.import_if_remote(target);
        match self
            .endpoint
            .call_with_retry(Request::GetSlot { target, slot })
            .map_err(rpc_to_vm_error)?
        {
            Reply::Slot(value) => {
                if let Some(v) = value {
                    self.import_if_remote(v);
                }
                Ok(value)
            }
            other => Err(VmError::RemoteFailure(format!(
                "unexpected reply {other:?} to GetSlot"
            ))),
        }
    }

    fn put_slot(&self, target: ObjectId, slot: u16, value: Option<ObjectId>) -> VmResult<()> {
        if let Some(v) = value {
            self.export_if_local(v);
        }
        self.import_if_remote(target);
        self.endpoint
            .call_with_retry(Request::PutSlot {
                target,
                slot,
                value,
            })
            .map(|_| ())
            .map_err(rpc_to_vm_error)
    }

    fn native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        arg_bytes: u32,
        ret_bytes: u32,
    ) -> VmResult<()> {
        self.endpoint
            .call_with_retry(Request::Native {
                caller,
                kind,
                work_micros,
                arg_bytes,
                ret_bytes,
            })
            .map(|_| ())
            .map_err(rpc_to_vm_error)
    }

    fn static_access(
        &self,
        accessor: ClassId,
        class: ClassId,
        bytes: u32,
        write: bool,
    ) -> VmResult<()> {
        self.endpoint
            .call_with_retry(Request::StaticAccess {
                accessor,
                class,
                bytes,
                write,
            })
            .map(|_| ())
            .map_err(rpc_to_vm_error)
    }

    fn class_of(&self, target: ObjectId) -> VmResult<ClassId> {
        match self
            .endpoint
            .call_with_retry(Request::ClassOf { target })
            .map_err(rpc_to_vm_error)?
        {
            Reply::Class(c) => Ok(c),
            other => Err(VmError::RemoteFailure(format!(
                "unexpected reply {other:?} to ClassOf"
            ))),
        }
    }
}

/// Serves the peer's requests against the local machine.
pub struct VmDispatcher {
    machine: Machine,
    tables: Arc<RefTables>,
    /// Objects staged by [`Request::MigratePrepare`], keyed by transaction
    /// id, held outside the heap until COMMIT installs them atomically or
    /// ABORT discards them.
    staged: Mutex<HashMap<u64, Vec<(ObjectId, ObjectRecord)>>>,
    /// Relay transactions already installed by [`Request::RelayDeliver`].
    /// The relay redelivers until acknowledged, so installation must be
    /// exactly-once per transaction id even across duplicate deliveries
    /// that slip past the transport-level dedup (a relay reconnecting with
    /// a fresh client id).
    applied_relays: Mutex<std::collections::HashSet<u64>>,
}

impl std::fmt::Debug for VmDispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VmDispatcher").finish()
    }
}

impl VmDispatcher {
    /// Creates a dispatcher executing against `machine`.
    pub fn new(machine: Machine, tables: Arc<RefTables>) -> Self {
        VmDispatcher {
            machine,
            tables,
            staged: Mutex::new(HashMap::new()),
            applied_relays: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Bytes currently staged by open migration transactions.
    pub fn staged_bytes(&self) -> u64 {
        self.staged
            .lock()
            .values()
            .flatten()
            .map(|(_, r)| r.footprint())
            .sum()
    }

    /// Installs `objects` into the local heap, pinning each one. Shared by
    /// the single-shot [`Request::Migrate`] path and COMMIT.
    fn install_objects(&self, objects: Vec<(ObjectId, ObjectRecord)>) -> Result<Reply, String> {
        let vm = self.machine.vm();
        let mut vm = vm.lock();
        // All-or-nothing: verify capacity before installing anything,
        // so a failed migration never leaves objects half-resident.
        let total: u64 = objects.iter().map(|(_, r)| r.footprint()).sum();
        if total > vm.heap().free_bytes() {
            return Err(format!(
                "surrogate heap cannot host {total} B ({} B free)",
                vm.heap().free_bytes()
            ));
        }
        for (id, record) in objects {
            // Cross-VM slot references: note remote ones as imports.
            for slot in record.slots.iter().flatten() {
                if !vm.heap().contains(*slot) {
                    self.tables.imports.import(*slot);
                }
            }
            vm.heap_mut()
                .migrate_in(id, record)
                .map_err(|e| e.to_string())?;
            // Conservatively pin every migrated-in object: the peer
            // still holds references (frames, slots) to it. Released
            // by the peer's GcRelease when it drops them.
            if self.tables.exports.export(id) {
                vm.external_root_inc(id);
            }
        }
        Ok(Reply::Unit)
    }

    fn import_incoming_refs(&self, args: &[ObjectId]) {
        let vm = self.machine.vm();
        let vm = vm.lock();
        for &a in args {
            if !vm.heap().contains(a) {
                self.tables.imports.import(a);
            }
        }
    }

    fn export_outgoing(&self, id: ObjectId) {
        let vm = self.machine.vm();
        let mut vm = vm.lock();
        if vm.heap().contains(id) && self.tables.exports.export(id) {
            vm.external_root_inc(id);
        }
    }

    /// The dispatcher's reference tables (shared with the platform side).
    pub fn tables(&self) -> &Arc<RefTables> {
        &self.tables
    }

    /// Sweeps expired-lease and stale-epoch exports back to the collector,
    /// unpinning each reclaimed object under the VM lock. Returns
    /// `(expired, stale)` counts. The surrogate daemon runs this
    /// periodically; failover runs it after bumping the epoch.
    pub fn sweep_expired_exports(&self) -> (usize, usize) {
        let vm = self.machine.vm();
        let mut vm = vm.lock();
        let expired = self.tables.exports.sweep_expired();
        for &id in &expired {
            vm.external_root_dec(id);
        }
        let stale = self.tables.exports.sweep_stale_epochs();
        for &id in &stale {
            vm.external_root_dec(id);
        }
        (expired.len(), stale.len())
    }
}

impl Dispatcher for VmDispatcher {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        match request {
            Request::Invoke {
                target,
                class,
                method,
                args,
                ..
            } => {
                self.import_incoming_refs(&args);
                self.machine
                    .call_on(target, class, method, &args)
                    .map(|()| Reply::Unit)
                    .map_err(|e| e.to_string())
            }
            Request::FieldAccess {
                target,
                bytes,
                write,
            } => self
                .machine
                .field_access_on(target, bytes, write)
                .map(|()| Reply::Unit)
                .map_err(|e| e.to_string()),
            Request::GetSlot { target, slot } => {
                let value = self
                    .machine
                    .get_slot_on(target, slot)
                    .map_err(|e| e.to_string())?;
                // The peer will hold whatever reference we hand out.
                if let Some(v) = value {
                    self.export_outgoing(v);
                }
                Ok(Reply::Slot(value))
            }
            Request::PutSlot {
                target,
                slot,
                value,
            } => {
                if let Some(v) = value {
                    self.import_incoming_refs(&[v]);
                }
                self.machine
                    .put_slot_on(target, slot, value)
                    .map(|()| Reply::Unit)
                    .map_err(|e| e.to_string())
            }
            Request::Native { work_micros, .. } => {
                self.machine.native_on(work_micros);
                Ok(Reply::Unit)
            }
            Request::StaticAccess {
                class,
                bytes,
                write,
                ..
            } => {
                self.machine.static_access_on(class, bytes, write);
                Ok(Reply::Unit)
            }
            Request::ClassOf { target } => self
                .machine
                .class_of_local(target)
                .map(Reply::Class)
                .map_err(|e| e.to_string()),
            Request::Migrate { objects } => self.install_objects(objects),
            Request::RelayDeliver { txn, objects, .. } => {
                // Exactly-once per relay transaction: the relay retries
                // delivery until acknowledged, and acknowledgements can be
                // lost, so a txn already installed replies success without
                // touching the heap again.
                if !self.applied_relays.lock().insert(txn) {
                    return Ok(Reply::Unit);
                }
                let installed = self.install_objects(objects);
                if installed.is_err() {
                    // A failed install (capacity) must stay retryable.
                    self.applied_relays.lock().remove(&txn);
                }
                installed
            }
            Request::MigratePrepare { txn, objects } => {
                // PREPARE stages without installing. The capacity check
                // covers everything staged so far, so a COMMIT that follows
                // a successful PREPARE chain cannot fail for space.
                let mut staged = self.staged.lock();
                let already: u64 = staged.values().flatten().map(|(_, r)| r.footprint()).sum();
                let incoming: u64 = objects.iter().map(|(_, r)| r.footprint()).sum();
                let free = self.machine.vm().lock().heap().free_bytes();
                if already + incoming > free {
                    return Err(format!(
                        "surrogate heap cannot stage {incoming} B for txn {txn} \
                         ({already} B already staged, {free} B free)"
                    ));
                }
                staged.entry(txn).or_default().extend(objects);
                Ok(Reply::Unit)
            }
            Request::MigrateCommit { txn } => match self.staged.lock().remove(&txn) {
                Some(objects) => self.install_objects(objects),
                None => Err(format!("unknown migration txn {txn}")),
            },
            Request::MigrateAbort { txn } => {
                // Idempotent: aborting an unknown (or already-aborted)
                // transaction is a no-op so the client can abort blindly
                // while cleaning up after a failure.
                self.staged.lock().remove(&txn);
                Ok(Reply::Unit)
            }
            Request::GcRelease { objects } => {
                let vm = self.machine.vm();
                let mut vm = vm.lock();
                for id in objects {
                    if self.tables.exports.release(id) {
                        vm.external_root_dec(id);
                    }
                }
                Ok(Reply::Unit)
            }
            Request::GcRenew { epoch } => {
                self.tables.exports.renew(epoch);
                Ok(Reply::Unit)
            }
            Request::GcReleaseSeq {
                epoch,
                release_seq,
                objects,
            } => {
                // The table enforces the epoch/watermark discipline; only
                // entries it actually dropped are unpinned, so replays and
                // zombies cannot double-release a root.
                let vm = self.machine.vm();
                let mut vm = vm.lock();
                for id in self
                    .tables
                    .exports
                    .release_batch(epoch, release_seq, &objects)
                {
                    vm.external_root_dec(id);
                }
                Ok(Reply::Unit)
            }
            Request::Shutdown => Ok(Reply::Unit),
            // Null RPC: answer immediately so probes measure pure link +
            // dispatch latency (the paper's 2.4 ms null-RPC figure).
            Request::Ping => Ok(Reply::Unit),
            // Telemetry scrape: a Prometheus-style exposition of this
            // process's metrics registry.
            Request::Stats => Ok(Reply::Text(aide_telemetry::prometheus_text(
                &aide_telemetry::global().snapshot(),
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_graph::CommParams;
    use aide_rpc::{EndpointConfig, Link};
    use aide_vm::{MethodDef, Op, ProgramBuilder, Reg, VmConfig};

    /// Builds a connected client/surrogate machine pair over real RPC.
    fn machine_pair() -> (Machine, Machine, Arc<Endpoint>, Arc<Endpoint>) {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let worker = b.add_class("Worker");
        b.add_method(
            worker,
            MethodDef::new("step", vec![Op::Work { micros: 10 }]),
        );
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, MethodId(0), 64, 4).unwrap());

        let client = Machine::new(program.clone(), VmConfig::client(1 << 20));
        let surrogate = Machine::new(program, VmConfig::surrogate(8 << 20));

        let (link, ct, st) = Link::pair(CommParams::WAVELAN);
        let clock = link.clock.clone();
        let client_tables = Arc::new(RefTables::new());
        let surrogate_tables = Arc::new(RefTables::new());

        let client_ep = Endpoint::start(
            ct,
            link.params,
            clock.clone(),
            Arc::new(VmDispatcher::new(client.clone(), client_tables.clone())),
            EndpointConfig::default(),
        );
        let surrogate_ep = Endpoint::start(
            st,
            link.params,
            clock,
            Arc::new(VmDispatcher::new(
                surrogate.clone(),
                surrogate_tables.clone(),
            )),
            EndpointConfig::default(),
        );

        // Lease piggyback: every frame each side sends renews the peer's
        // view of this side's holds.
        client_tables.attach_to(&client_ep);
        surrogate_tables.attach_to(&surrogate_ep);

        // Calls placed on an endpoint travel to the peer and are served by
        // the peer's dispatcher: the client's outbound path is client_ep.
        client.set_remote(Arc::new(RemoteAdapter::new(
            client_ep.clone(),
            client.clone(),
            client_tables,
        )));
        surrogate.set_remote(Arc::new(RemoteAdapter::new(
            surrogate_ep.clone(),
            surrogate.clone(),
            surrogate_tables,
        )));
        (client, surrogate, client_ep, surrogate_ep)
    }

    #[test]
    fn migrate_then_invoke_executes_on_surrogate() {
        let (client, surrogate, cep, _sep) = machine_pair();
        // Create a Worker on the client and take it off the client heap.
        let worker_id = ObjectId::client(1000);
        let record = {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(worker_id, aide_vm::ObjectRecord::new(ClassId(1), 500, 0))
                .unwrap();
            vm.heap_mut().migrate_out(worker_id).unwrap()
        };
        // Offload it over the wire: the client's endpoint sends, the
        // surrogate's dispatcher serves.
        cep.call(Request::Migrate {
            objects: vec![(worker_id, record)],
        })
        .unwrap();
        assert!(surrogate.vm().lock().heap().contains(worker_id));
        // The object is no longer client-local, so a direct local call
        // fails there...
        assert!(client
            .call_on(worker_id, ClassId(1), MethodId(0), &[])
            .is_err());
        // ...but an Invoke through the RPC path executes on the surrogate.
        cep.call(Request::Invoke {
            target: worker_id,
            class: ClassId(1),
            method: MethodId(0),
            arg_bytes: 0,
            ret_bytes: 0,
            args: vec![],
        })
        .unwrap();
        assert!(surrogate.vm().lock().cpu_seconds() > 0.0);
    }

    #[test]
    fn remote_invoke_round_trips_through_rpc() {
        let (client, surrogate, cep, sep) = machine_pair();
        // Put a Worker object on the surrogate.
        let worker_id = ObjectId::surrogate(5);
        {
            let vm = surrogate.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(worker_id, aide_vm::ObjectRecord::new(ClassId(1), 100, 0))
                .unwrap();
        }
        // Drive an Invoke from the client through its RemoteAccess adapter.
        let tables = Arc::new(RefTables::new());
        let adapter = RemoteAdapter::new(cep.clone(), client.clone(), tables);
        adapter
            .invoke(worker_id, ClassId(1), MethodId(0), 16, 8, &[])
            .unwrap();
        assert_eq!(sep.requests_served(), 1);
        assert!(surrogate.vm().lock().cpu_seconds() > 0.0);
        // Link time was charged.
        assert!(cep.clock().seconds() > 0.0);
    }

    #[test]
    fn class_of_resolves_across_vms() {
        let (client, surrogate, cep, _sep) = machine_pair();
        let id = ObjectId::surrogate(9);
        {
            let vm = surrogate.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(id, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        let tables = Arc::new(RefTables::new());
        let adapter = RemoteAdapter::new(cep, client.clone(), tables);
        assert_eq!(adapter.class_of(id).unwrap(), ClassId(1));
        assert!(matches!(
            adapter.class_of(ObjectId::surrogate(404)).unwrap_err(),
            VmError::RemoteFailure(_)
        ));
    }

    #[test]
    fn exported_arguments_are_pinned_until_released() {
        let (client, surrogate, cep, _sep) = machine_pair();
        // A client-local object passed as an argument to a remote call.
        let arg_id = ObjectId::client(77);
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(arg_id, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        let target = ObjectId::surrogate(3);
        {
            let vm = surrogate.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(target, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        let tables = Arc::new(RefTables::new());
        let adapter = RemoteAdapter::new(cep, client.clone(), tables.clone());
        adapter
            .invoke(target, ClassId(1), MethodId(0), 0, 0, &[arg_id])
            .unwrap();
        assert!(tables.exports.contains(arg_id));
        assert_eq!(client.vm().lock().external_root_count(), 1);
        assert!(tables.imports.contains(target));
    }

    #[test]
    fn gc_release_unpins_exports() {
        let (client, _surrogate, cep, _sep) = machine_pair();
        // Client exports an object (simulating an earlier reference send).
        let id = ObjectId::client(55);
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(id, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        // Reproduce what RemoteAdapter::export_if_local does, through the
        // same tables the client dispatcher uses. We need those tables —
        // rebuild the dispatcher path instead: surrogate sends GcRelease.
        // For unit purposes, drive the client's dispatcher directly.
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(client.clone(), tables.clone());
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            if tables.exports.export(id) {
                vm.external_root_inc(id);
            }
        }
        assert_eq!(client.vm().lock().external_root_count(), 1);
        let reply = dispatcher
            .dispatch(Request::GcRelease { objects: vec![id] })
            .unwrap();
        assert_eq!(reply, Reply::Unit);
        assert_eq!(client.vm().lock().external_root_count(), 0);
        let _ = cep;
    }

    #[test]
    fn release_seq_is_idempotent_through_the_dispatcher() {
        let (client, _surrogate, _cep, _sep) = machine_pair();
        let id = ObjectId::client(56);
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(id, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(client.clone(), tables.clone());
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            if tables.exports.export(id) {
                vm.external_root_inc(id);
            }
        }
        let release = Request::GcReleaseSeq {
            epoch: 0,
            release_seq: 1,
            objects: vec![id],
        };
        dispatcher.dispatch(release.clone()).unwrap();
        assert_eq!(client.vm().lock().external_root_count(), 0);
        // A chaos duplicate of the same batch is a no-op: no double-unpin,
        // no unbalanced audit entry.
        let before = client.vm().lock().external_root_audit();
        dispatcher.dispatch(release).unwrap();
        assert_eq!(client.vm().lock().external_root_audit(), before);
        assert!(tables.exports.is_empty());
    }

    #[test]
    fn expired_leases_are_swept_back_to_the_collector() {
        let (client, _surrogate, _cep, _sep) = machine_pair();
        let id = ObjectId::client(57);
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            vm.heap_mut()
                .insert(id, aide_vm::ObjectRecord::new(ClassId(1), 10, 0))
                .unwrap();
        }
        let clock = Arc::new(aide_rpc::GcClock::new());
        let tables = Arc::new(RefTables::with_clock(clock.clone()));
        tables.exports.set_ttl_ms(50);
        let dispatcher = VmDispatcher::new(client.clone(), tables.clone());
        {
            let vm = client.vm();
            let mut vm = vm.lock();
            if tables.exports.export(id) {
                vm.external_root_inc(id);
            }
        }
        clock.advance_ms(100);
        let (expired, stale) = dispatcher.sweep_expired_exports();
        assert_eq!((expired, stale), (1, 0));
        assert_eq!(client.vm().lock().external_root_count(), 0);
        assert!(tables.exports.is_empty());
    }

    #[test]
    fn migrate_request_installs_objects_and_pins_them() {
        let (_client, surrogate, _cep, _sep) = machine_pair();
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(surrogate.clone(), tables.clone());
        let mut rec = aide_vm::ObjectRecord::new(ClassId(1), 200, 1);
        rec.slots[0] = Some(ObjectId::client(123)); // back-ref to the client
        let id = ObjectId::client(500);
        dispatcher
            .dispatch(Request::Migrate {
                objects: vec![(id, rec)],
            })
            .unwrap();
        let vm = surrogate.vm();
        let vm = vm.lock();
        assert!(vm.heap().contains(id));
        assert_eq!(vm.heap().stats().migrated_in, 1);
        assert_eq!(vm.external_root_count(), 1, "migrated object pinned");
        assert!(tables.imports.contains(ObjectId::client(123)));
    }

    #[test]
    fn prepare_stages_without_installing_until_commit() {
        let (_client, surrogate, _cep, _sep) = machine_pair();
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(surrogate.clone(), tables);
        let id = ObjectId::client(600);
        let rec = aide_vm::ObjectRecord::new(ClassId(1), 300, 0);
        dispatcher
            .dispatch(Request::MigratePrepare {
                txn: 1,
                objects: vec![(id, rec)],
            })
            .unwrap();
        // Staged, not installed.
        assert!(!surrogate.vm().lock().heap().contains(id));
        assert!(dispatcher.staged_bytes() > 0);
        dispatcher
            .dispatch(Request::MigrateCommit { txn: 1 })
            .unwrap();
        assert!(surrogate.vm().lock().heap().contains(id));
        assert_eq!(dispatcher.staged_bytes(), 0);
    }

    #[test]
    fn abort_discards_staged_objects() {
        let (_client, surrogate, _cep, _sep) = machine_pair();
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(surrogate.clone(), tables);
        let id = ObjectId::client(601);
        dispatcher
            .dispatch(Request::MigratePrepare {
                txn: 2,
                objects: vec![(id, aide_vm::ObjectRecord::new(ClassId(1), 300, 0))],
            })
            .unwrap();
        dispatcher
            .dispatch(Request::MigrateAbort { txn: 2 })
            .unwrap();
        assert!(!surrogate.vm().lock().heap().contains(id));
        assert_eq!(dispatcher.staged_bytes(), 0);
        // Committing the aborted transaction is an error, and aborting
        // again is a harmless no-op.
        assert!(dispatcher
            .dispatch(Request::MigrateCommit { txn: 2 })
            .is_err());
        dispatcher
            .dispatch(Request::MigrateAbort { txn: 2 })
            .unwrap();
    }

    #[test]
    fn prepare_refuses_to_overstage_the_heap() {
        let (_client, surrogate, _cep, _sep) = machine_pair();
        let tables = Arc::new(RefTables::new());
        let dispatcher = VmDispatcher::new(surrogate.clone(), tables);
        let free = surrogate.vm().lock().heap().free_bytes();
        // Two prepares that together exceed the heap: the second must be
        // refused even though each alone would fit.
        let big = u32::try_from(free * 2 / 3).unwrap();
        dispatcher
            .dispatch(Request::MigratePrepare {
                txn: 3,
                objects: vec![(
                    ObjectId::client(700),
                    aide_vm::ObjectRecord::new(ClassId(1), big, 0),
                )],
            })
            .unwrap();
        let err = dispatcher
            .dispatch(Request::MigratePrepare {
                txn: 4,
                objects: vec![(
                    ObjectId::client(701),
                    aide_vm::ObjectRecord::new(ClassId(1), big, 0),
                )],
            })
            .unwrap_err();
        assert!(err.contains("cannot stage"), "got: {err}");
    }
}
