//! The execution and resource monitoring module (paper §3.4).
//!
//! The monitor implements [`RuntimeHooks`] and aggregates the VM's event
//! stream into the weighted execution graph the partitioner consumes: a
//! node per class annotated with live memory and exclusive CPU time, and an
//! edge per interacting class pair annotated with interaction counts and
//! bytes transferred.
//!
//! With the *array enhancement* enabled (paper §5.2), objects of designated
//! primitive-array classes are monitored at **object granularity**: each
//! array instance gets its own graph node, so the partitioner can place
//! individual arrays instead of the whole class.
//!
//! The monitor also maintains the memory-pressure trigger state machine
//! (three successive collection cycles reporting little free memory, §5.1),
//! the remote-interaction counters behind Figure 8, and the execution
//! metrics behind Table 2.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use aide_graph::{EdgeInfo, ExecutionGraph, GraphDelta, NodeId, NodeInfo, PinReason};
use aide_vm::{
    ClassId, GcReport, Interaction, InteractionKind, NativeKind, ObjectId, Program, RuntimeHooks,
};

/// What a graph node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKey {
    /// A whole class (the paper's default component granularity).
    Class(ClassId),
    /// A single object of an object-granular (primitive-array) class.
    Object(ObjectId),
}

/// Memory-pressure trigger configuration (paper §5.1): partitioning is
/// triggered when successive garbage-collection cycles indicate that
/// additional memory cannot be freed or that less than the threshold
/// fraction of memory is available.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriggerConfig {
    /// A cycle signals pressure when free heap is below this fraction.
    pub low_free_fraction: f64,
    /// A cycle that reclaims nothing ("additional memory cannot be freed")
    /// signals pressure when free heap is below this fraction — a barren
    /// cycle with ample free memory is healthy, not pressure.
    pub barren_concern_fraction: f64,
    /// Successive pressured cycles required before the trigger fires (the
    /// paper's "tolerance to low-memory signals").
    pub consecutive_reports: u32,
}

impl Default for TriggerConfig {
    fn default() -> Self {
        // The paper's initial policy: three successive cycles under 5% free.
        TriggerConfig {
            low_free_fraction: 0.05,
            barren_concern_fraction: 0.10,
            consecutive_reports: 3,
        }
    }
}

/// Table 2-style execution metrics, sampled at every collection cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MonitorMetrics {
    /// Number of samples taken (one per GC cycle).
    pub samples: u64,
    /// Average number of classes with live objects per sample.
    pub classes_avg: f64,
    /// Maximum number of classes with live objects in any sample.
    pub classes_max: u64,
    /// Total classes that ever had an object allocated.
    pub classes_total: u64,
    /// Average live objects per sample.
    pub objects_avg: f64,
    /// Maximum live objects in any sample.
    pub objects_max: u64,
    /// Total objects created.
    pub objects_total: u64,
    /// Average number of graph links (edges) per sample.
    pub links_avg: f64,
    /// Maximum number of graph links in any sample.
    pub links_max: u64,
    /// Total interaction events recorded.
    pub interaction_events: u64,
    /// Interaction events that were method invocations.
    pub invocation_events: u64,
    /// Interaction events that were data-field accesses.
    pub field_access_events: u64,
    /// Estimated storage footprint of the execution graph, in bytes.
    pub graph_storage_bytes: u64,
}

/// Remote-execution counters (Figure 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteStats {
    /// Remote inter-class interactions (invocations + accesses).
    pub remote_interactions: u64,
    /// Remote method invocations only.
    pub remote_invocations: u64,
    /// Native invocations that had to travel back to the client.
    pub remote_native_calls: u64,
    /// Static-data accesses that had to travel back to the client.
    pub remote_static_accesses: u64,
    /// Bytes carried by remote interactions.
    pub remote_bytes: u64,
}

#[derive(Debug, Default)]
struct GraphState {
    nodes: HashMap<NodeKey, usize>,
    labels: Vec<(NodeKey, String, Option<PinReason>)>,
    memory: Vec<i64>,
    cpu_micros: Vec<f64>,
    live_objects: Vec<i64>,
    edges: HashMap<(usize, usize), EdgeInfo>,
    /// Object -> node index, for object-granular classes.
    object_class: HashMap<ObjectId, ClassId>,
    /// Node indices already announced to delta consumers via `AddNode`
    /// (the [`Monitor::drain_deltas`] watermark).
    published_nodes: usize,
    /// Already-published nodes whose annotations changed since the last
    /// drain (ordered, for deterministic delta batches).
    dirty_nodes: BTreeSet<usize>,
    /// Edge increments accumulated since the last drain.
    edge_accum: HashMap<(usize, usize), EdgeInfo>,
}

#[derive(Debug, Default)]
struct MetricState {
    samples: u64,
    class_live_sum: u64,
    class_live_max: u64,
    classes_seen: HashSet<ClassId>,
    obj_live: i64,
    obj_live_sum: u64,
    obj_live_max: u64,
    obj_total: u64,
    links_sum: u64,
    links_max: u64,
    invocations: u64,
    accesses: u64,
}

/// The monitoring module.
///
/// Shared by both VMs of a distributed platform (the paper performs graph
/// partitioning solely on the client but assumes shared knowledge of the
/// application, §4).
pub struct Monitor {
    program: Arc<Program>,
    trigger: TriggerConfig,
    object_granular: HashSet<ClassId>,
    graph: Mutex<GraphState>,
    metrics: Mutex<MetricState>,
    remote: Mutex<RemoteStats>,
    low_memory_streak: AtomicU64,
    memory_triggered: AtomicBool,
    work_since_eval_micros: Mutex<f64>,
    gc_reports: Mutex<Vec<GcReport>>,
    hook_events: Arc<aide_telemetry::Counter>,
    hook_nanos: Arc<aide_telemetry::Counter>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("trigger", &self.trigger)
            .field("object_granular_classes", &self.object_granular.len())
            .finish()
    }
}

impl Monitor {
    /// Creates a monitor for `program`.
    ///
    /// `object_granular` lists primitive-array classes to monitor at
    /// object granularity (empty = pure class granularity, the paper's
    /// default).
    pub fn new(
        program: Arc<Program>,
        trigger: TriggerConfig,
        object_granular: HashSet<ClassId>,
    ) -> Self {
        Monitor {
            program,
            trigger,
            object_granular,
            graph: Mutex::new(GraphState::default()),
            metrics: Mutex::new(MetricState::default()),
            remote: Mutex::new(RemoteStats::default()),
            low_memory_streak: AtomicU64::new(0),
            memory_triggered: AtomicBool::new(false),
            work_since_eval_micros: Mutex::new(0.0),
            gc_reports: Mutex::new(Vec::new()),
            hook_events: aide_telemetry::global()
                .counter(aide_telemetry::names::MONITOR_HOOK_EVENTS),
            hook_nanos: aide_telemetry::global().counter(aide_telemetry::names::MONITOR_HOOK_NANOS),
        }
    }

    /// Starts timing one hook invocation, unless telemetry is disabled
    /// (the disabled path must not even read the clock).
    fn hook_timer(&self) -> Option<std::time::Instant> {
        aide_telemetry::enabled().then(std::time::Instant::now)
    }

    /// Accounts one completed hook invocation.
    fn note_hook(&self, started: Option<std::time::Instant>) {
        if let Some(t0) = started {
            self.hook_events.inc();
            self.hook_nanos
                .add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// The trigger configuration.
    pub fn trigger_config(&self) -> TriggerConfig {
        self.trigger
    }

    /// Returns `true` once the memory-pressure trigger has fired.
    pub fn memory_triggered(&self) -> bool {
        self.memory_triggered.load(Ordering::SeqCst)
    }

    /// Clears the memory trigger (after an offload handled it).
    pub fn reset_memory_trigger(&self) {
        self.memory_triggered.store(false, Ordering::SeqCst);
        self.low_memory_streak.store(0, Ordering::SeqCst);
    }

    /// Exclusive work accumulated since the last periodic evaluation
    /// (non-destructive peek).
    pub fn work_since_eval(&self) -> f64 {
        *self.work_since_eval_micros.lock()
    }

    /// Exclusive work accumulated since the last periodic evaluation, and
    /// resets the accumulator — used by CPU-constraint triggering.
    pub fn take_work_since_eval(&self) -> f64 {
        let mut w = self.work_since_eval_micros.lock();
        std::mem::replace(&mut *w, 0.0)
    }

    /// All garbage-collection reports observed so far.
    pub fn gc_reports(&self) -> Vec<GcReport> {
        self.gc_reports.lock().clone()
    }

    /// Remote-execution counters (Figure 8).
    pub fn remote_stats(&self) -> RemoteStats {
        *self.remote.lock()
    }

    /// Table 2-style execution metrics.
    pub fn metrics(&self) -> MonitorMetrics {
        let m = self.metrics.lock();
        let g = self.graph.lock();
        let storage = graph_storage_estimate(&g);
        let div = |sum: u64, n: u64| if n == 0 { 0.0 } else { sum as f64 / n as f64 };
        MonitorMetrics {
            samples: m.samples,
            classes_avg: div(m.class_live_sum, m.samples),
            classes_max: m.class_live_max,
            classes_total: m.classes_seen.len() as u64,
            objects_avg: div(m.obj_live_sum, m.samples),
            objects_max: m.obj_live_max,
            objects_total: m.obj_total,
            links_avg: div(m.links_sum, m.samples),
            links_max: m.links_max,
            interaction_events: m.invocations + m.accesses,
            invocation_events: m.invocations,
            field_access_events: m.accesses,
            graph_storage_bytes: storage as u64,
        }
    }

    /// Snapshots the current execution graph.
    ///
    /// Returns the graph plus the [`NodeKey`] each [`NodeId`] stands for,
    /// which the offload executor needs to translate a partitioning back
    /// into concrete objects.
    pub fn snapshot(&self) -> (ExecutionGraph, Vec<NodeKey>) {
        let g = self.graph.lock();
        let mut graph = ExecutionGraph::new();
        let mut keys = Vec::with_capacity(g.labels.len());
        for (i, (key, label, pin)) in g.labels.iter().enumerate() {
            let mut info = match pin {
                Some(reason) => NodeInfo::pinned(label.clone(), *reason),
                None => NodeInfo::new(label.clone()),
            };
            info.memory_bytes = g.memory[i].max(0) as u64;
            info.cpu_micros = g.cpu_micros[i].round() as u64;
            info.live_objects = g.live_objects[i].max(0) as u64;
            let id = graph.add_node(info);
            debug_assert_eq!(id.index(), i);
            keys.push(*key);
        }
        for (&(a, b), &e) in &g.edges {
            graph.record_interaction(NodeId(a as u32), NodeId(b as u32), e);
        }
        (graph, keys)
    }

    /// Drains the changes observed since the previous drain as a batch of
    /// [`GraphDelta`]s, plus the current [`NodeKey`] of every node.
    ///
    /// Applying every drained batch, in order, to an
    /// [`aide_graph::IncrementalGraph`] yields exactly the graph
    /// [`snapshot`](Monitor::snapshot) would return at the same moment —
    /// the snapshot's clamping (negative memory balances floor at zero,
    /// fractional CPU microseconds round) is performed here, once, on the
    /// producer side. Batches are deterministic: node additions in id
    /// order, then annotation updates in id order, then edge increments in
    /// `(a, b)` order.
    pub fn drain_deltas(&self) -> (Vec<GraphDelta>, Vec<NodeKey>) {
        let mut g = self.graph.lock();
        let was_published = g.published_nodes;
        let mut deltas = Vec::new();
        for i in was_published..g.labels.len() {
            let (_, label, pin) = &g.labels[i];
            deltas.push(GraphDelta::AddNode {
                label: label.clone(),
                pinned: *pin,
                memory_bytes: g.memory[i].max(0) as u64,
                cpu_micros: g.cpu_micros[i].round() as u64,
                live_objects: g.live_objects[i].max(0) as u64,
            });
        }
        for &i in g.dirty_nodes.iter().filter(|&&i| i < was_published) {
            deltas.push(GraphDelta::UpdateNode {
                node: NodeId(i as u32),
                memory_bytes: g.memory[i].max(0) as u64,
                cpu_micros: g.cpu_micros[i].round() as u64,
                live_objects: g.live_objects[i].max(0) as u64,
            });
        }
        let mut edges: Vec<((usize, usize), EdgeInfo)> = g.edge_accum.drain().collect();
        edges.sort_unstable_by_key(|&(key, _)| key);
        for ((a, b), e) in edges {
            deltas.push(GraphDelta::Interaction {
                a: NodeId(a as u32),
                b: NodeId(b as u32),
                delta: e,
            });
        }
        g.dirty_nodes.clear();
        g.published_nodes = g.labels.len();
        let keys = g.labels.iter().map(|(k, _, _)| *k).collect();
        (deltas, keys)
    }

    /// The class a monitored object belongs to, if the monitor saw its
    /// allocation (used for object-granular placement).
    pub fn class_of_object(&self, id: ObjectId) -> Option<ClassId> {
        self.graph.lock().object_class.get(&id).copied()
    }

    fn node_index(&self, g: &mut GraphState, key: NodeKey) -> usize {
        if let Some(&i) = g.nodes.get(&key) {
            return i;
        }
        let (label, pin) = match key {
            NodeKey::Class(c) => {
                let def = self.program.class(c).expect("monitored class exists");
                // Only classes *implemented with* native methods are pinned
                // (paper §3.3); classes that merely invoke natives remain
                // offloadable — their native calls are redirected to the
                // client at run time instead.
                (
                    def.name.clone(),
                    def.native_impl.then_some(PinReason::NativeMethods),
                )
            }
            NodeKey::Object(o) => (format!("obj:{o}"), None),
        };
        let i = g.labels.len();
        g.labels.push((key, label, pin));
        g.memory.push(0);
        g.cpu_micros.push(0.0);
        g.live_objects.push(0);
        g.nodes.insert(key, i);
        i
    }

    fn key_for_target(&self, class: ClassId, target: Option<ObjectId>, g: &GraphState) -> NodeKey {
        if self.object_granular.contains(&class) {
            if let Some(obj) = target {
                if g.object_class.contains_key(&obj) || self.object_granular.contains(&class) {
                    return NodeKey::Object(obj);
                }
            }
        }
        NodeKey::Class(class)
    }
}

fn graph_storage_estimate(g: &GraphState) -> usize {
    g.labels
        .iter()
        .map(|(_, label, _)| 48 + label.len())
        .sum::<usize>()
        + g.edges.len() * (16 + std::mem::size_of::<EdgeInfo>())
}

impl RuntimeHooks for Monitor {
    fn on_interaction(&self, event: Interaction) {
        let hook_started = self.hook_timer();
        let mut g = self.graph.lock();
        let caller_key = NodeKey::Class(event.caller);
        let callee_key = self.key_for_target(event.callee, event.target, &g);
        let a = self.node_index(&mut g, caller_key);
        let b = self.node_index(&mut g, callee_key);
        if a != b {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let increment = EdgeInfo::new(1, event.bytes);
            g.edges.entry((lo, hi)).or_default().absorb(increment);
            g.edge_accum.entry((lo, hi)).or_default().absorb(increment);
        }
        drop(g);

        let mut m = self.metrics.lock();
        match event.kind {
            InteractionKind::Invocation => m.invocations += 1,
            InteractionKind::FieldAccess => m.accesses += 1,
        }
        drop(m);

        if event.remote {
            let mut r = self.remote.lock();
            r.remote_interactions += 1;
            if event.kind == InteractionKind::Invocation {
                r.remote_invocations += 1;
            }
            r.remote_bytes += event.bytes;
        }
        self.note_hook(hook_started);
    }

    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        let hook_started = self.hook_timer();
        let mut g = self.graph.lock();
        let key = if self.object_granular.contains(&class) {
            g.object_class.insert(object, class);
            NodeKey::Object(object)
        } else {
            NodeKey::Class(class)
        };
        let i = self.node_index(&mut g, key);
        g.memory[i] += bytes as i64;
        g.live_objects[i] += 1;
        g.dirty_nodes.insert(i);
        drop(g);

        let mut m = self.metrics.lock();
        m.classes_seen.insert(class);
        m.obj_live += 1;
        m.obj_total += 1;
        drop(m);
        self.note_hook(hook_started);
    }

    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        let hook_started = self.hook_timer();
        let mut g = self.graph.lock();
        // Object-granular frees arrive aggregated per class; distribute is
        // unnecessary because dead arrays stop mattering — zero the class
        // node if present, otherwise subtract from the class node.
        let key = NodeKey::Class(class);
        if self.object_granular.contains(&class) {
            // Dead object nodes are detected lazily: their memory stays
            // until re-snapshot; acceptable because offload decisions use
            // live class bytes from the heap at offload time.
        } else if let Some(&i) = g.nodes.get(&key) {
            g.memory[i] -= bytes as i64;
            g.live_objects[i] -= objects as i64;
            g.dirty_nodes.insert(i);
        }
        drop(g);

        let mut m = self.metrics.lock();
        m.obj_live -= objects as i64;
        drop(m);
        self.note_hook(hook_started);
    }

    fn on_work(&self, class: ClassId, micros: f64) {
        let hook_started = self.hook_timer();
        let mut g = self.graph.lock();
        let i = self.node_index(&mut g, NodeKey::Class(class));
        g.cpu_micros[i] += micros;
        g.dirty_nodes.insert(i);
        drop(g);
        *self.work_since_eval_micros.lock() += micros;
        self.note_hook(hook_started);
    }

    fn on_native(
        &self,
        _caller: ClassId,
        _kind: NativeKind,
        _work_micros: u32,
        bytes: u64,
        remote: bool,
    ) {
        let hook_started = self.hook_timer();
        if remote {
            let mut r = self.remote.lock();
            r.remote_native_calls += 1;
            r.remote_interactions += 1;
            r.remote_invocations += 1;
            r.remote_bytes += bytes;
        }
        self.note_hook(hook_started);
    }

    fn on_static_access(&self, _accessor: ClassId, _class: ClassId, bytes: u64, remote: bool) {
        let hook_started = self.hook_timer();
        if remote {
            let mut r = self.remote.lock();
            r.remote_static_accesses += 1;
            r.remote_interactions += 1;
            r.remote_bytes += bytes;
        }
        self.note_hook(hook_started);
    }

    fn on_gc(&self, report: &GcReport) {
        let hook_started = self.hook_timer();
        self.gc_reports.lock().push(*report);

        // Sample Table 2 metrics.
        {
            let g = self.graph.lock();
            let classes_live = g
                .labels
                .iter()
                .enumerate()
                .filter(|(i, (key, _, _))| {
                    matches!(key, NodeKey::Class(_)) && g.live_objects[*i] > 0
                })
                .count() as u64;
            let links = g.edges.len() as u64;
            let mut m = self.metrics.lock();
            m.samples += 1;
            m.class_live_sum += classes_live;
            m.class_live_max = m.class_live_max.max(classes_live);
            let live = m.obj_live.max(0) as u64;
            m.obj_live_sum += live;
            m.obj_live_max = m.obj_live_max.max(live);
            m.links_sum += links;
            m.links_max = m.links_max.max(links);
        }

        // Memory trigger state machine.
        let free = report.free_fraction();
        let pressured = free < self.trigger.low_free_fraction
            || (report.reclaimed_nothing() && free < self.trigger.barren_concern_fraction);
        if pressured {
            let streak = self.low_memory_streak.fetch_add(1, Ordering::SeqCst) + 1;
            if streak >= self.trigger.consecutive_reports as u64 {
                self.memory_triggered.store(true, Ordering::SeqCst);
            }
        } else {
            self.low_memory_streak.store(0, Ordering::SeqCst);
        }
        self.note_hook(hook_started);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_vm::{MethodDef, MethodId, Op, ProgramBuilder};

    fn program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let doc = b.add_class("Document");
        let arr = b.add_array_class("CharArray");
        let ui = b.add_class("Gui");
        b.add_method(main, MethodDef::new("main", vec![]));
        b.set_native_impl(ui);
        b.add_method(
            ui,
            MethodDef::new(
                "draw",
                vec![Op::Native {
                    kind: NativeKind::Framebuffer,
                    work_micros: 1,
                    arg_bytes: 8,
                    ret_bytes: 0,
                }],
            ),
        );
        let _ = (doc, arr);
        Arc::new(b.build(main, MethodId(0), 0, 0).unwrap())
    }

    fn monitor(object_granular: bool) -> Monitor {
        let p = program();
        let granular = if object_granular {
            [ClassId(2)].into_iter().collect()
        } else {
            HashSet::new()
        };
        Monitor::new(p, TriggerConfig::default(), granular)
    }

    fn interaction(caller: u32, callee: u32, bytes: u64, remote: bool) -> Interaction {
        Interaction {
            caller: ClassId(caller),
            callee: ClassId(callee),
            target: Some(ObjectId::client(99)),
            kind: InteractionKind::Invocation,
            bytes,
            remote,
        }
    }

    #[test]
    fn interactions_accumulate_into_edges() {
        let m = monitor(false);
        m.on_interaction(interaction(0, 1, 100, false));
        m.on_interaction(interaction(1, 0, 50, false));
        let (graph, keys) = m.snapshot();
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 1);
        let e = graph.edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(e.interactions, 2);
        assert_eq!(e.bytes, 150);
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn alloc_and_free_balance_memory() {
        let m = monitor(false);
        m.on_alloc(ClassId(1), ObjectId::client(0), 1_000);
        m.on_alloc(ClassId(1), ObjectId::client(1), 500);
        m.on_free(ClassId(1), 1, 500);
        let (graph, _) = m.snapshot();
        let node = graph.node_by_label("Document").unwrap();
        assert_eq!(graph.node(node).memory_bytes, 1_000);
        assert_eq!(graph.node(node).live_objects, 1);
    }

    #[test]
    fn native_classes_are_pinned_in_snapshot() {
        let m = monitor(false);
        m.on_alloc(ClassId(3), ObjectId::client(0), 100);
        let (graph, _) = m.snapshot();
        let gui = graph.node_by_label("Gui").unwrap();
        assert!(graph.node(gui).is_pinned());
    }

    #[test]
    fn work_is_attributed_exclusively() {
        let m = monitor(false);
        m.on_work(ClassId(0), 120.0);
        m.on_work(ClassId(1), 30.0);
        m.on_work(ClassId(0), 1.5);
        let (graph, _) = m.snapshot();
        let main = graph.node_by_label("Main").unwrap();
        let doc = graph.node_by_label("Document").unwrap();
        assert_eq!(graph.node(main).cpu_micros, 122);
        assert_eq!(graph.node(doc).cpu_micros, 30);
    }

    #[test]
    fn object_granular_classes_get_per_object_nodes() {
        let m = monitor(true);
        let a1 = ObjectId::client(10);
        let a2 = ObjectId::client(11);
        m.on_alloc(ClassId(2), a1, 40_000);
        m.on_alloc(ClassId(2), a2, 20_000);
        m.on_interaction(Interaction {
            caller: ClassId(1),
            callee: ClassId(2),
            target: Some(a1),
            kind: InteractionKind::FieldAccess,
            bytes: 64,
            remote: false,
        });
        let (graph, keys) = m.snapshot();
        // Two object nodes plus the Document caller node.
        assert_eq!(graph.node_count(), 3);
        let object_nodes = keys
            .iter()
            .filter(|k| matches!(k, NodeKey::Object(_)))
            .count();
        assert_eq!(object_nodes, 2);
        // The interaction edge attaches to a1's node, not a class node.
        let a1_node = keys.iter().position(|k| *k == NodeKey::Object(a1)).unwrap();
        assert!(graph.neighbors(NodeId(a1_node as u32)).next().is_some());
    }

    fn report(free_after: u64, freed: u64) -> GcReport {
        GcReport {
            cycle: 0,
            capacity: 1_000,
            used_after: 1_000 - free_after,
            free_after,
            freed_objects: freed,
            freed_bytes: freed * 10,
            duration_micros: 1.0,
        }
    }

    #[test]
    fn memory_trigger_needs_consecutive_pressure() {
        let m = monitor(false);
        // 3 consecutive low-memory reports (< 5% free).
        m.on_gc(&report(10, 5));
        m.on_gc(&report(10, 5));
        assert!(!m.memory_triggered());
        m.on_gc(&report(10, 5));
        assert!(m.memory_triggered());
    }

    #[test]
    fn healthy_cycle_resets_the_streak() {
        let m = monitor(false);
        m.on_gc(&report(10, 5));
        m.on_gc(&report(10, 5));
        m.on_gc(&report(500, 5)); // 50% free: healthy
        m.on_gc(&report(10, 5));
        m.on_gc(&report(10, 5));
        assert!(!m.memory_triggered());
        m.on_gc(&report(10, 5));
        assert!(m.memory_triggered());
        m.reset_memory_trigger();
        assert!(!m.memory_triggered());
    }

    #[test]
    fn barren_cycles_count_as_pressure_only_when_memory_is_tight() {
        let m = monitor(false);
        // Freed nothing but 20% free: healthy, not pressure.
        m.on_gc(&report(200, 0));
        m.on_gc(&report(200, 0));
        m.on_gc(&report(200, 0));
        assert!(!m.memory_triggered());
        // Freed nothing at 8% free (below the 10% concern level): pressure.
        m.on_gc(&report(80, 0));
        m.on_gc(&report(80, 0));
        m.on_gc(&report(80, 0));
        assert!(m.memory_triggered());
    }

    #[test]
    fn remote_stats_follow_remote_flags() {
        let m = monitor(false);
        m.on_interaction(interaction(0, 1, 100, true));
        m.on_interaction(interaction(0, 1, 100, false));
        m.on_native(ClassId(1), NativeKind::Framebuffer, 5, 8, true);
        m.on_native(ClassId(1), NativeKind::Math, 5, 8, false);
        m.on_static_access(ClassId(1), ClassId(0), 16, true);
        let r = m.remote_stats();
        assert_eq!(r.remote_interactions, 3);
        assert_eq!(r.remote_invocations, 2);
        assert_eq!(r.remote_native_calls, 1);
        assert_eq!(r.remote_static_accesses, 1);
        assert_eq!(r.remote_bytes, 124);
    }

    #[test]
    fn metrics_sample_at_gc_and_track_totals() {
        let m = monitor(false);
        m.on_alloc(ClassId(0), ObjectId::client(0), 100);
        m.on_alloc(ClassId(1), ObjectId::client(1), 100);
        m.on_interaction(interaction(0, 1, 10, false));
        m.on_gc(&report(500, 0));
        m.on_alloc(ClassId(1), ObjectId::client(2), 100);
        m.on_gc(&report(400, 0));
        let metrics = m.metrics();
        assert_eq!(metrics.samples, 2);
        assert_eq!(metrics.classes_total, 2);
        assert_eq!(metrics.objects_total, 3);
        assert_eq!(metrics.objects_max, 3);
        assert!((metrics.objects_avg - 2.5).abs() < 1e-9);
        assert_eq!(metrics.interaction_events, 1);
        assert!(metrics.graph_storage_bytes > 0);
    }

    #[test]
    fn work_accumulator_supports_periodic_evaluation() {
        let m = monitor(false);
        m.on_work(ClassId(0), 500.0);
        m.on_work(ClassId(0), 250.0);
        assert!((m.take_work_since_eval() - 750.0).abs() < 1e-9);
        assert_eq!(m.take_work_since_eval(), 0.0);
    }

    #[test]
    fn drained_deltas_rebuild_the_snapshot() {
        let m = monitor(false);
        m.on_alloc(ClassId(0), ObjectId::client(0), 1_000);
        m.on_interaction(interaction(0, 1, 100, false));
        m.on_work(ClassId(1), 30.4);

        let mut inc = aide_graph::IncrementalGraph::new();
        let (deltas, keys) = m.drain_deltas();
        inc.apply_all(&deltas);
        let (snap, snap_keys) = m.snapshot();
        assert_eq!(inc.graph(), &snap);
        assert_eq!(keys, snap_keys);

        // More activity: the next batch carries only the changes.
        m.on_free(ClassId(0), 1, 2_000); // negative balance clamps to zero
        m.on_interaction(interaction(0, 1, 50, false));
        m.on_alloc(ClassId(1), ObjectId::client(1), 500);
        let (deltas, _) = m.drain_deltas();
        assert_eq!(deltas.len(), 3, "two updates + one edge: {deltas:?}");
        inc.apply_all(&deltas);
        let (snap, _) = m.snapshot();
        assert_eq!(inc.graph(), &snap);
        assert!(inc.strengths_consistent());

        // Quiescent: the next drain is empty.
        let (deltas, _) = m.drain_deltas();
        assert!(deltas.is_empty());
    }

    #[test]
    fn drained_deltas_cover_object_granular_nodes() {
        let m = monitor(true);
        let a1 = ObjectId::client(10);
        m.on_alloc(ClassId(2), a1, 40_000);
        m.on_interaction(Interaction {
            caller: ClassId(1),
            callee: ClassId(2),
            target: Some(a1),
            kind: InteractionKind::FieldAccess,
            bytes: 64,
            remote: false,
        });
        let mut inc = aide_graph::IncrementalGraph::new();
        let (deltas, keys) = m.drain_deltas();
        inc.apply_all(&deltas);
        let (snap, snap_keys) = m.snapshot();
        assert_eq!(inc.graph(), &snap);
        assert_eq!(keys, snap_keys);
        assert!(keys.contains(&NodeKey::Object(a1)));
    }
}
