//! Identifier newtypes used throughout the virtual machine.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a class within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Returns the class id as a dense index into the program's class table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Identifies a method within its class's method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodId(pub u16);

impl MethodId {
    /// Returns the method id as a dense index into the class's method table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method#{}", self.0)
    }
}

/// A heap object identity, unique for the lifetime of a machine.
///
/// Object ids are never reused, so a dangling id can be detected rather than
/// silently aliased. The high bit records which VM created the object (the
/// paper: "new objects are always created on the VM that performs the
/// creation operation"), giving the two VMs of a distributed platform
/// disjoint id spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    const SURROGATE_BIT: u64 = 1 << 63;

    /// Builds the `n`-th object id minted by the client VM.
    #[inline]
    pub fn client(n: u64) -> Self {
        debug_assert_eq!(n & Self::SURROGATE_BIT, 0);
        ObjectId(n)
    }

    /// Builds the `n`-th object id minted by the surrogate VM.
    #[inline]
    pub fn surrogate(n: u64) -> Self {
        ObjectId(n | Self::SURROGATE_BIT)
    }

    /// Returns `true` if this id was minted by a surrogate VM.
    #[inline]
    pub fn minted_by_surrogate(self) -> bool {
        self.0 & Self::SURROGATE_BIT != 0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.minted_by_surrogate() {
            write!(f, "obj@s{}", self.0 & !Self::SURROGATE_BIT)
        } else {
            write!(f, "obj@c{}", self.0)
        }
    }
}

/// A register index within an interpreter frame.
///
/// Frames have [`Reg::COUNT`] object-reference registers; method arguments
/// are copied into the lowest registers on entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of registers in a frame.
    pub const COUNT: usize = 8;

    /// Returns the register as a frame-local index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if the register index is within [`Reg::COUNT`].
    #[inline]
    pub fn is_valid(self) -> bool {
        (self.0 as usize) < Reg::COUNT
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_sides_are_disjoint() {
        let c = ObjectId::client(7);
        let s = ObjectId::surrogate(7);
        assert_ne!(c, s);
        assert!(!c.minted_by_surrogate());
        assert!(s.minted_by_surrogate());
    }

    #[test]
    fn object_id_display_distinguishes_minting_side() {
        assert_eq!(ObjectId::client(3).to_string(), "obj@c3");
        assert_eq!(ObjectId::surrogate(3).to_string(), "obj@s3");
    }

    #[test]
    fn reg_validity() {
        assert!(Reg(0).is_valid());
        assert!(Reg(7).is_valid());
        assert!(!Reg(8).is_valid());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClassId(4).to_string(), "class#4");
        assert_eq!(MethodId(2).to_string(), "method#2");
        assert_eq!(Reg(5).to_string(), "r5");
    }
}
