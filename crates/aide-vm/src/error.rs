//! Error types for the virtual machine.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ClassId, MethodId, ObjectId, Reg};

/// Errors raised while loading or executing a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VmError {
    /// The heap could not satisfy an allocation even after garbage
    /// collection — the condition the paper's JavaNote experiment provokes
    /// with a 6 MB heap and a 600 KB document.
    OutOfMemory {
        /// The class being instantiated.
        class: ClassId,
        /// Bytes the allocation required.
        requested: u64,
        /// Bytes free after the final collection attempt.
        free: u64,
    },
    /// A class id referenced a class that does not exist in the program.
    UnknownClass(ClassId),
    /// A method id referenced a method absent from its class.
    UnknownMethod(ClassId, MethodId),
    /// An object id did not resolve to a live object on either VM.
    DanglingReference(ObjectId),
    /// An instruction read a register that holds no reference.
    NullRegister(Reg),
    /// A register index was outside the frame's register file.
    InvalidRegister(Reg),
    /// A reference-slot index was outside the target object's slot array.
    SlotOutOfRange {
        /// The object whose slots were indexed.
        object: ObjectId,
        /// The out-of-range slot index.
        slot: u16,
        /// The object's slot count.
        slots: u16,
    },
    /// A method was invoked on an object of a different class.
    ClassMismatch {
        /// Class the call site named.
        expected: ClassId,
        /// Class of the receiver object.
        found: ClassId,
    },
    /// Call recursion exceeded the interpreter's frame limit.
    CallDepthExceeded(usize),
    /// A remote operation failed (link closed, peer panicked, ...).
    RemoteFailure(String),
    /// The program failed validation before execution.
    InvalidProgram(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory {
                class,
                requested,
                free,
            } => write!(
                f,
                "out of memory allocating {requested} bytes for {class} ({free} bytes free after GC)"
            ),
            VmError::UnknownClass(c) => write!(f, "unknown class {c}"),
            VmError::UnknownMethod(c, m) => write!(f, "unknown method {m} on {c}"),
            VmError::DanglingReference(o) => write!(f, "dangling object reference {o}"),
            VmError::NullRegister(r) => write!(f, "register {r} holds no reference"),
            VmError::InvalidRegister(r) => write!(f, "register {r} is out of range"),
            VmError::SlotOutOfRange {
                object,
                slot,
                slots,
            } => write!(f, "slot {slot} out of range for {object} ({slots} slots)"),
            VmError::ClassMismatch { expected, found } => {
                write!(f, "receiver class mismatch: expected {expected}, found {found}")
            }
            VmError::CallDepthExceeded(d) => write!(f, "call depth exceeded {d} frames"),
            VmError::RemoteFailure(msg) => write!(f, "remote operation failed: {msg}"),
            VmError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl Error for VmError {}

/// Convenience alias for VM results.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_trailing_punctuation() {
        let cases: Vec<VmError> = vec![
            VmError::OutOfMemory {
                class: ClassId(1),
                requested: 600_000,
                free: 12,
            },
            VmError::UnknownClass(ClassId(9)),
            VmError::UnknownMethod(ClassId(1), MethodId(2)),
            VmError::DanglingReference(ObjectId::client(4)),
            VmError::NullRegister(Reg(3)),
            VmError::InvalidRegister(Reg(200)),
            VmError::SlotOutOfRange {
                object: ObjectId::client(1),
                slot: 5,
                slots: 2,
            },
            VmError::ClassMismatch {
                expected: ClassId(0),
                found: ClassId(1),
            },
            VmError::CallDepthExceeded(512),
            VmError::RemoteFailure("link closed".into()),
            VmError::InvalidProgram("no classes".into()),
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "{s:?} ends with a period");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s:?}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmError>();
    }
}
