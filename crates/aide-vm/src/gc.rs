//! Mark-and-sweep garbage collection.
//!
//! Chai (and hence the paper's prototype) uses an incremental mark-and-sweep
//! collector triggered by space limitations, the number of objects created
//! since the last collection, and the amount of memory occupied by objects
//! created since the last collection — causing "at least a partial sweep
//! often, which produces frequent memory usage updates" (§5.1). Those
//! frequent [`GcReport`]s are exactly what AIDE's trigger policy consumes.
//!
//! References into the *other* VM's heap (cross-VM references created by
//! offloading) are not traced here; they are handled by the distributed
//! garbage collection scheme: exported objects are pinned via an external
//! root table until the peer releases them.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::heap::Heap;
use crate::ids::{ClassId, ObjectId};

/// Collector trigger configuration (the paper's three triggers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Collect after this many allocations since the last cycle.
    pub trigger_alloc_count: u64,
    /// Collect after this many bytes allocated since the last cycle.
    pub trigger_alloc_bytes: u64,
    /// Virtual microseconds of client CPU charged per object examined.
    pub cost_micros_per_object: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            trigger_alloc_count: 500,
            trigger_alloc_bytes: 256 * 1024,
            cost_micros_per_object: 0.05,
        }
    }
}

/// The result of one collection cycle — the "memory usage update" consumed
/// by AIDE's resource monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcReport {
    /// Monotonic cycle number (per collector).
    pub cycle: u64,
    /// Heap capacity in bytes.
    pub capacity: u64,
    /// Bytes in use after the cycle.
    pub used_after: u64,
    /// Bytes free after the cycle.
    pub free_after: u64,
    /// Objects reclaimed by this cycle.
    pub freed_objects: u64,
    /// Bytes reclaimed by this cycle.
    pub freed_bytes: u64,
    /// Virtual microseconds the cycle cost.
    pub duration_micros: f64,
}

impl GcReport {
    /// Fraction of the heap free after this cycle, in `[0, 1]`.
    pub fn free_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.free_after as f64 / self.capacity as f64
        }
    }

    /// Returns `true` if the cycle failed to reclaim anything.
    pub fn reclaimed_nothing(&self) -> bool {
        self.freed_objects == 0
    }
}

/// A per-VM mark-and-sweep collector with allocation-triggered cycles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collector {
    config: GcConfig,
    cycle: u64,
    allocs_since: u64,
    bytes_since: u64,
    /// Objects freed per class over the collector's lifetime, for monitor
    /// bookkeeping (the monitor subtracts freed bytes from node weights).
    /// Ordered so per-class free events are emitted deterministically
    /// (class-id order), which golden event-stream fixtures rely on.
    #[serde(skip)]
    last_freed_by_class: BTreeMap<ClassId, (u64, u64)>,
}

impl Collector {
    /// Creates a collector with the given configuration.
    pub fn new(config: GcConfig) -> Self {
        Collector {
            config,
            cycle: 0,
            allocs_since: 0,
            bytes_since: 0,
            last_freed_by_class: BTreeMap::new(),
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> GcConfig {
        self.config
    }

    /// Number of completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Notes an allocation so trigger thresholds can fire.
    pub fn note_alloc(&mut self, bytes: u64) {
        self.allocs_since += 1;
        self.bytes_since += bytes;
    }

    /// Returns `true` if a trigger threshold has been crossed and a cycle
    /// should run at the next safe point.
    pub fn should_collect(&self) -> bool {
        self.allocs_since >= self.config.trigger_alloc_count
            || self.bytes_since >= self.config.trigger_alloc_bytes
    }

    /// `(objects, bytes)` freed per class by the most recent cycle, in
    /// class-id order.
    pub fn last_freed_by_class(&self) -> &BTreeMap<ClassId, (u64, u64)> {
        &self.last_freed_by_class
    }

    /// Runs a full mark-and-sweep cycle.
    ///
    /// `roots` are the mutator's live references (frame registers, the entry
    /// object); `external_roots` are objects exported to the peer VM, which
    /// must survive even if locally unreachable. References to objects that
    /// are not in this heap (i.e. living on the peer) are ignored by the
    /// marker.
    pub fn collect<R, E>(&mut self, heap: &mut Heap, roots: R, external_roots: E) -> GcReport
    where
        R: IntoIterator<Item = ObjectId>,
        E: IntoIterator<Item = ObjectId>,
    {
        self.cycle += 1;
        self.allocs_since = 0;
        self.bytes_since = 0;
        let mut gc_span = aide_trace::span(aide_trace::names::VM_GC, "vm");
        gc_span.arg("cycle", self.cycle);

        // Mark.
        let mut marked: HashMap<ObjectId, ()> = HashMap::new();
        let mut worklist: Vec<ObjectId> = Vec::new();
        for id in roots.into_iter().chain(external_roots) {
            if heap.contains(id) && marked.insert(id, ()).is_none() {
                worklist.push(id);
            }
        }
        let mut examined: u64 = 0;
        while let Some(id) = worklist.pop() {
            examined += 1;
            let record = heap.get(id).expect("marked object is live");
            for slot in record.slots.iter().flatten() {
                if heap.contains(*slot) && marked.insert(*slot, ()).is_none() {
                    worklist.push(*slot);
                }
            }
        }

        // Sweep.
        let dead: Vec<ObjectId> = heap.ids().filter(|id| !marked.contains_key(id)).collect();
        examined += dead.len() as u64;
        let mut freed_objects = 0u64;
        let mut freed_bytes = 0u64;
        self.last_freed_by_class.clear();
        for id in dead {
            let record = heap.sweep(id).expect("dead object was live");
            let footprint = record.footprint();
            freed_objects += 1;
            freed_bytes += footprint;
            let entry = self.last_freed_by_class.entry(record.class).or_default();
            entry.0 += 1;
            entry.1 += footprint;
        }

        let report = GcReport {
            cycle: self.cycle,
            capacity: heap.capacity(),
            used_after: heap.stats().used_bytes,
            free_after: heap.free_bytes(),
            freed_objects,
            freed_bytes,
            duration_micros: examined as f64 * self.config.cost_micros_per_object,
        };

        // Telemetry is resolved per cycle rather than cached: collections
        // are rare relative to allocations, and the collector must remain
        // serializable.
        let telemetry = aide_telemetry::global();
        telemetry.counter(aide_telemetry::names::GC_CYCLES).inc();
        telemetry
            .counter(aide_telemetry::names::GC_FREED_BYTES)
            .add(report.freed_bytes);
        telemetry
            .histogram(
                aide_telemetry::names::GC_PAUSE_MICROS,
                aide_telemetry::buckets::DURATION_MICROS,
            )
            .observe(report.duration_micros as u64);
        telemetry
            .gauge(aide_telemetry::names::HEAP_USED_BYTES)
            .set(report.used_after as i64);
        telemetry
            .gauge(aide_telemetry::names::HEAP_FREE_BYTES)
            .set(report.free_after as i64);
        gc_span.arg("freed_bytes", report.freed_bytes);
        gc_span.arg("freed_objects", report.freed_objects);

        report
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new(GcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::ObjectRecord;

    fn obj(class: u32, bytes: u32, slots: u16) -> ObjectRecord {
        ObjectRecord::new(ClassId(class), bytes, slots)
    }

    #[test]
    fn unreachable_objects_are_reclaimed() {
        let mut heap = Heap::new(10_000);
        let root = ObjectId::client(0);
        let garbage = ObjectId::client(1);
        heap.insert(root, obj(0, 10, 0)).unwrap();
        heap.insert(garbage, obj(1, 500, 0)).unwrap();

        let mut gc = Collector::default();
        let report = gc.collect(&mut heap, [root], []);
        assert_eq!(report.freed_objects, 1);
        assert_eq!(report.freed_bytes, 516);
        assert!(heap.contains(root));
        assert!(!heap.contains(garbage));
        assert_eq!(gc.last_freed_by_class()[&ClassId(1)], (1, 516));
    }

    #[test]
    fn reachable_chain_survives() {
        let mut heap = Heap::new(10_000);
        let a = ObjectId::client(0);
        let b = ObjectId::client(1);
        let c = ObjectId::client(2);
        let mut ra = obj(0, 0, 1);
        ra.slots[0] = Some(b);
        let mut rb = obj(0, 0, 1);
        rb.slots[0] = Some(c);
        heap.insert(a, ra).unwrap();
        heap.insert(b, rb).unwrap();
        heap.insert(c, obj(0, 0, 0)).unwrap();

        let mut gc = Collector::default();
        let report = gc.collect(&mut heap, [a], []);
        assert_eq!(report.freed_objects, 0);
        assert!(report.reclaimed_nothing());
        assert!(heap.contains(a) && heap.contains(b) && heap.contains(c));
    }

    #[test]
    fn cycles_are_collected() {
        let mut heap = Heap::new(10_000);
        let a = ObjectId::client(0);
        let b = ObjectId::client(1);
        let mut ra = obj(0, 0, 1);
        ra.slots[0] = Some(b);
        let mut rb = obj(0, 0, 1);
        rb.slots[0] = Some(a);
        heap.insert(a, ra).unwrap();
        heap.insert(b, rb).unwrap();

        let mut gc = Collector::default();
        // No roots: the cycle a <-> b must die despite mutual references.
        let report = gc.collect(&mut heap, [], []);
        assert_eq!(report.freed_objects, 2);
        assert_eq!(heap.stats().live_objects, 0);
    }

    #[test]
    fn external_roots_pin_exported_objects() {
        let mut heap = Heap::new(10_000);
        let exported = ObjectId::client(0);
        heap.insert(exported, obj(0, 100, 0)).unwrap();

        let mut gc = Collector::default();
        let report = gc.collect(&mut heap, [], [exported]);
        assert_eq!(report.freed_objects, 0);
        assert!(heap.contains(exported));

        // Once the peer releases it, the object dies.
        let report = gc.collect(&mut heap, [], []);
        assert_eq!(report.freed_objects, 1);
    }

    #[test]
    fn cross_vm_references_are_ignored_by_marking() {
        let mut heap = Heap::new(10_000);
        let local = ObjectId::client(0);
        let mut rec = obj(0, 0, 1);
        // Points at a surrogate-side object this heap has never seen.
        rec.slots[0] = Some(ObjectId::surrogate(99));
        heap.insert(local, rec).unwrap();

        let mut gc = Collector::default();
        let report = gc.collect(&mut heap, [local], []);
        assert_eq!(report.freed_objects, 0);
        assert!(heap.contains(local));
    }

    #[test]
    fn triggers_fire_on_count_and_bytes() {
        let mut gc = Collector::new(GcConfig {
            trigger_alloc_count: 3,
            trigger_alloc_bytes: 1_000,
            cost_micros_per_object: 0.1,
        });
        assert!(!gc.should_collect());
        gc.note_alloc(10);
        gc.note_alloc(10);
        assert!(!gc.should_collect());
        gc.note_alloc(10);
        assert!(gc.should_collect(), "count trigger");

        let mut heap = Heap::new(10_000);
        gc.collect(&mut heap, [], []);
        assert!(!gc.should_collect(), "collection resets counters");

        gc.note_alloc(2_000);
        assert!(gc.should_collect(), "bytes trigger");
    }

    #[test]
    fn report_free_fraction() {
        let mut heap = Heap::new(1_000);
        heap.insert(ObjectId::client(0), obj(0, 234, 0)).unwrap();
        let mut gc = Collector::default();
        let report = gc.collect(&mut heap, [ObjectId::client(0)], []);
        assert_eq!(report.used_after, 250);
        assert_eq!(report.free_after, 750);
        assert!((report.free_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(report.cycle, 1);
    }

    #[test]
    fn duration_scales_with_examined_objects() {
        let mut heap = Heap::new(100_000);
        for i in 0..50 {
            heap.insert(ObjectId::client(i), obj(0, 8, 0)).unwrap();
        }
        let mut gc = Collector::default();
        let roots: Vec<ObjectId> = (0..10).map(ObjectId::client).collect();
        let report = gc.collect(&mut heap, roots, []);
        // 10 marked + 40 swept = 50 examined.
        assert!((report.duration_micros - 50.0 * 0.05).abs() < 1e-9);
        assert_eq!(report.freed_objects, 40);
    }
}
