//! The object heap.
//!
//! Each VM owns a bounded heap of objects. An object carries its class, a
//! scalar payload size (primitive fields and array data are modelled by
//! size, not content), and an array of object-reference slots that form the
//! object graph traced by the garbage collector.
//!
//! The heap also supports *removal* and *insertion* of whole objects, which
//! is how the offloading machinery migrates objects between the client and
//! surrogate VMs.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{VmError, VmResult};
use crate::ids::{ClassId, ObjectId};

/// A heap object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectRecord {
    /// The object's class.
    pub class: ClassId,
    /// Scalar payload size in bytes.
    pub scalar_bytes: u32,
    /// Object-reference slots (the traced part of the object).
    pub slots: Vec<Option<ObjectId>>,
}

impl ObjectRecord {
    /// Creates an object with empty slots.
    pub fn new(class: ClassId, scalar_bytes: u32, ref_slots: u16) -> Self {
        ObjectRecord {
            class,
            scalar_bytes,
            slots: vec![None; ref_slots as usize],
        }
    }

    /// Total heap footprint of the object in bytes: header, scalar payload,
    /// and one word per reference slot.
    pub fn footprint(&self) -> u64 {
        Self::footprint_of(self.scalar_bytes, self.slots.len() as u16)
    }

    /// Footprint of an object with the given shape, without building it.
    pub fn footprint_of(scalar_bytes: u32, ref_slots: u16) -> u64 {
        const HEADER_BYTES: u64 = 16;
        const SLOT_BYTES: u64 = 8;
        HEADER_BYTES + scalar_bytes as u64 + SLOT_BYTES * ref_slots as u64
    }
}

/// Running statistics maintained by a [`Heap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Bytes currently occupied by live objects.
    pub used_bytes: u64,
    /// Number of live objects.
    pub live_objects: u64,
    /// Total objects ever allocated (monotonic).
    pub total_allocated: u64,
    /// Total bytes ever allocated (monotonic).
    pub total_allocated_bytes: u64,
    /// Total objects freed by the collector (monotonic).
    pub total_freed: u64,
    /// Objects migrated out to a peer VM (monotonic).
    pub migrated_out: u64,
    /// Objects migrated in from a peer VM (monotonic).
    pub migrated_in: u64,
}

/// A bounded heap of traced objects.
///
/// # Examples
///
/// ```
/// use aide_vm::{Heap, ObjectRecord, ClassId, ObjectId};
///
/// let mut heap = Heap::new(1_000_000);
/// let id = ObjectId::client(0);
/// heap.insert(id, ObjectRecord::new(ClassId(0), 128, 2))?;
/// assert!(heap.contains(id));
/// assert_eq!(heap.stats().live_objects, 1);
/// # Ok::<(), aide_vm::VmError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heap {
    capacity: u64,
    objects: HashMap<ObjectId, ObjectRecord>,
    stats: HeapStats,
    /// Bumped on every migration in or out. The interpreter's inline
    /// caches stamp cached locality decisions with this epoch, so one bump
    /// invalidates every cached "this reference is local" answer at once —
    /// a migrated object must never be served from a stale cache entry.
    /// Allocation and GC do *not* bump it: fresh ids have never been
    /// cached, freed ids are unreachable, and ids are never reused.
    #[serde(default)]
    locality_epoch: u64,
}

impl Heap {
    /// Creates a heap with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Heap {
            capacity,
            objects: HashMap::new(),
            stats: HeapStats::default(),
            locality_epoch: 0,
        }
    }

    /// The current locality epoch (see the field docs: bumped only by
    /// migration, compared by inline-cache entries).
    #[inline]
    pub fn locality_epoch(&self) -> u64 {
        self.locality_epoch
    }

    /// The heap's capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently free.
    #[inline]
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.stats.used_bytes
    }

    /// Fraction of the heap currently free, in `[0, 1]`.
    pub fn free_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.free_bytes() as f64 / self.capacity as f64
        }
    }

    /// Running statistics.
    #[inline]
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Returns `true` if `id` is live in this heap.
    #[inline]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Returns `true` if an object of the given shape would fit right now.
    pub fn fits(&self, scalar_bytes: u32, ref_slots: u16) -> bool {
        ObjectRecord::footprint_of(scalar_bytes, ref_slots) <= self.free_bytes()
    }

    /// Inserts a newly created (or migrated-in) object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if the object does not fit. The
    /// caller is expected to garbage-collect and retry before treating this
    /// as fatal.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already live in this heap (ids are never reused).
    pub fn insert(&mut self, id: ObjectId, record: ObjectRecord) -> VmResult<()> {
        let footprint = record.footprint();
        if footprint > self.free_bytes() {
            return Err(VmError::OutOfMemory {
                class: record.class,
                requested: footprint,
                free: self.free_bytes(),
            });
        }
        self.stats.used_bytes += footprint;
        self.stats.live_objects += 1;
        self.stats.total_allocated += 1;
        self.stats.total_allocated_bytes += footprint;
        let prev = self.objects.insert(id, record);
        assert!(prev.is_none(), "object id {id} reused");
        Ok(())
    }

    /// Immutable access to an object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `id` is not live here.
    pub fn get(&self, id: ObjectId) -> VmResult<&ObjectRecord> {
        self.objects.get(&id).ok_or(VmError::DanglingReference(id))
    }

    /// Mutable access to an object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `id` is not live here.
    pub fn get_mut(&mut self, id: ObjectId) -> VmResult<&mut ObjectRecord> {
        self.objects
            .get_mut(&id)
            .ok_or(VmError::DanglingReference(id))
    }

    /// Removes an object as part of garbage collection, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `id` is not live here.
    pub fn sweep(&mut self, id: ObjectId) -> VmResult<ObjectRecord> {
        let record = self
            .objects
            .remove(&id)
            .ok_or(VmError::DanglingReference(id))?;
        self.stats.used_bytes -= record.footprint();
        self.stats.live_objects -= 1;
        self.stats.total_freed += 1;
        Ok(record)
    }

    /// Removes an object for migration to a peer VM, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `id` is not live here.
    pub fn migrate_out(&mut self, id: ObjectId) -> VmResult<ObjectRecord> {
        let record = self
            .objects
            .remove(&id)
            .ok_or(VmError::DanglingReference(id))?;
        self.stats.used_bytes -= record.footprint();
        self.stats.live_objects -= 1;
        self.stats.migrated_out += 1;
        self.locality_epoch += 1;
        Ok(record)
    }

    /// Inserts an object migrated in from a peer VM.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::OutOfMemory`] if the object does not fit.
    pub fn migrate_in(&mut self, id: ObjectId, record: ObjectRecord) -> VmResult<()> {
        let footprint = record.footprint();
        if footprint > self.free_bytes() {
            return Err(VmError::OutOfMemory {
                class: record.class,
                requested: footprint,
                free: self.free_bytes(),
            });
        }
        self.stats.used_bytes += footprint;
        self.stats.live_objects += 1;
        self.stats.migrated_in += 1;
        self.locality_epoch += 1;
        let prev = self.objects.insert(id, record);
        assert!(prev.is_none(), "object id {id} reused");
        Ok(())
    }

    /// Iterates over `(ObjectId, &ObjectRecord)` for all live objects, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectRecord)> {
        self.objects.iter().map(|(&id, rec)| (id, rec))
    }

    /// All live object ids, in unspecified order.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }

    /// Bytes of live objects per class (used to annotate graph nodes and to
    /// pick offload victims).
    pub fn bytes_by_class(&self) -> HashMap<ClassId, u64> {
        let mut out: HashMap<ClassId, u64> = HashMap::new();
        for rec in self.objects.values() {
            *out.entry(rec.class).or_default() += rec.footprint();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(class: u32, bytes: u32, slots: u16) -> ObjectRecord {
        ObjectRecord::new(ClassId(class), bytes, slots)
    }

    #[test]
    fn footprint_includes_header_and_slots() {
        let r = obj(0, 100, 3);
        assert_eq!(r.footprint(), 16 + 100 + 24);
    }

    #[test]
    fn insert_tracks_usage() {
        let mut h = Heap::new(10_000);
        h.insert(ObjectId::client(0), obj(0, 84, 0)).unwrap();
        assert_eq!(h.stats().used_bytes, 100);
        assert_eq!(h.free_bytes(), 9_900);
        assert!((h.free_fraction() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn insert_rejects_overflow() {
        let mut h = Heap::new(100);
        let err = h.insert(ObjectId::client(0), obj(3, 200, 0)).unwrap_err();
        match err {
            VmError::OutOfMemory {
                class,
                requested,
                free,
            } => {
                assert_eq!(class, ClassId(3));
                assert_eq!(requested, 216);
                assert_eq!(free, 100);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(h.stats().live_objects, 0);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn insert_panics_on_id_reuse() {
        let mut h = Heap::new(10_000);
        h.insert(ObjectId::client(0), obj(0, 1, 0)).unwrap();
        let _ = h.insert(ObjectId::client(0), obj(0, 1, 0));
    }

    #[test]
    fn sweep_releases_memory() {
        let mut h = Heap::new(1_000);
        let id = ObjectId::client(1);
        h.insert(id, obj(0, 84, 0)).unwrap();
        let rec = h.sweep(id).unwrap();
        assert_eq!(rec.scalar_bytes, 84);
        assert_eq!(h.stats().used_bytes, 0);
        assert_eq!(h.stats().total_freed, 1);
        assert!(!h.contains(id));
        assert!(matches!(h.sweep(id), Err(VmError::DanglingReference(_))));
    }

    #[test]
    fn migration_round_trip_preserves_object() {
        let mut client = Heap::new(1_000);
        let mut surrogate = Heap::new(1_000);
        let id = ObjectId::client(7);
        let mut rec = obj(2, 50, 2);
        rec.slots[0] = Some(ObjectId::client(9));
        client.insert(id, rec.clone()).unwrap();

        let out = client.migrate_out(id).unwrap();
        assert_eq!(out, rec);
        assert_eq!(client.stats().migrated_out, 1);
        assert_eq!(client.stats().used_bytes, 0);

        surrogate.migrate_in(id, out).unwrap();
        assert_eq!(surrogate.stats().migrated_in, 1);
        assert_eq!(surrogate.get(id).unwrap(), &rec);
    }

    #[test]
    fn migrate_in_respects_capacity() {
        let mut h = Heap::new(10);
        let err = h.migrate_in(ObjectId::surrogate(0), obj(0, 100, 0));
        assert!(matches!(err, Err(VmError::OutOfMemory { .. })));
    }

    #[test]
    fn bytes_by_class_groups_footprints() {
        let mut h = Heap::new(10_000);
        h.insert(ObjectId::client(0), obj(1, 84, 0)).unwrap();
        h.insert(ObjectId::client(1), obj(1, 184, 0)).unwrap();
        h.insert(ObjectId::client(2), obj(2, 4, 1)).unwrap();
        let by_class = h.bytes_by_class();
        assert_eq!(by_class[&ClassId(1)], 100 + 200);
        assert_eq!(by_class[&ClassId(2)], 16 + 4 + 8);
    }

    #[test]
    fn fits_predicts_insertion() {
        let mut h = Heap::new(150);
        assert!(h.fits(100, 0)); // 116 <= 150
        h.insert(ObjectId::client(0), obj(0, 100, 0)).unwrap();
        assert!(!h.fits(100, 0));
        assert!(h.fits(10, 0)); // 26 <= 34
    }

    #[test]
    fn zero_capacity_heap_free_fraction_is_zero() {
        let h = Heap::new(0);
        assert_eq!(h.free_fraction(), 0.0);
    }

    #[test]
    fn get_mut_allows_slot_updates() {
        let mut h = Heap::new(1_000);
        let id = ObjectId::client(0);
        h.insert(id, obj(0, 0, 2)).unwrap();
        h.get_mut(id).unwrap().slots[1] = Some(ObjectId::client(5));
        assert_eq!(h.get(id).unwrap().slots[1], Some(ObjectId::client(5)));
    }
}
