//! Programs: classes, methods, and the instruction set.
//!
//! Applications executed by the VM are expressed in a small intermediate
//! representation in which *every* method invocation, data-field access,
//! object creation, and native call is an explicit, observable instruction.
//! This is the property the paper obtains by modifying the Chai JVM — and
//! the property plain Rust code cannot offer, because statically compiled
//! field accesses cannot be intercepted or redirected at run time.

use serde::{Deserialize, Serialize};

use crate::error::{VmError, VmResult};
use crate::ids::{ClassId, MethodId, Reg};
use crate::natives::NativeKind;

/// One instruction of a method body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Op {
    /// Burn `micros` microseconds of client-speed CPU, attributed to the
    /// executing class (exclusive time, Figure 9).
    Work {
        /// Microseconds of client-speed CPU time.
        micros: u32,
    },
    /// Allocate an object and store the reference in `dst`.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// Scalar payload size in bytes (primitive fields, array data).
        scalar_bytes: u32,
        /// Number of object-reference slots.
        ref_slots: u16,
        /// Destination register for the new reference.
        dst: Reg,
    },
    /// Invoke `method` on the object in `obj`. The callee's frame receives
    /// copies of the `args` registers in its lowest registers and the
    /// receiver as `self`. `arg_bytes`/`ret_bytes` model parameter and
    /// return-value payload sizes for interaction accounting.
    Call {
        /// Register holding the receiver.
        obj: Reg,
        /// Class the call site is compiled against (receiver must match).
        class: ClassId,
        /// Method index within `class`.
        method: MethodId,
        /// Bytes of parameters passed.
        arg_bytes: u32,
        /// Bytes of return value produced.
        ret_bytes: u32,
        /// Reference arguments copied into the callee's registers.
        args: Vec<Reg>,
    },
    /// Invoke a static (class) method. Static methods written in the managed
    /// language execute locally on whichever VM invokes them (paper §4).
    CallStatic {
        /// Class owning the static method.
        class: ClassId,
        /// Method index within `class`.
        method: MethodId,
        /// Bytes of parameters passed.
        arg_bytes: u32,
        /// Bytes of return value produced.
        ret_bytes: u32,
        /// Reference arguments copied into the callee's registers.
        args: Vec<Reg>,
    },
    /// Read `bytes` of scalar data from the object in `obj` (a data-field
    /// access; becomes a remote access if the object lives on the other VM).
    Read {
        /// Register holding the target object.
        obj: Reg,
        /// Bytes read.
        bytes: u32,
    },
    /// Write `bytes` of scalar data to the object in `obj`.
    Write {
        /// Register holding the target object.
        obj: Reg,
        /// Bytes written.
        bytes: u32,
    },
    /// Copy a reference out of one of `self`'s reference slots.
    GetSlot {
        /// Slot index within the receiver.
        slot: u16,
        /// Destination register.
        dst: Reg,
    },
    /// Store a register into one of `self`'s reference slots.
    PutSlot {
        /// Slot index within the receiver.
        slot: u16,
        /// Source register (may be null to clear the slot).
        src: Reg,
    },
    /// Copy a reference out of a slot of the object in `obj`.
    GetSlotOf {
        /// Register holding the object whose slot is read.
        obj: Reg,
        /// Slot index.
        slot: u16,
        /// Destination register.
        dst: Reg,
    },
    /// Store a register into a slot of the object in `obj`.
    PutSlotOf {
        /// Register holding the object whose slot is written.
        obj: Reg,
        /// Slot index.
        slot: u16,
        /// Source register.
        src: Reg,
    },
    /// Invoke a native method of the given kind. Client-bound natives
    /// execute on the client even when invoked from the surrogate.
    Native {
        /// What kind of native this is (decides where it may run).
        kind: NativeKind,
        /// Microseconds of client-speed CPU the native itself burns.
        work_micros: u32,
        /// Bytes of parameters passed.
        arg_bytes: u32,
        /// Bytes of results returned.
        ret_bytes: u32,
    },
    /// Read `bytes` from a class's static data (always served by the client
    /// VM to keep static state consistent — paper §3.2).
    GetStatic {
        /// Class owning the static data.
        class: ClassId,
        /// Bytes read.
        bytes: u32,
    },
    /// Write `bytes` to a class's static data.
    PutStatic {
        /// Class owning the static data.
        class: ClassId,
        /// Bytes written.
        bytes: u32,
    },
    /// Clear a register, dropping the reference it holds.
    Clear {
        /// Register to clear.
        reg: Reg,
    },
    /// Execute `body` `n` times.
    Repeat {
        /// Iteration count.
        n: u32,
        /// Instructions executed per iteration.
        body: Vec<Op>,
    },
}

/// A method definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Human-readable method name.
    pub name: String,
    /// `true` for static (class) methods, which execute with no receiver.
    pub is_static: bool,
    /// The method body.
    pub body: Vec<Op>,
}

impl MethodDef {
    /// Creates an instance method.
    pub fn new(name: impl Into<String>, body: Vec<Op>) -> Self {
        MethodDef {
            name: name.into(),
            is_static: false,
            body,
        }
    }

    /// Creates a static method.
    pub fn new_static(name: impl Into<String>, body: Vec<Op>) -> Self {
        MethodDef {
            name: name.into(),
            is_static: true,
            body,
        }
    }
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Human-readable class name.
    pub name: String,
    /// Methods, indexed by [`MethodId`].
    pub methods: Vec<MethodDef>,
    /// Bytes of static data the class owns (pins consistency to the client).
    pub static_bytes: u32,
    /// `true` if objects of this class are primitive arrays, eligible for
    /// the paper's object-granularity placement enhancement (§5.2 "Array").
    pub is_primitive_array: bool,
    /// `true` if the class itself is *implemented with* native methods
    /// (widget toolkits, framebuffer wrappers, host-state accessors). Such
    /// classes cannot be offloaded and are pinned to the client (§3.3).
    ///
    /// Note the distinction from a class that merely *invokes* natives
    /// (`Op::Native`): invoking `Math.sin` does not pin the caller — the
    /// call is simply directed to the client at run time (§3.2), which is
    /// precisely the overhead Figures 8 and 10 measure.
    pub native_impl: bool,
}

impl ClassDef {
    /// Creates a class with no methods.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            methods: Vec::new(),
            static_bytes: 0,
            is_primitive_array: false,
            native_impl: false,
        }
    }

    /// Returns `true` if any method body *invokes* a native function.
    /// This does not pin the class (see [`ClassDef::native_impl`]); it is
    /// metadata for workload analysis.
    pub fn calls_natives(&self) -> bool {
        fn scan(ops: &[Op]) -> bool {
            ops.iter().any(|op| match op {
                Op::Native { .. } => true,
                Op::Repeat { body, .. } => scan(body),
                _ => false,
            })
        }
        self.methods.iter().any(|m| scan(&m.body))
    }

    /// Returns `true` if any native invocation in this class is of a kind
    /// that is *not* stateless (those always execute on the client).
    pub fn calls_stateful_natives(&self) -> bool {
        fn scan(ops: &[Op]) -> bool {
            ops.iter().any(|op| match op {
                Op::Native { kind, .. } => !kind.is_stateless(),
                Op::Repeat { body, .. } => scan(body),
                _ => false,
            })
        }
        self.methods.iter().any(|m| scan(&m.body))
    }
}

/// Description of the root object instantiated to run the program entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryPoint {
    /// Class of the entry object.
    pub class: ClassId,
    /// Entry method invoked on the entry object.
    pub method: MethodId,
    /// Scalar payload of the entry object.
    pub scalar_bytes: u32,
    /// Reference slots of the entry object.
    pub ref_slots: u16,
}

/// A complete program: a class table plus an entry point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    classes: Vec<ClassDef>,
    entry: EntryPoint,
}

impl Program {
    /// Assembles and validates a program.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidProgram`] if the entry point or any
    /// instruction references a class, method, or register that does not
    /// exist.
    pub fn new(classes: Vec<ClassDef>, entry: EntryPoint) -> VmResult<Self> {
        let p = Program { classes, entry };
        p.validate()?;
        Ok(p)
    }

    /// The program's classes, indexed by [`ClassId`].
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Looks up a class definition.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownClass`] for an out-of-range id.
    pub fn class(&self, id: ClassId) -> VmResult<&ClassDef> {
        self.classes
            .get(id.index())
            .ok_or(VmError::UnknownClass(id))
    }

    /// Looks up a method definition.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownClass`] or [`VmError::UnknownMethod`].
    pub fn method(&self, class: ClassId, method: MethodId) -> VmResult<&MethodDef> {
        self.class(class)?
            .methods
            .get(method.index())
            .ok_or(VmError::UnknownMethod(class, method))
    }

    /// The entry point.
    pub fn entry(&self) -> EntryPoint {
        self.entry
    }

    /// Number of classes in the program.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Finds a class id by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    fn validate(&self) -> VmResult<()> {
        if self.classes.is_empty() {
            return Err(VmError::InvalidProgram("program has no classes".into()));
        }
        if self.entry.class.index() >= self.classes.len() {
            return Err(VmError::InvalidProgram(format!(
                "entry class {} out of range",
                self.entry.class
            )));
        }
        let entry_class = &self.classes[self.entry.class.index()];
        if self.entry.method.index() >= entry_class.methods.len() {
            return Err(VmError::InvalidProgram(format!(
                "entry method {} out of range for {}",
                self.entry.method, entry_class.name
            )));
        }
        for (ci, class) in self.classes.iter().enumerate() {
            for (mi, m) in class.methods.iter().enumerate() {
                self.validate_ops(&m.body).map_err(|e| {
                    VmError::InvalidProgram(format!(
                        "{}::{} (class {ci}, method {mi}): {e}",
                        class.name, m.name
                    ))
                })?;
            }
        }
        Ok(())
    }

    fn validate_ops(&self, ops: &[Op]) -> Result<(), String> {
        let check_reg = |r: Reg| {
            if r.is_valid() {
                Ok(())
            } else {
                Err(format!("register {r} out of range"))
            }
        };
        let check_class = |c: ClassId| {
            if c.index() < self.classes.len() {
                Ok(())
            } else {
                Err(format!("class {c} out of range"))
            }
        };
        for op in ops {
            match op {
                Op::Work { .. } => {}
                Op::New { class, dst, .. } => {
                    check_class(*class)?;
                    check_reg(*dst)?;
                }
                Op::Call {
                    obj,
                    class,
                    method,
                    args,
                    ..
                } => {
                    check_reg(*obj)?;
                    check_class(*class)?;
                    let c = &self.classes[class.index()];
                    let m = c
                        .methods
                        .get(method.index())
                        .ok_or_else(|| format!("method {method} out of range for {}", c.name))?;
                    if m.is_static {
                        return Err(format!("Call targets static method {}::{}", c.name, m.name));
                    }
                    if args.len() > Reg::COUNT {
                        return Err("too many reference arguments".into());
                    }
                    for a in args {
                        check_reg(*a)?;
                    }
                }
                Op::CallStatic {
                    class,
                    method,
                    args,
                    ..
                } => {
                    check_class(*class)?;
                    let c = &self.classes[class.index()];
                    let m = c
                        .methods
                        .get(method.index())
                        .ok_or_else(|| format!("method {method} out of range for {}", c.name))?;
                    if !m.is_static {
                        return Err(format!(
                            "CallStatic targets instance method {}::{}",
                            c.name, m.name
                        ));
                    }
                    if args.len() > Reg::COUNT {
                        return Err("too many reference arguments".into());
                    }
                    for a in args {
                        check_reg(*a)?;
                    }
                }
                Op::Read { obj, .. } | Op::Write { obj, .. } => check_reg(*obj)?,
                Op::GetSlot { dst, .. } => check_reg(*dst)?,
                Op::PutSlot { src, .. } => check_reg(*src)?,
                Op::GetSlotOf { obj, dst, .. } => {
                    check_reg(*obj)?;
                    check_reg(*dst)?;
                }
                Op::PutSlotOf { obj, src, .. } => {
                    check_reg(*obj)?;
                    check_reg(*src)?;
                }
                Op::Native { .. } => {}
                Op::GetStatic { class, .. } | Op::PutStatic { class, .. } => check_class(*class)?,
                Op::Clear { reg } => check_reg(*reg)?,
                Op::Repeat { body, .. } => self.validate_ops(body)?,
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Program`]s.
///
/// # Examples
///
/// ```
/// use aide_vm::{ProgramBuilder, MethodDef, Op, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let main = b.add_class("Main");
/// b.add_method(main, MethodDef::new("main", vec![Op::Work { micros: 10 }]));
/// let program = b.build(main, aide_vm::MethodId(0), 64, 4)?;
/// assert_eq!(program.class_count(), 1);
/// # Ok::<(), aide_vm::VmError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<ClassDef>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Adds an empty class and returns its id.
    pub fn add_class(&mut self, name: impl Into<String>) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassDef::new(name));
        id
    }

    /// Adds a primitive-array class (eligible for object-granular placement).
    pub fn add_array_class(&mut self, name: impl Into<String>) -> ClassId {
        let id = self.add_class(name);
        self.classes[id.index()].is_primitive_array = true;
        id
    }

    /// Adds a class implemented with native methods — pinned to the client
    /// (widget toolkits, framebuffer wrappers, host-state accessors).
    pub fn add_native_class(&mut self, name: impl Into<String>) -> ClassId {
        let id = self.add_class(name);
        self.classes[id.index()].native_impl = true;
        id
    }

    /// Marks an existing class as natively implemented (client-pinned).
    ///
    /// # Panics
    ///
    /// Panics if `class` was not created by this builder.
    pub fn set_native_impl(&mut self, class: ClassId) -> &mut Self {
        self.classes[class.index()].native_impl = true;
        self
    }

    /// Sets the static-data footprint of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not created by this builder.
    pub fn set_static_bytes(&mut self, class: ClassId, bytes: u32) -> &mut Self {
        self.classes[class.index()].static_bytes = bytes;
        self
    }

    /// Appends a method to `class`, returning the new method's id.
    ///
    /// # Panics
    ///
    /// Panics if `class` was not created by this builder.
    pub fn add_method(&mut self, class: ClassId, method: MethodDef) -> MethodId {
        let methods = &mut self.classes[class.index()].methods;
        let id = MethodId(methods.len() as u16);
        methods.push(method);
        id
    }

    /// Finalizes the program with the given entry point.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidProgram`] if validation fails.
    pub fn build(
        self,
        entry_class: ClassId,
        entry_method: MethodId,
        entry_scalar_bytes: u32,
        entry_ref_slots: u16,
    ) -> VmResult<Program> {
        Program::new(
            self.classes,
            EntryPoint {
                class: entry_class,
                method: entry_method,
                scalar_bytes: entry_scalar_bytes,
                ref_slots: entry_ref_slots,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let helper = b.add_class("Helper");
        let hm = b.add_method(helper, MethodDef::new("help", vec![Op::Work { micros: 5 }]));
        b.add_method(
            main,
            MethodDef::new(
                "main",
                vec![
                    Op::New {
                        class: helper,
                        scalar_bytes: 100,
                        ref_slots: 0,
                        dst: Reg(0),
                    },
                    Op::Call {
                        obj: Reg(0),
                        class: helper,
                        method: hm,
                        arg_bytes: 8,
                        ret_bytes: 8,
                        args: vec![],
                    },
                ],
            ),
        );
        b.build(main, MethodId(0), 64, 4).unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let p = simple_program();
        assert_eq!(p.class_count(), 2);
        assert_eq!(p.class_by_name("Main"), Some(ClassId(0)));
        assert_eq!(p.class_by_name("Helper"), Some(ClassId(1)));
        assert_eq!(p.class_by_name("Nope"), None);
    }

    #[test]
    fn validation_rejects_empty_program() {
        let err = Program::new(
            vec![],
            EntryPoint {
                class: ClassId(0),
                method: MethodId(0),
                scalar_bytes: 0,
                ref_slots: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, VmError::InvalidProgram(_)));
    }

    #[test]
    fn validation_rejects_bad_entry() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        // No methods: entry method 0 is out of range.
        let err = b.build(c, MethodId(0), 0, 0).unwrap_err();
        assert!(matches!(err, VmError::InvalidProgram(_)));
    }

    #[test]
    fn validation_rejects_out_of_range_register() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(c, MethodDef::new("m", vec![Op::Clear { reg: Reg(8) }]));
        let err = b.build(c, MethodId(0), 0, 0).unwrap_err();
        assert!(err.to_string().contains("register r8 out of range"));
    }

    #[test]
    fn validation_rejects_unknown_callee_class() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(
            c,
            MethodDef::new(
                "m",
                vec![Op::Call {
                    obj: Reg(0),
                    class: ClassId(9),
                    method: MethodId(0),
                    arg_bytes: 0,
                    ret_bytes: 0,
                    args: vec![],
                }],
            ),
        );
        let err = b.build(c, MethodId(0), 0, 0).unwrap_err();
        assert!(err.to_string().contains("class class#9 out of range"));
    }

    #[test]
    fn validation_rejects_static_mismatch() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        let stat = b.add_method(c, MethodDef::new_static("s", vec![]));
        b.add_method(
            c,
            MethodDef::new(
                "m",
                vec![Op::Call {
                    obj: Reg(0),
                    class: c,
                    method: stat,
                    arg_bytes: 0,
                    ret_bytes: 0,
                    args: vec![],
                }],
            ),
        );
        let err = b.build(c, MethodId(1), 0, 0).unwrap_err();
        assert!(err.to_string().contains("targets static method"));
    }

    #[test]
    fn validation_recurses_into_repeat_bodies() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(
            c,
            MethodDef::new(
                "m",
                vec![Op::Repeat {
                    n: 3,
                    body: vec![Op::Clear { reg: Reg(100) }],
                }],
            ),
        );
        assert!(b.build(c, MethodId(0), 0, 0).is_err());
    }

    #[test]
    fn native_detection_scans_nested_bodies() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(
            c,
            MethodDef::new(
                "draw",
                vec![Op::Repeat {
                    n: 2,
                    body: vec![Op::Native {
                        kind: NativeKind::Framebuffer,
                        work_micros: 1,
                        arg_bytes: 4,
                        ret_bytes: 0,
                    }],
                }],
            ),
        );
        let p = b.build(c, MethodId(0), 0, 0).unwrap();
        assert!(p.class(ClassId(0)).unwrap().calls_natives());
        assert!(p.class(ClassId(0)).unwrap().calls_stateful_natives());
        // Calling natives does not make a class natively implemented.
        assert!(!p.class(ClassId(0)).unwrap().native_impl);
    }

    #[test]
    fn stateless_only_class_is_not_stateful() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("MathUser");
        b.add_method(
            c,
            MethodDef::new(
                "calc",
                vec![Op::Native {
                    kind: NativeKind::Math,
                    work_micros: 2,
                    arg_bytes: 8,
                    ret_bytes: 8,
                }],
            ),
        );
        let p = b.build(c, MethodId(0), 0, 0).unwrap();
        let cd = p.class(ClassId(0)).unwrap();
        assert!(cd.calls_natives());
        assert!(!cd.calls_stateful_natives());
    }

    #[test]
    fn method_lookup_errors_are_precise() {
        let p = simple_program();
        assert!(matches!(
            p.class(ClassId(10)),
            Err(VmError::UnknownClass(ClassId(10)))
        ));
        assert!(matches!(
            p.method(ClassId(0), MethodId(5)),
            Err(VmError::UnknownMethod(ClassId(0), MethodId(5)))
        ));
        assert!(p.method(ClassId(1), MethodId(0)).is_ok());
    }

    #[test]
    fn program_serde_round_trip() {
        let p = simple_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
