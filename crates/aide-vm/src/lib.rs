//! A small managed runtime substrate for the AIDE distributed platform.
//!
//! The paper's prototype is built by modifying HP's Chai JVM so that object
//! references can be flagged as remote and accesses to remote objects can be
//! intercepted (§3.2). Rust programs are statically compiled, so there is no
//! equivalent interposition point in native Rust code — this crate instead
//! provides a compact managed VM whose applications are expressed in an
//! instruction set where *every* method invocation, data-field access,
//! object creation, native call, and static access is an explicit,
//! observable, and redirectable operation:
//!
//! * [`Program`] / [`ProgramBuilder`] — classes, methods, and the [`Op`]
//!   instruction set.
//! * [`Heap`] and [`Collector`] — a traced object heap with a mark-and-sweep
//!   collector whose [`GcReport`]s drive AIDE's memory triggers.
//! * [`Machine`] — the re-entrant interpreter. It delivers every observable
//!   event to [`RuntimeHooks`] (the monitoring interposition point) and
//!   forwards operations on non-local objects through [`RemoteAccess`] (the
//!   transparent remote-execution interposition point).
//! * [`FlatProgram`] — the pre-decoded flat IR the default register-VM
//!   interpreter executes (select the legacy tree-walker with
//!   `AIDE_VM_LEGACY=1` or [`Machine::set_exec_mode`]).
//! * [`NativeKind`] — native-method annotations, including the paper's
//!   stateless-native enhancement.
//!
//! # Examples
//!
//! Build and run a tiny program while counting events:
//!
//! ```
//! use std::sync::Arc;
//! use aide_vm::{
//!     CountingHooks, Machine, MethodDef, Op, ProgramBuilder, Reg, VmConfig,
//! };
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.add_class("Main");
//! let buf = b.add_class("Buffer");
//! b.add_method(main, MethodDef::new("main", vec![
//!     Op::New { class: buf, scalar_bytes: 1024, ref_slots: 0, dst: Reg(0) },
//!     Op::Write { obj: Reg(0), bytes: 512 },
//!     Op::Work { micros: 100 },
//! ]));
//! let program = Arc::new(b.build(main, aide_vm::MethodId(0), 64, 4)?);
//!
//! let hooks = Arc::new(CountingHooks::new());
//! let machine = Machine::with_hooks(program, VmConfig::client(1 << 20), hooks.clone());
//! let summary = machine.run_entry()?;
//! assert_eq!(summary.objects_allocated, 2); // entry object + buffer
//! # Ok::<(), aide_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod flat;
mod gc;
mod heap;
mod hooks;
mod ids;
mod machine;
mod natives;
mod program;

pub use error::{VmError, VmResult};
pub use flat::{CallSite, FlatMethod, FlatOp, FlatProgram, Sym, NO_SITE, UNRESOLVED};
pub use gc::{Collector, GcConfig, GcReport};
pub use heap::{Heap, HeapStats, ObjectRecord};
pub use hooks::{
    CountingHooks, HookChain, Interaction, InteractionKind, NullHooks, PendingEvent, PendingEvents,
    RuntimeHooks,
};
pub use ids::{ClassId, MethodId, ObjectId, Reg};
pub use machine::{
    CostModel, ExecMode, ExternalRootAudit, Machine, RemoteAccess, RunSummary, Vm, VmConfig, VmKind,
};
pub use natives::{native_requires_client, NativeKind};
pub use program::{ClassDef, EntryPoint, MethodDef, Op, Program, ProgramBuilder};
