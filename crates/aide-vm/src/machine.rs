//! The virtual machine state and the re-entrant interpreter.
//!
//! A [`Vm`] owns a heap, a garbage collector, a frame table, and a virtual
//! CPU clock. The [`Machine`] drives interpretation of a [`Program`] over a
//! shared `Arc<Mutex<Vm>>`: every instruction locks the VM briefly, so
//! worker threads serving remote invocations (the paper's "pool of threads
//! to perform RPCs on behalf of the other JVM") can interleave with a
//! mutator blocked on a remote call without deadlocking.
//!
//! Remote execution is abstracted behind the [`RemoteAccess`] trait: when
//! the interpreter touches an object that is not in the local heap, it
//! forwards the operation through `RemoteAccess` — the distributed platform
//! implements this with real RPC messages, and a stand-alone VM runs with no
//! remote at all (any cross-VM touch is then a dangling reference).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{VmError, VmResult};
use crate::gc::{Collector, GcConfig, GcReport};
use crate::heap::{Heap, ObjectRecord};
use crate::hooks::{Interaction, InteractionKind, NullHooks, RuntimeHooks};
use crate::ids::{ClassId, MethodId, ObjectId, Reg};
use crate::natives::{native_requires_client, NativeKind};
use crate::program::{Op, Program};

/// Which role a VM plays in the distributed platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmKind {
    /// The resource-constrained client device (owns natives and statics).
    Client,
    /// The surrogate server.
    Surrogate,
}

/// Virtual CPU cost model, in client-speed microseconds.
///
/// The costs are charged to the executing VM's clock, divided by its speed
/// factor. `monitor_event_micros` models the per-event cost of execution
/// monitoring (the paper measured an 11% slowdown for JavaNote with
/// monitoring on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Overhead per method invocation.
    pub invoke_micros: f64,
    /// Overhead per data-field access.
    pub field_access_micros: f64,
    /// Overhead per object allocation.
    pub alloc_micros: f64,
    /// Base overhead per native invocation (plus the native's own work).
    pub native_base_micros: f64,
    /// Overhead per static-data access.
    pub static_access_micros: f64,
    /// Extra cost charged per monitoring event when monitoring is enabled.
    pub monitor_event_micros: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            invoke_micros: 0.5,
            field_access_micros: 0.2,
            alloc_micros: 1.0,
            native_base_micros: 1.0,
            static_access_micros: 0.2,
            monitor_event_micros: 0.0,
        }
    }
}

/// Configuration of one VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Role of this VM.
    pub kind: VmKind,
    /// Heap capacity in bytes.
    pub heap_capacity: u64,
    /// CPU speed relative to the client device (client = 1.0; the paper's
    /// surrogate is 3.5).
    pub speed_factor: f64,
    /// Garbage-collector triggers.
    pub gc: GcConfig,
    /// Virtual CPU cost model.
    pub cost: CostModel,
    /// When `true`, stateless natives (math, string ops) execute on the
    /// device where they are invoked — the paper's §5.2 "Native"
    /// enhancement. When `false`, every native runs on the client.
    pub stateless_natives_local: bool,
}

impl VmConfig {
    /// A client VM with the given heap capacity and defaults otherwise.
    pub fn client(heap_capacity: u64) -> Self {
        VmConfig {
            kind: VmKind::Client,
            heap_capacity,
            speed_factor: 1.0,
            gc: GcConfig::default(),
            cost: CostModel::default(),
            stateless_natives_local: false,
        }
    }

    /// A surrogate VM with the given heap capacity, running at the paper's
    /// measured 3.5× client speed.
    pub fn surrogate(heap_capacity: u64) -> Self {
        VmConfig {
            kind: VmKind::Surrogate,
            heap_capacity,
            speed_factor: 3.5,
            gc: GcConfig::default(),
            cost: CostModel::default(),
            stateless_natives_local: false,
        }
    }
}

/// An interpreter frame (registers plus receiver), tracked in the VM so the
/// collector can enumerate live roots across all threads.
#[derive(Debug, Clone)]
struct Frame {
    self_obj: Option<ObjectId>,
    regs: [Option<ObjectId>; Reg::COUNT],
}

/// Lifetime audit of external-root pin/unpin traffic on one VM.
///
/// Distributed GC is balanced when every pin is matched by exactly one
/// unpin: `unbalanced_unpins` counts unpins of ids with no live pin — the
/// observable signature of a double-released export — and must stay zero
/// in a correct run. The leak soak asserts on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalRootAudit {
    /// Total external-root pins taken over the VM's lifetime.
    pub pins: u64,
    /// Total external-root references released.
    pub unpins: u64,
    /// Unpins naming an object with no live pin (double-release signal).
    pub unbalanced_unpins: u64,
}

/// Process-wide audit counters mirrored into the telemetry registry, so
/// the double-unpin signal is scrapeable alongside the GC lease metrics.
fn audit_metrics() -> &'static (
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
) {
    static METRICS: std::sync::OnceLock<(
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
    )> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let t = aide_telemetry::global();
        (
            t.counter(aide_telemetry::names::VM_EXTERNAL_PINS),
            t.counter(aide_telemetry::names::VM_EXTERNAL_UNPINS),
            t.counter(aide_telemetry::names::VM_UNPIN_UNBALANCED),
        )
    })
}

/// The mutable state of one virtual machine.
#[derive(Debug)]
pub struct Vm {
    config: VmConfig,
    program: Arc<Program>,
    heap: Heap,
    gc: Collector,
    next_object: u64,
    next_frame: u64,
    frames: HashMap<u64, Frame>,
    external_roots: HashMap<ObjectId, u32>,
    root_audit: ExternalRootAudit,
    cpu_seconds: f64,
    statics_accesses: u64,
}

impl Vm {
    /// Creates a VM for `program` with the given configuration.
    pub fn new(program: Arc<Program>, config: VmConfig) -> Self {
        Vm {
            heap: Heap::new(config.heap_capacity),
            gc: Collector::new(config.gc),
            config,
            program,
            next_object: 0,
            next_frame: 0,
            frames: HashMap::new(),
            external_roots: HashMap::new(),
            root_audit: ExternalRootAudit::default(),
            cpu_seconds: 0.0,
            statics_accesses: 0,
        }
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The VM's heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the heap (used by the offloading machinery to
    /// migrate objects).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The garbage collector.
    pub fn collector(&self) -> &Collector {
        &self.gc
    }

    /// Virtual CPU seconds consumed by this VM so far.
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_seconds
    }

    /// Number of static-data accesses served by this VM.
    pub fn statics_accesses(&self) -> u64 {
        self.statics_accesses
    }

    /// Advances the virtual CPU clock by `micros` of client-speed work,
    /// scaled by this VM's speed factor.
    pub fn charge_micros(&mut self, micros: f64) {
        self.cpu_seconds += micros / 1e6 / self.config.speed_factor;
    }

    /// Mints a fresh object id on this VM's side.
    fn mint_object_id(&mut self) -> ObjectId {
        let n = self.next_object;
        self.next_object += 1;
        match self.config.kind {
            VmKind::Client => ObjectId::client(n),
            VmKind::Surrogate => ObjectId::surrogate(n),
        }
    }

    /// Pins `id` as an external root (a peer VM holds a reference to it).
    /// Counts are reference counts: pin twice, unpin twice.
    pub fn external_root_inc(&mut self, id: ObjectId) {
        *self.external_roots.entry(id).or_insert(0) += 1;
        self.root_audit.pins += 1;
        audit_metrics().0.inc();
    }

    /// Releases one external-root reference to `id`. An unpin of an id
    /// with no live pin is tolerated (distributed GC may race a sweep
    /// against a release) but audited as unbalanced — see
    /// [`Vm::external_root_audit`].
    pub fn external_root_dec(&mut self, id: ObjectId) {
        if let Some(n) = self.external_roots.get_mut(&id) {
            *n -= 1;
            if *n == 0 {
                self.external_roots.remove(&id);
            }
            self.root_audit.unpins += 1;
            audit_metrics().1.inc();
        } else {
            self.root_audit.unbalanced_unpins += 1;
            audit_metrics().2.inc();
        }
    }

    /// Number of distinct externally rooted objects.
    pub fn external_root_count(&self) -> usize {
        self.external_roots.len()
    }

    /// The pin/unpin audit for this VM: totals plus the unbalanced-unpin
    /// count that must stay zero when distributed GC is correct.
    pub fn external_root_audit(&self) -> ExternalRootAudit {
        self.root_audit
    }

    fn push_frame(&mut self, self_obj: Option<ObjectId>, args: &[ObjectId]) -> u64 {
        let mut regs = [None; Reg::COUNT];
        for (i, &a) in args.iter().take(Reg::COUNT).enumerate() {
            regs[i] = Some(a);
        }
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.insert(id, Frame { self_obj, regs });
        id
    }

    fn pop_frame(&mut self, id: u64) {
        self.frames.remove(&id);
    }

    fn roots(&self) -> Vec<ObjectId> {
        let mut roots: Vec<ObjectId> = Vec::new();
        for f in self.frames.values() {
            roots.extend(f.self_obj);
            roots.extend(f.regs.iter().flatten().copied());
        }
        roots
    }

    /// All object ids currently reachable from mutator roots (frame
    /// receivers and registers). Used by distributed GC to keep remote
    /// objects referenced only from registers pinned on the peer.
    pub fn root_refs(&self) -> Vec<ObjectId> {
        self.roots()
    }

    /// Runs a full collection cycle now, returning its report.
    pub fn collect_now(&mut self) -> GcReport {
        let roots = self.roots();
        let externals: Vec<ObjectId> = self.external_roots.keys().copied().collect();
        self.gc.collect(&mut self.heap, roots, externals)
    }

    /// `(objects, bytes)` freed per class by the most recent collection.
    pub fn last_freed_by_class(&self) -> HashMap<ClassId, (u64, u64)> {
        self.gc.last_freed_by_class().clone()
    }
}

/// Access to the peer VM, implemented by the distributed platform's RPC
/// layer. A stand-alone VM runs without one.
pub trait RemoteAccess: Send + Sync {
    /// Invokes `method` on the remote object `target`, passing `args` by
    /// reference, and blocks until the invocation completes.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] if the peer is unreachable, plus
    /// any error the remote execution itself produced.
    fn invoke(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        arg_bytes: u32,
        ret_bytes: u32,
        args: &[ObjectId],
    ) -> VmResult<()>;

    /// Reads or writes `bytes` of scalar data on the remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn field_access(&self, target: ObjectId, bytes: u32, write: bool) -> VmResult<()>;

    /// Reads a reference slot of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn get_slot(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>>;

    /// Writes a reference slot of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn put_slot(&self, target: ObjectId, slot: u16, value: Option<ObjectId>) -> VmResult<()>;

    /// Executes a client-bound native on the peer (always the client).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        arg_bytes: u32,
        ret_bytes: u32,
    ) -> VmResult<()>;

    /// Accesses static data of `class` on the client from the surrogate.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn static_access(
        &self,
        accessor: ClassId,
        class: ClassId,
        bytes: u32,
        write: bool,
    ) -> VmResult<()>;

    /// The class of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if the peer does not hold it.
    fn class_of(&self, target: ObjectId) -> VmResult<ClassId>;
}

/// Summary of a completed program run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Virtual CPU seconds consumed on this VM.
    pub cpu_seconds: f64,
    /// Completed garbage-collection cycles.
    pub gc_cycles: u64,
    /// Objects allocated over the run.
    pub objects_allocated: u64,
    /// Live objects at exit.
    pub objects_live: u64,
    /// Heap bytes in use at exit.
    pub heap_used: u64,
}

/// The interpreter: executes program methods against a shared [`Vm`].
///
/// Cloning a `Machine` is cheap; clones share the same VM, hooks, and
/// remote-access handle, which is how RPC worker threads re-enter the
/// interpreter to serve peer requests.
#[derive(Clone)]
pub struct Machine {
    vm: Arc<Mutex<Vm>>,
    hooks: Arc<dyn RuntimeHooks>,
    remote: Arc<std::sync::OnceLock<Arc<dyn RemoteAccess>>>,
    max_depth: usize,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("max_depth", &self.max_depth)
            .field("has_remote", &self.remote.get().is_some())
            .finish()
    }
}

impl Machine {
    /// Default maximum interpreter recursion depth (conservative: each
    /// interpreted frame consumes several kilobytes of host stack in debug
    /// builds, and RPC dispatcher threads run with default stack sizes).
    pub const DEFAULT_MAX_DEPTH: usize = 64;

    /// Creates a machine over a fresh VM with no instrumentation and no
    /// peer.
    pub fn new(program: Arc<Program>, config: VmConfig) -> Self {
        Machine::with_parts(
            Arc::new(Mutex::new(Vm::new(program, config))),
            Arc::new(NullHooks),
            None,
        )
    }

    /// Creates a machine over a fresh VM with the given instrumentation.
    pub fn with_hooks(
        program: Arc<Program>,
        config: VmConfig,
        hooks: Arc<dyn RuntimeHooks>,
    ) -> Self {
        Machine::with_parts(Arc::new(Mutex::new(Vm::new(program, config))), hooks, None)
    }

    /// Creates a machine from explicit parts (shared VM, hooks, peer).
    pub fn with_parts(
        vm: Arc<Mutex<Vm>>,
        hooks: Arc<dyn RuntimeHooks>,
        remote: Option<Arc<dyn RemoteAccess>>,
    ) -> Self {
        let cell = Arc::new(std::sync::OnceLock::new());
        if let Some(r) = remote {
            cell.set(r).ok().expect("fresh cell");
        }
        Machine {
            vm,
            hooks,
            remote: cell,
            max_depth: Self::DEFAULT_MAX_DEPTH,
        }
    }

    /// Wires the peer connection after construction (the RPC layer needs
    /// the machine to build its dispatcher, so the dependency is cyclic).
    ///
    /// # Panics
    ///
    /// Panics if a remote was already set.
    pub fn set_remote(&self, remote: Arc<dyn RemoteAccess>) {
        self.remote
            .set(remote)
            .ok()
            .expect("machine remote already set");
    }

    /// The shared VM handle.
    pub fn vm(&self) -> &Arc<Mutex<Vm>> {
        &self.vm
    }

    /// The instrumentation hooks.
    pub fn hooks(&self) -> &Arc<dyn RuntimeHooks> {
        &self.hooks
    }

    /// Replaces the maximum call depth.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    /// Whether monitoring cost should be charged for hook events.
    fn monitor_cost(&self) -> f64 {
        self.vm.lock().config.cost.monitor_event_micros
    }

    /// Runs the program's entry method to completion on this VM.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution — notably
    /// [`VmError::OutOfMemory`] when the heap is exhausted and neither
    /// collection nor offloading freed enough space.
    pub fn run_entry(&self) -> VmResult<RunSummary> {
        let (program, entry) = {
            let vm = self.vm.lock();
            (vm.program.clone(), vm.program.entry())
        };
        let _ = program; // program captured to keep Arc alive across run
        let entry_obj = self.alloc_object(
            entry.class,
            entry.class,
            entry.scalar_bytes,
            entry.ref_slots,
        )?;
        self.call_local(Some(entry_obj), entry.class, entry.method, &[], 0)?;
        let vm = self.vm.lock();
        Ok(RunSummary {
            cpu_seconds: vm.cpu_seconds,
            gc_cycles: vm.gc.cycles(),
            objects_allocated: vm.heap.stats().total_allocated,
            objects_live: vm.heap.stats().live_objects,
            heap_used: vm.heap.stats().used_bytes,
        })
    }

    /// Executes `method` of `class` on the local object `target` (used by
    /// RPC dispatchers serving a peer's invocation).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local, or
    /// any execution error.
    pub fn call_on(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        args: &[ObjectId],
    ) -> VmResult<()> {
        self.call_local(Some(target), class, method, args, 0)
    }

    /// Performs a local field access on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local.
    pub fn field_access_on(&self, target: ObjectId, _bytes: u32, _write: bool) -> VmResult<()> {
        let mut vm = self.vm.lock();
        vm.heap.get(target)?;
        let cost = vm.config.cost.field_access_micros;
        vm.charge_micros(cost);
        Ok(())
    }

    /// Reads a reference slot of a local object on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] or [`VmError::SlotOutOfRange`].
    pub fn get_slot_on(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>> {
        let vm = self.vm.lock();
        let rec = vm.heap.get(target)?;
        Ok(*slot_ref(rec, target, slot)?)
    }

    /// Writes a reference slot of a local object on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] or [`VmError::SlotOutOfRange`].
    pub fn put_slot_on(
        &self,
        target: ObjectId,
        slot: u16,
        value: Option<ObjectId>,
    ) -> VmResult<()> {
        let mut vm = self.vm.lock();
        let rec = vm.heap.get_mut(target)?;
        let cell = slot_mut(rec, target, slot)?;
        *cell = value;
        Ok(())
    }

    /// Executes a native locally on behalf of a peer (the client serving a
    /// surrogate's client-bound native call).
    pub fn native_on(&self, work_micros: u32) {
        let mut vm = self.vm.lock();
        let cost = vm.config.cost.native_base_micros + work_micros as f64;
        vm.charge_micros(cost);
    }

    /// Serves a static-data access on behalf of a peer.
    pub fn static_access_on(&self, _class: ClassId, _bytes: u32, _write: bool) {
        let mut vm = self.vm.lock();
        let cost = vm.config.cost.static_access_micros;
        vm.charge_micros(cost);
        vm.statics_accesses += 1;
    }

    /// The class of a local object, for peers resolving references.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local.
    pub fn class_of_local(&self, target: ObjectId) -> VmResult<ClassId> {
        let vm = self.vm.lock();
        Ok(vm.heap.get(target)?.class)
    }

    // ---- internal interpretation ------------------------------------------------

    /// Allocates an object, collecting (and reporting) as needed.
    fn alloc_object(
        &self,
        creating_class: ClassId,
        class: ClassId,
        scalar_bytes: u32,
        ref_slots: u16,
    ) -> VmResult<ObjectId> {
        // Periodic trigger: give the collector (and through its report, the
        // offloading controller) a chance to run at this safe point.
        let periodic = {
            let mut vm = self.vm.lock();
            if vm.gc.should_collect() {
                Some(self.collect_locked(&mut vm))
            } else {
                None
            }
        };
        if let Some(report) = periodic {
            self.emit_gc(&report);
        }

        // Allocation with OOM -> collect -> (hooks may offload) -> retry.
        // The retry budget must exceed the trigger policy's consecutive-
        // report requirement: each failed attempt emits one GC report, and
        // the offloading controller only reacts once the trigger fires.
        const MAX_ATTEMPTS: usize = 8;
        let mut attempts = 0usize;
        loop {
            let outcome = {
                let mut vm = self.vm.lock();
                if vm.heap.fits(scalar_bytes, ref_slots) {
                    let id = vm.mint_object_id();
                    let record = ObjectRecord::new(class, scalar_bytes, ref_slots);
                    let footprint = record.footprint();
                    vm.heap
                        .insert(id, record)
                        .expect("fits() guaranteed capacity");
                    vm.gc.note_alloc(footprint);
                    let cost = vm.config.cost.alloc_micros;
                    vm.charge_micros(cost);
                    Ok((id, footprint))
                } else if attempts < MAX_ATTEMPTS {
                    Err(Some(self.collect_locked(&mut vm)))
                } else {
                    let free = vm.heap.free_bytes();
                    return Err(VmError::OutOfMemory {
                        class,
                        requested: ObjectRecord::footprint_of(scalar_bytes, ref_slots),
                        free,
                    });
                }
            };
            match outcome {
                Ok((id, footprint)) => {
                    self.hooks.on_alloc(class, id, footprint);
                    self.charge_monitor_event();
                    let _ = creating_class;
                    return Ok(id);
                }
                Err(Some(report)) => {
                    attempts += 1;
                    // Hooks run without the VM lock: the offloading
                    // controller may react by migrating objects away.
                    self.emit_gc(&report);
                }
                Err(None) => unreachable!(),
            }
        }
    }

    fn collect_locked(&self, vm: &mut Vm) -> GcReport {
        vm.collect_now()
    }

    fn emit_gc(&self, report: &GcReport) {
        // Report per-class frees to the monitor first so node weights shrink.
        let freed = {
            let vm = self.vm.lock();
            vm.last_freed_by_class()
        };
        for (class, (objects, bytes)) in freed {
            self.hooks.on_free(class, objects, bytes);
        }
        // Charge the GC's own virtual cost.
        {
            let mut vm = self.vm.lock();
            vm.charge_micros(report.duration_micros);
        }
        self.hooks.on_gc(report);
        self.charge_monitor_event();
    }

    fn charge_monitor_event(&self) {
        let cost = self.monitor_cost();
        if cost > 0.0 {
            let mut vm = self.vm.lock();
            vm.charge_micros(cost);
        }
    }

    /// Calls a method on a *local* receiver (or a static method).
    fn call_local(
        &self,
        self_obj: Option<ObjectId>,
        class: ClassId,
        method: MethodId,
        args: &[ObjectId],
        depth: usize,
    ) -> VmResult<()> {
        if depth >= self.max_depth {
            return Err(VmError::CallDepthExceeded(self.max_depth));
        }
        let (program, frame_id) = {
            let mut vm = self.vm.lock();
            if let Some(obj) = self_obj {
                let found = vm.heap.get(obj)?.class;
                if found != class {
                    return Err(VmError::ClassMismatch {
                        expected: class,
                        found,
                    });
                }
            }
            (vm.program.clone(), vm.push_frame(self_obj, args))
        };
        let mdef = program.method(class, method)?;
        let result = self.exec_ops(&mdef.body, frame_id, self_obj, class, depth);
        {
            let mut vm = self.vm.lock();
            vm.pop_frame(frame_id);
        }
        self.hooks.on_method_exit(class, method);
        result
    }

    fn read_reg(&self, frame_id: u64, reg: Reg) -> VmResult<Option<ObjectId>> {
        if !reg.is_valid() {
            return Err(VmError::InvalidRegister(reg));
        }
        let vm = self.vm.lock();
        Ok(vm.frames[&frame_id].regs[reg.index()])
    }

    fn read_reg_obj(&self, frame_id: u64, reg: Reg) -> VmResult<ObjectId> {
        self.read_reg(frame_id, reg)?
            .ok_or(VmError::NullRegister(reg))
    }

    fn write_reg(&self, frame_id: u64, reg: Reg, value: Option<ObjectId>) -> VmResult<()> {
        if !reg.is_valid() {
            return Err(VmError::InvalidRegister(reg));
        }
        let mut vm = self.vm.lock();
        vm.frames.get_mut(&frame_id).expect("live frame").regs[reg.index()] = value;
        Ok(())
    }

    /// Whether `id` resolves in the local heap.
    fn is_local(&self, id: ObjectId) -> bool {
        self.vm.lock().heap.contains(id)
    }

    fn class_of(&self, id: ObjectId) -> VmResult<ClassId> {
        {
            let vm = self.vm.lock();
            if let Ok(rec) = vm.heap.get(id) {
                return Ok(rec.class);
            }
        }
        match self.remote.get() {
            Some(r) => r.class_of(id),
            None => Err(VmError::DanglingReference(id)),
        }
    }

    fn record_interaction(
        &self,
        caller: ClassId,
        callee: ClassId,
        target: Option<ObjectId>,
        kind: InteractionKind,
        bytes: u64,
        remote: bool,
    ) {
        self.hooks.on_interaction(Interaction {
            caller,
            callee,
            target,
            kind,
            bytes,
            remote,
        });
        self.charge_monitor_event();
    }

    #[allow(clippy::too_many_lines)]
    fn exec_ops(
        &self,
        ops: &[Op],
        frame_id: u64,
        self_obj: Option<ObjectId>,
        class: ClassId,
        depth: usize,
    ) -> VmResult<()> {
        for op in ops {
            match op {
                Op::Work { micros } => {
                    {
                        let mut vm = self.vm.lock();
                        vm.charge_micros(*micros as f64);
                    }
                    self.hooks.on_work(class, *micros as f64);
                    self.charge_monitor_event();
                }
                Op::New {
                    class: new_class,
                    scalar_bytes,
                    ref_slots,
                    dst,
                } => {
                    let id = self.alloc_object(class, *new_class, *scalar_bytes, *ref_slots)?;
                    self.write_reg(frame_id, *dst, Some(id))?;
                }
                Op::Call {
                    obj,
                    class: callee_class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let mut arg_objs: Vec<ObjectId> = Vec::with_capacity(args.len());
                    for a in args {
                        arg_objs.push(self.read_reg_obj(frame_id, *a)?);
                    }
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    {
                        let mut vm = self.vm.lock();
                        let cost = vm.config.cost.invoke_micros;
                        vm.charge_micros(cost);
                    }
                    if self.is_local(target) {
                        self.record_interaction(
                            class,
                            *callee_class,
                            Some(target),
                            InteractionKind::Invocation,
                            bytes,
                            false,
                        );
                        self.call_local(
                            Some(target),
                            *callee_class,
                            *method,
                            &arg_objs,
                            depth + 1,
                        )?;
                    } else {
                        self.record_interaction(
                            class,
                            *callee_class,
                            Some(target),
                            InteractionKind::Invocation,
                            bytes,
                            true,
                        );
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.invoke(
                            target,
                            *callee_class,
                            *method,
                            *arg_bytes,
                            *ret_bytes,
                            &arg_objs,
                        )?;
                    }
                }
                Op::CallStatic {
                    class: callee_class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let mut arg_objs: Vec<ObjectId> = Vec::with_capacity(args.len());
                    for a in args {
                        arg_objs.push(self.read_reg_obj(frame_id, *a)?);
                    }
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    {
                        let mut vm = self.vm.lock();
                        let cost = vm.config.cost.invoke_micros;
                        vm.charge_micros(cost);
                    }
                    // Static methods execute locally on whichever VM invokes
                    // them (paper §4); only record an interaction when the
                    // classes differ.
                    if *callee_class != class {
                        self.record_interaction(
                            class,
                            *callee_class,
                            None,
                            InteractionKind::Invocation,
                            bytes,
                            false,
                        );
                    }
                    self.call_local(None, *callee_class, *method, &arg_objs, depth + 1)?;
                }
                Op::Read { obj, bytes } | Op::Write { obj, bytes } => {
                    let write = matches!(op, Op::Write { .. });
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    if self.is_local(target) {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.field_access_micros;
                            vm.charge_micros(cost);
                        }
                        if callee != class {
                            self.record_interaction(
                                class,
                                callee,
                                Some(target),
                                InteractionKind::FieldAccess,
                                *bytes as u64,
                                false,
                            );
                        }
                    } else {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            *bytes as u64,
                            true,
                        );
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.field_access(target, *bytes, write)?;
                    }
                }
                Op::GetSlot { slot, dst } => {
                    let me = self_obj.ok_or_else(|| {
                        VmError::InvalidProgram("self slot access in static method".into())
                    })?;
                    // The receiver may have been migrated away *while this
                    // method is executing* (offloading is asynchronous to
                    // the call stack): redirect like any remote access.
                    let value = if self.is_local(me) {
                        let vm = self.vm.lock();
                        let rec = vm.heap.get(me)?;
                        *slot_ref(rec, me, *slot)?
                    } else {
                        self.record_interaction(
                            class,
                            class,
                            Some(me),
                            InteractionKind::FieldAccess,
                            8,
                            true,
                        );
                        let remote = self.remote.get().ok_or(VmError::DanglingReference(me))?;
                        remote.get_slot(me, *slot)?
                    };
                    self.write_reg(frame_id, *dst, value)?;
                }
                Op::PutSlot { slot, src } => {
                    let me = self_obj.ok_or_else(|| {
                        VmError::InvalidProgram("self slot access in static method".into())
                    })?;
                    let value = self.read_reg(frame_id, *src)?;
                    if self.is_local(me) {
                        let mut vm = self.vm.lock();
                        let rec = vm.heap.get_mut(me)?;
                        *slot_mut(rec, me, *slot)? = value;
                    } else {
                        self.record_interaction(
                            class,
                            class,
                            Some(me),
                            InteractionKind::FieldAccess,
                            8,
                            true,
                        );
                        let remote = self.remote.get().ok_or(VmError::DanglingReference(me))?;
                        remote.put_slot(me, *slot, value)?;
                    }
                }
                Op::GetSlotOf { obj, slot, dst } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    let value = if self.is_local(target) {
                        let vm = self.vm.lock();
                        let rec = vm.heap.get(target)?;
                        *slot_ref(rec, target, *slot)?
                    } else {
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.get_slot(target, *slot)?
                    };
                    let remote_access = !self.is_local(target);
                    if callee != class || remote_access {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            8,
                            remote_access,
                        );
                    }
                    self.write_reg(frame_id, *dst, value)?;
                }
                Op::PutSlotOf { obj, slot, src } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    let value = self.read_reg(frame_id, *src)?;
                    let remote_access = !self.is_local(target);
                    if remote_access {
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.put_slot(target, *slot, value)?;
                    } else {
                        let mut vm = self.vm.lock();
                        let rec = vm.heap.get_mut(target)?;
                        *slot_mut(rec, target, *slot)? = value;
                    }
                    if callee != class || remote_access {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            8,
                            remote_access,
                        );
                    }
                }
                Op::Native {
                    kind,
                    work_micros,
                    arg_bytes,
                    ret_bytes,
                } => {
                    let (my_kind, stateless_local) = {
                        let vm = self.vm.lock();
                        (vm.config.kind, vm.config.stateless_natives_local)
                    };
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    let must_go_to_client = my_kind == VmKind::Surrogate
                        && native_requires_client(*kind, stateless_local);
                    if must_go_to_client {
                        self.hooks
                            .on_native(class, *kind, *work_micros, bytes, true);
                        self.charge_monitor_event();
                        let remote = self.remote.get().ok_or_else(|| {
                            VmError::RemoteFailure("client-bound native with no peer".into())
                        })?;
                        remote.native(class, *kind, *work_micros, *arg_bytes, *ret_bytes)?;
                    } else {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.native_base_micros + *work_micros as f64;
                            vm.charge_micros(cost);
                        }
                        self.hooks
                            .on_native(class, *kind, *work_micros, bytes, false);
                        self.charge_monitor_event();
                    }
                }
                Op::GetStatic {
                    class: target_class,
                    bytes,
                }
                | Op::PutStatic {
                    class: target_class,
                    bytes,
                } => {
                    let write = matches!(op, Op::PutStatic { .. });
                    let my_kind = self.vm.lock().config.kind;
                    if my_kind == VmKind::Surrogate {
                        // Static data is kept consistent by directing all
                        // access back to the client VM (paper §3.2).
                        self.hooks
                            .on_static_access(class, *target_class, *bytes as u64, true);
                        self.charge_monitor_event();
                        let remote = self.remote.get().ok_or_else(|| {
                            VmError::RemoteFailure("static access with no peer".into())
                        })?;
                        remote.static_access(class, *target_class, *bytes, write)?;
                    } else {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.static_access_micros;
                            vm.charge_micros(cost);
                            vm.statics_accesses += 1;
                        }
                        self.hooks
                            .on_static_access(class, *target_class, *bytes as u64, false);
                        self.charge_monitor_event();
                    }
                }
                Op::Clear { reg } => {
                    self.write_reg(frame_id, *reg, None)?;
                }
                Op::Repeat { n, body } => {
                    for _ in 0..*n {
                        self.exec_ops(body, frame_id, self_obj, class, depth)?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn slot_ref(rec: &ObjectRecord, id: ObjectId, slot: u16) -> VmResult<&Option<ObjectId>> {
    rec.slots.get(slot as usize).ok_or(VmError::SlotOutOfRange {
        object: id,
        slot,
        slots: rec.slots.len() as u16,
    })
}

fn slot_mut(rec: &mut ObjectRecord, id: ObjectId, slot: u16) -> VmResult<&mut Option<ObjectId>> {
    let slots = rec.slots.len() as u16;
    rec.slots
        .get_mut(slot as usize)
        .ok_or(VmError::SlotOutOfRange {
            object: id,
            slot,
            slots,
        })
}
