//! The virtual machine state and the re-entrant interpreter.
//!
//! A [`Vm`] owns a heap, a garbage collector, a frame table, and a virtual
//! CPU clock. The [`Machine`] drives interpretation of a [`Program`] over a
//! shared `Arc<Mutex<Vm>>`: every instruction locks the VM briefly, so
//! worker threads serving remote invocations (the paper's "pool of threads
//! to perform RPCs on behalf of the other JVM") can interleave with a
//! mutator blocked on a remote call without deadlocking.
//!
//! Remote execution is abstracted behind the [`RemoteAccess`] trait: when
//! the interpreter touches an object that is not in the local heap, it
//! forwards the operation through `RemoteAccess` — the distributed platform
//! implements this with real RPC messages, and a stand-alone VM runs with no
//! remote at all (any cross-VM touch is then a dangling reference).
//!
//! Two interpreters execute method bodies (selected by [`ExecMode`]):
//!
//! * the **flat** register VM (default): bodies pre-compiled once to the
//!   contiguous IR of [`crate::flat`], executed in bursts over one
//!   contiguous value stack with `{ base, ip }` frame windows, per-site
//!   inline caches for the local-vs-remote reference check, and batched
//!   hook dispatch via [`PendingEvents`];
//! * the **legacy** tree-walker (`AIDE_VM_LEGACY=1`): the seed
//!   implementation, kept as a differential-testing oracle and escape
//!   hatch. Both produce identical [`RunSummary`]s and hook event streams.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{VmError, VmResult};
use crate::flat::{FlatOp, FlatProgram, UNRESOLVED};
use crate::gc::{Collector, GcConfig, GcReport};
use crate::heap::{Heap, ObjectRecord};
use crate::hooks::{
    Interaction, InteractionKind, NullHooks, PendingEvent, PendingEvents, RuntimeHooks,
};
use crate::ids::{ClassId, MethodId, ObjectId, Reg};
use crate::natives::{native_requires_client, NativeKind};
use crate::program::{Op, Program};

/// Which role a VM plays in the distributed platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmKind {
    /// The resource-constrained client device (owns natives and statics).
    Client,
    /// The surrogate server.
    Surrogate,
}

/// Virtual CPU cost model, in client-speed microseconds.
///
/// The costs are charged to the executing VM's clock, divided by its speed
/// factor. `monitor_event_micros` models the per-event cost of execution
/// monitoring (the paper measured an 11% slowdown for JavaNote with
/// monitoring on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Overhead per method invocation.
    pub invoke_micros: f64,
    /// Overhead per data-field access.
    pub field_access_micros: f64,
    /// Overhead per object allocation.
    pub alloc_micros: f64,
    /// Base overhead per native invocation (plus the native's own work).
    pub native_base_micros: f64,
    /// Overhead per static-data access.
    pub static_access_micros: f64,
    /// Extra cost charged per monitoring event when monitoring is enabled.
    pub monitor_event_micros: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            invoke_micros: 0.5,
            field_access_micros: 0.2,
            alloc_micros: 1.0,
            native_base_micros: 1.0,
            static_access_micros: 0.2,
            monitor_event_micros: 0.0,
        }
    }
}

/// Configuration of one VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Role of this VM.
    pub kind: VmKind,
    /// Heap capacity in bytes.
    pub heap_capacity: u64,
    /// CPU speed relative to the client device (client = 1.0; the paper's
    /// surrogate is 3.5).
    pub speed_factor: f64,
    /// Garbage-collector triggers.
    pub gc: GcConfig,
    /// Virtual CPU cost model.
    pub cost: CostModel,
    /// When `true`, stateless natives (math, string ops) execute on the
    /// device where they are invoked — the paper's §5.2 "Native"
    /// enhancement. When `false`, every native runs on the client.
    pub stateless_natives_local: bool,
}

impl VmConfig {
    /// A client VM with the given heap capacity and defaults otherwise.
    pub fn client(heap_capacity: u64) -> Self {
        VmConfig {
            kind: VmKind::Client,
            heap_capacity,
            speed_factor: 1.0,
            gc: GcConfig::default(),
            cost: CostModel::default(),
            stateless_natives_local: false,
        }
    }

    /// A surrogate VM with the given heap capacity, running at the paper's
    /// measured 3.5× client speed.
    pub fn surrogate(heap_capacity: u64) -> Self {
        VmConfig {
            kind: VmKind::Surrogate,
            heap_capacity,
            speed_factor: 3.5,
            gc: GcConfig::default(),
            cost: CostModel::default(),
            stateless_natives_local: false,
        }
    }
}

/// An interpreter frame (registers plus receiver), tracked in the VM so the
/// collector can enumerate live roots across all threads.
#[derive(Debug, Clone)]
struct Frame {
    self_obj: Option<ObjectId>,
    regs: [Option<ObjectId>; Reg::COUNT],
}

/// A flat-interpreter frame: a fixed [`Reg::COUNT`]-register *window* into
/// its [`ExecState`]'s contiguous value stack, plus the resume point.
/// `Copy`, 32 bytes — pushing a call allocates nothing beyond bumping the
/// shared stacks.
#[derive(Debug, Clone, Copy)]
struct FlatFrame {
    /// First value-stack index of this frame's register window.
    base: u32,
    /// Next instruction index into the flat code stream.
    ip: u32,
    /// Class of the executing method (interaction attribution).
    class: ClassId,
    /// The executing method (for `MethodExit` events).
    method: MethodId,
    /// Receiver (`None` in static methods).
    self_obj: Option<ObjectId>,
    /// Loop-counter stack depth at entry; `Return` truncates back to it.
    loop_base: u32,
}

/// One logical thread of flat-interpreter execution. States live in
/// [`Vm::exec_states`] (not on the host stack) so the collector sees every
/// register of every in-flight burst as a root, exactly like the legacy
/// frame table.
#[derive(Debug, Default)]
struct ExecState {
    /// Contiguous value stack; each frame owns an 8-register window.
    values: Vec<Option<ObjectId>>,
    /// Call stack of frame windows.
    frames: Vec<FlatFrame>,
    /// Active `Loop` iteration counters, innermost last.
    loops: Vec<u32>,
}

/// One inline-cache entry: the last object seen at a flat-IR site, the
/// class it resolved to, and the heap locality epoch the answer was cached
/// under. A monomorphic site's local-vs-remote check is then a single
/// compare-and-branch; any migration bumps the epoch and implicitly
/// flushes every site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IcEntry {
    target: ObjectId,
    class: ClassId,
    epoch: u64,
}

impl IcEntry {
    /// An entry that can never hit: `u64::MAX` is an unreachable epoch
    /// (the heap's counter starts at zero and increments by one).
    const INVALID: IcEntry = IcEntry {
        target: ObjectId(0),
        class: ClassId(0),
        epoch: u64::MAX,
    };
}

/// Ops executed per VM-lock acquisition by the flat interpreter. Large
/// enough to amortise the lock, small enough that RPC worker threads
/// serving the peer never starve.
const BURST_OPS: u32 = 128;

/// Why a flat-interpreter burst returned control to the (unlocked) driver.
#[derive(Debug, Clone, Copy)]
enum Exit {
    /// The entry frame returned; the run is complete.
    Done,
    /// Burst budget exhausted or a queued event needs flushing.
    Yield,
    /// An `Op::New` needs the allocation/GC path (which takes its own
    /// locks and emits its own hooks).
    Alloc {
        creating: ClassId,
        class: ClassId,
        scalar_bytes: u32,
        ref_slots: u16,
        dst: u8,
    },
    /// A dynamic call's receiver is not local: forward through
    /// [`RemoteAccess::invoke`].
    Invoke {
        call: u32,
        target: ObjectId,
        args: [ObjectId; Reg::COUNT],
        n_args: u8,
    },
    /// A field access on a non-local object.
    Field {
        caller: ClassId,
        target: ObjectId,
        bytes: u32,
        write: bool,
    },
    /// `GetSlot` on a receiver that migrated away mid-method.
    SlotGet {
        target: ObjectId,
        slot: u16,
        dst: u8,
    },
    /// `PutSlot` on a receiver that migrated away mid-method.
    SlotPut {
        target: ObjectId,
        slot: u16,
        value: Option<ObjectId>,
    },
    /// `GetSlotOf` on a non-local object.
    SlotGetOf {
        caller: ClassId,
        target: ObjectId,
        slot: u16,
        dst: u8,
    },
    /// `PutSlotOf` on a non-local object.
    SlotPutOf {
        caller: ClassId,
        target: ObjectId,
        slot: u16,
        value: Option<ObjectId>,
    },
    /// A client-bound native invoked on the surrogate.
    NativeCall {
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        arg_bytes: u32,
        ret_bytes: u32,
    },
    /// A static-data access from the surrogate.
    StaticAccess {
        accessor: ClassId,
        class: ClassId,
        bytes: u32,
        write: bool,
    },
}

/// Lifetime audit of external-root pin/unpin traffic on one VM.
///
/// Distributed GC is balanced when every pin is matched by exactly one
/// unpin: `unbalanced_unpins` counts unpins of ids with no live pin — the
/// observable signature of a double-released export — and must stay zero
/// in a correct run. The leak soak asserts on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalRootAudit {
    /// Total external-root pins taken over the VM's lifetime.
    pub pins: u64,
    /// Total external-root references released.
    pub unpins: u64,
    /// Unpins naming an object with no live pin (double-release signal).
    pub unbalanced_unpins: u64,
}

/// Process-wide audit counters mirrored into the telemetry registry, so
/// the double-unpin signal is scrapeable alongside the GC lease metrics.
fn audit_metrics() -> &'static (
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
) {
    static METRICS: std::sync::OnceLock<(
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
    )> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let t = aide_telemetry::global();
        (
            t.counter(aide_telemetry::names::VM_EXTERNAL_PINS),
            t.counter(aide_telemetry::names::VM_EXTERNAL_UNPINS),
            t.counter(aide_telemetry::names::VM_UNPIN_UNBALANCED),
        )
    })
}

/// Process-wide flat-interpreter counters mirrored into the telemetry
/// registry: inline-cache hits, misses, and dispatched ops. Best-effort
/// under concurrent runs (per-run deltas are sampled outside the lock);
/// the authoritative per-run numbers come from [`Vm::ic_stats`].
fn vm_metrics() -> &'static (
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
    Arc<aide_telemetry::Counter>,
) {
    static METRICS: std::sync::OnceLock<(
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
        Arc<aide_telemetry::Counter>,
    )> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let t = aide_telemetry::global();
        (
            t.counter(aide_telemetry::names::VM_IC_HITS),
            t.counter(aide_telemetry::names::VM_IC_MISSES),
            t.counter(aide_telemetry::names::VM_DISPATCH_OPS),
        )
    })
}

/// The mutable state of one virtual machine.
#[derive(Debug)]
pub struct Vm {
    config: VmConfig,
    program: Arc<Program>,
    /// Lazily compiled flat IR, shared by every flat run over this VM.
    flat: Option<Arc<FlatProgram>>,
    heap: Heap,
    gc: Collector,
    next_object: u64,
    next_frame: u64,
    frames: HashMap<u64, Frame>,
    /// Flat-interpreter execution states, keyed by a fresh id per run so
    /// the collector can enumerate their registers as roots.
    exec_states: HashMap<u64, ExecState>,
    next_state: u64,
    /// Inline-cache table, one entry per flat-IR cache site.
    ic: Vec<IcEntry>,
    ic_hits: u64,
    ic_misses: u64,
    external_roots: HashMap<ObjectId, u32>,
    root_audit: ExternalRootAudit,
    /// Virtual CPU spent in the interpreter loop proper (the mutator).
    mutator_seconds: f64,
    /// Virtual CPU spent emitting monitor events (the instrumentation tax,
    /// reported separately so fig6-style overhead numbers stay honest).
    hook_seconds: f64,
    /// Logical (program-visible) ops executed; loop/return control ops the
    /// flat compiler inserts are not counted, so both interpreters agree.
    ops_executed: u64,
    statics_accesses: u64,
}

impl Vm {
    /// Creates a VM for `program` with the given configuration.
    pub fn new(program: Arc<Program>, config: VmConfig) -> Self {
        Vm {
            heap: Heap::new(config.heap_capacity),
            gc: Collector::new(config.gc),
            config,
            program,
            flat: None,
            next_object: 0,
            next_frame: 0,
            frames: HashMap::new(),
            exec_states: HashMap::new(),
            next_state: 0,
            ic: Vec::new(),
            ic_hits: 0,
            ic_misses: 0,
            external_roots: HashMap::new(),
            root_audit: ExternalRootAudit::default(),
            mutator_seconds: 0.0,
            hook_seconds: 0.0,
            ops_executed: 0,
            statics_accesses: 0,
        }
    }

    /// The VM's configuration.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// The program this VM executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The VM's heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the heap (used by the offloading machinery to
    /// migrate objects).
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// The garbage collector.
    pub fn collector(&self) -> &Collector {
        &self.gc
    }

    /// Virtual CPU seconds consumed by this VM so far: interpreter loop
    /// plus monitor-event emission. See [`Vm::mutator_seconds`] and
    /// [`Vm::hook_seconds`] for the split.
    pub fn cpu_seconds(&self) -> f64 {
        self.mutator_seconds + self.hook_seconds
    }

    /// Virtual CPU seconds spent in the interpreter loop proper (op costs,
    /// natives, GC pauses) — excludes instrumentation.
    pub fn mutator_seconds(&self) -> f64 {
        self.mutator_seconds
    }

    /// Virtual CPU seconds spent emitting monitor events (zero when
    /// `monitor_event_micros` is zero).
    pub fn hook_seconds(&self) -> f64 {
        self.hook_seconds
    }

    /// Logical ops executed by this VM across all runs (flat control ops —
    /// `Loop`/`EndLoop`/`Return` — are excluded, so the count is identical
    /// under either interpreter).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// `(hits, misses)` of the flat interpreter's inline caches. Always
    /// `(0, 0)` under the legacy interpreter.
    pub fn ic_stats(&self) -> (u64, u64) {
        (self.ic_hits, self.ic_misses)
    }

    /// Number of static-data accesses served by this VM.
    pub fn statics_accesses(&self) -> u64 {
        self.statics_accesses
    }

    /// Advances the virtual CPU clock by `micros` of client-speed mutator
    /// work, scaled by this VM's speed factor.
    pub fn charge_micros(&mut self, micros: f64) {
        self.mutator_seconds += micros / 1e6 / self.config.speed_factor;
    }

    /// Advances the virtual CPU clock by `micros` of client-speed
    /// monitor-emission work, scaled by this VM's speed factor.
    pub fn charge_hook_micros(&mut self, micros: f64) {
        self.hook_seconds += micros / 1e6 / self.config.speed_factor;
    }

    /// The program compiled to flat IR, compiling on first use.
    pub fn flat_program(&mut self) -> Arc<FlatProgram> {
        if let Some(f) = &self.flat {
            return f.clone();
        }
        let f = Arc::new(FlatProgram::compile(&self.program));
        self.flat = Some(f.clone());
        f
    }

    /// Mints a fresh object id on this VM's side.
    fn mint_object_id(&mut self) -> ObjectId {
        let n = self.next_object;
        self.next_object += 1;
        match self.config.kind {
            VmKind::Client => ObjectId::client(n),
            VmKind::Surrogate => ObjectId::surrogate(n),
        }
    }

    /// Pins `id` as an external root (a peer VM holds a reference to it).
    /// Counts are reference counts: pin twice, unpin twice.
    pub fn external_root_inc(&mut self, id: ObjectId) {
        *self.external_roots.entry(id).or_insert(0) += 1;
        self.root_audit.pins += 1;
        audit_metrics().0.inc();
    }

    /// Releases one external-root reference to `id`. An unpin of an id
    /// with no live pin is tolerated (distributed GC may race a sweep
    /// against a release) but audited as unbalanced — see
    /// [`Vm::external_root_audit`].
    pub fn external_root_dec(&mut self, id: ObjectId) {
        if let Some(n) = self.external_roots.get_mut(&id) {
            *n -= 1;
            if *n == 0 {
                self.external_roots.remove(&id);
            }
            self.root_audit.unpins += 1;
            audit_metrics().1.inc();
        } else {
            self.root_audit.unbalanced_unpins += 1;
            audit_metrics().2.inc();
        }
    }

    /// Number of distinct externally rooted objects.
    pub fn external_root_count(&self) -> usize {
        self.external_roots.len()
    }

    /// The pin/unpin audit for this VM: totals plus the unbalanced-unpin
    /// count that must stay zero when distributed GC is correct.
    pub fn external_root_audit(&self) -> ExternalRootAudit {
        self.root_audit
    }

    fn push_frame(&mut self, self_obj: Option<ObjectId>, args: &[ObjectId]) -> u64 {
        let mut regs = [None; Reg::COUNT];
        for (i, &a) in args.iter().take(Reg::COUNT).enumerate() {
            regs[i] = Some(a);
        }
        let id = self.next_frame;
        self.next_frame += 1;
        self.frames.insert(id, Frame { self_obj, regs });
        id
    }

    fn pop_frame(&mut self, id: u64) {
        self.frames.remove(&id);
    }

    fn roots(&self) -> Vec<ObjectId> {
        let mut roots: Vec<ObjectId> = Vec::new();
        for f in self.frames.values() {
            roots.extend(f.self_obj);
            roots.extend(f.regs.iter().flatten().copied());
        }
        // Flat-interpreter states: every live register window plus every
        // frame's receiver. States stay in this table for the whole run,
        // so a collection triggered from the allocation path between
        // bursts sees exactly the same roots the legacy frame table would.
        for s in self.exec_states.values() {
            for f in &s.frames {
                roots.extend(f.self_obj);
            }
            roots.extend(s.values.iter().flatten().copied());
        }
        roots
    }

    /// All object ids currently reachable from mutator roots (frame
    /// receivers and registers). Used by distributed GC to keep remote
    /// objects referenced only from registers pinned on the peer.
    pub fn root_refs(&self) -> Vec<ObjectId> {
        self.roots()
    }

    /// Runs a full collection cycle now, returning its report.
    pub fn collect_now(&mut self) -> GcReport {
        let roots = self.roots();
        let externals: Vec<ObjectId> = self.external_roots.keys().copied().collect();
        self.gc.collect(&mut self.heap, roots, externals)
    }

    /// `(objects, bytes)` freed per class by the most recent collection,
    /// in class-id order (deterministic free-event emission).
    pub fn last_freed_by_class(&self) -> BTreeMap<ClassId, (u64, u64)> {
        self.gc.last_freed_by_class().clone()
    }
}

/// Access to the peer VM, implemented by the distributed platform's RPC
/// layer. A stand-alone VM runs without one.
pub trait RemoteAccess: Send + Sync {
    /// Invokes `method` on the remote object `target`, passing `args` by
    /// reference, and blocks until the invocation completes.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] if the peer is unreachable, plus
    /// any error the remote execution itself produced.
    fn invoke(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        arg_bytes: u32,
        ret_bytes: u32,
        args: &[ObjectId],
    ) -> VmResult<()>;

    /// Reads or writes `bytes` of scalar data on the remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn field_access(&self, target: ObjectId, bytes: u32, write: bool) -> VmResult<()>;

    /// Reads a reference slot of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn get_slot(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>>;

    /// Writes a reference slot of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn put_slot(&self, target: ObjectId, slot: u16, value: Option<ObjectId>) -> VmResult<()>;

    /// Executes a client-bound native on the peer (always the client).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        arg_bytes: u32,
        ret_bytes: u32,
    ) -> VmResult<()>;

    /// Accesses static data of `class` on the client from the surrogate.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::RemoteFailure`] or the remote-side error.
    fn static_access(
        &self,
        accessor: ClassId,
        class: ClassId,
        bytes: u32,
        write: bool,
    ) -> VmResult<()>;

    /// The class of a remote object.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if the peer does not hold it.
    fn class_of(&self, target: ObjectId) -> VmResult<ClassId>;
}

/// Summary of a completed program run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Virtual CPU seconds consumed on this VM (mutator plus hook time).
    pub cpu_seconds: f64,
    /// Completed garbage-collection cycles.
    pub gc_cycles: u64,
    /// Objects allocated over the run.
    pub objects_allocated: u64,
    /// Live objects at exit.
    pub objects_live: u64,
    /// Heap bytes in use at exit.
    pub heap_used: u64,
    /// Virtual CPU seconds spent in the interpreter loop proper.
    #[serde(default)]
    pub mutator_seconds: f64,
    /// Virtual CPU seconds spent emitting monitor events (the
    /// instrumentation tax, separated out of the mutator clock).
    #[serde(default)]
    pub hook_seconds: f64,
    /// Logical ops executed (identical under either interpreter).
    #[serde(default)]
    pub ops_executed: u64,
}

/// Which interpreter a [`Machine`] uses to execute method bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The pre-decoded flat-IR register VM (default).
    Flat,
    /// The seed tree-walking interpreter — escape hatch and differential
    /// oracle, selected by `AIDE_VM_LEGACY=1`.
    Legacy,
}

impl ExecMode {
    /// Resolves the mode from the `AIDE_VM_LEGACY` environment variable:
    /// `1` selects [`ExecMode::Legacy`], anything else the default flat
    /// interpreter.
    pub fn from_env() -> Self {
        match std::env::var("AIDE_VM_LEGACY") {
            Ok(v) if v == "1" => ExecMode::Legacy,
            _ => ExecMode::Flat,
        }
    }
}

/// The interpreter: executes program methods against a shared [`Vm`].
///
/// Cloning a `Machine` is cheap; clones share the same VM, hooks, and
/// remote-access handle, which is how RPC worker threads re-enter the
/// interpreter to serve peer requests.
#[derive(Clone)]
pub struct Machine {
    vm: Arc<Mutex<Vm>>,
    hooks: Arc<dyn RuntimeHooks>,
    remote: Arc<std::sync::OnceLock<Arc<dyn RemoteAccess>>>,
    max_depth: usize,
    mode: ExecMode,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("max_depth", &self.max_depth)
            .field("mode", &self.mode)
            .field("has_remote", &self.remote.get().is_some())
            .finish()
    }
}

impl Machine {
    /// Default maximum interpreter recursion depth (conservative: each
    /// interpreted frame consumes several kilobytes of host stack in debug
    /// builds, and RPC dispatcher threads run with default stack sizes).
    pub const DEFAULT_MAX_DEPTH: usize = 64;

    /// Creates a machine over a fresh VM with no instrumentation and no
    /// peer.
    pub fn new(program: Arc<Program>, config: VmConfig) -> Self {
        Machine::with_parts(
            Arc::new(Mutex::new(Vm::new(program, config))),
            Arc::new(NullHooks),
            None,
        )
    }

    /// Creates a machine over a fresh VM with the given instrumentation.
    pub fn with_hooks(
        program: Arc<Program>,
        config: VmConfig,
        hooks: Arc<dyn RuntimeHooks>,
    ) -> Self {
        Machine::with_parts(Arc::new(Mutex::new(Vm::new(program, config))), hooks, None)
    }

    /// Creates a machine from explicit parts (shared VM, hooks, peer).
    pub fn with_parts(
        vm: Arc<Mutex<Vm>>,
        hooks: Arc<dyn RuntimeHooks>,
        remote: Option<Arc<dyn RemoteAccess>>,
    ) -> Self {
        let cell = Arc::new(std::sync::OnceLock::new());
        if let Some(r) = remote {
            cell.set(r).ok().expect("fresh cell");
        }
        Machine {
            vm,
            hooks,
            remote: cell,
            max_depth: Self::DEFAULT_MAX_DEPTH,
            mode: ExecMode::from_env(),
        }
    }

    /// Selects which interpreter executes method bodies (overrides the
    /// `AIDE_VM_LEGACY` environment default).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The interpreter currently selected.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Wires the peer connection after construction (the RPC layer needs
    /// the machine to build its dispatcher, so the dependency is cyclic).
    ///
    /// # Panics
    ///
    /// Panics if a remote was already set.
    pub fn set_remote(&self, remote: Arc<dyn RemoteAccess>) {
        self.remote
            .set(remote)
            .ok()
            .expect("machine remote already set");
    }

    /// The shared VM handle.
    pub fn vm(&self) -> &Arc<Mutex<Vm>> {
        &self.vm
    }

    /// The instrumentation hooks.
    pub fn hooks(&self) -> &Arc<dyn RuntimeHooks> {
        &self.hooks
    }

    /// Replaces the maximum call depth.
    pub fn set_max_depth(&mut self, depth: usize) {
        self.max_depth = depth;
    }

    /// Whether monitoring cost should be charged for hook events.
    fn monitor_cost(&self) -> f64 {
        self.vm.lock().config.cost.monitor_event_micros
    }

    /// Runs the program's entry method to completion on this VM.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution — notably
    /// [`VmError::OutOfMemory`] when the heap is exhausted and neither
    /// collection nor offloading freed enough space.
    pub fn run_entry(&self) -> VmResult<RunSummary> {
        let (program, entry) = {
            let vm = self.vm.lock();
            (vm.program.clone(), vm.program.entry())
        };
        let _ = program; // program captured to keep Arc alive across run
        let entry_obj = self.alloc_object(
            entry.class,
            entry.class,
            entry.scalar_bytes,
            entry.ref_slots,
        )?;
        match self.mode {
            ExecMode::Flat => self.run_flat(Some(entry_obj), entry.class, entry.method, &[])?,
            ExecMode::Legacy => {
                self.call_local(Some(entry_obj), entry.class, entry.method, &[], 0)?;
            }
        }
        let vm = self.vm.lock();
        Ok(RunSummary {
            cpu_seconds: vm.cpu_seconds(),
            gc_cycles: vm.gc.cycles(),
            objects_allocated: vm.heap.stats().total_allocated,
            objects_live: vm.heap.stats().live_objects,
            heap_used: vm.heap.stats().used_bytes,
            mutator_seconds: vm.mutator_seconds,
            hook_seconds: vm.hook_seconds,
            ops_executed: vm.ops_executed,
        })
    }

    /// Executes `method` of `class` on the local object `target` (used by
    /// RPC dispatchers serving a peer's invocation).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local, or
    /// any execution error.
    pub fn call_on(
        &self,
        target: ObjectId,
        class: ClassId,
        method: MethodId,
        args: &[ObjectId],
    ) -> VmResult<()> {
        match self.mode {
            ExecMode::Flat => self.run_flat(Some(target), class, method, args),
            ExecMode::Legacy => self.call_local(Some(target), class, method, args, 0),
        }
    }

    /// Performs a local field access on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local.
    pub fn field_access_on(&self, target: ObjectId, _bytes: u32, _write: bool) -> VmResult<()> {
        let mut vm = self.vm.lock();
        vm.heap.get(target)?;
        let cost = vm.config.cost.field_access_micros;
        vm.charge_micros(cost);
        Ok(())
    }

    /// Reads a reference slot of a local object on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] or [`VmError::SlotOutOfRange`].
    pub fn get_slot_on(&self, target: ObjectId, slot: u16) -> VmResult<Option<ObjectId>> {
        let vm = self.vm.lock();
        let rec = vm.heap.get(target)?;
        Ok(*slot_ref(rec, target, slot)?)
    }

    /// Writes a reference slot of a local object on behalf of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] or [`VmError::SlotOutOfRange`].
    pub fn put_slot_on(
        &self,
        target: ObjectId,
        slot: u16,
        value: Option<ObjectId>,
    ) -> VmResult<()> {
        let mut vm = self.vm.lock();
        let rec = vm.heap.get_mut(target)?;
        let cell = slot_mut(rec, target, slot)?;
        *cell = value;
        Ok(())
    }

    /// Executes a native locally on behalf of a peer (the client serving a
    /// surrogate's client-bound native call).
    pub fn native_on(&self, work_micros: u32) {
        let mut vm = self.vm.lock();
        let cost = vm.config.cost.native_base_micros + work_micros as f64;
        vm.charge_micros(cost);
    }

    /// Serves a static-data access on behalf of a peer.
    pub fn static_access_on(&self, _class: ClassId, _bytes: u32, _write: bool) {
        let mut vm = self.vm.lock();
        let cost = vm.config.cost.static_access_micros;
        vm.charge_micros(cost);
        vm.statics_accesses += 1;
    }

    /// The class of a local object, for peers resolving references.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::DanglingReference`] if `target` is not local.
    pub fn class_of_local(&self, target: ObjectId) -> VmResult<ClassId> {
        let vm = self.vm.lock();
        Ok(vm.heap.get(target)?.class)
    }

    // ---- internal interpretation ------------------------------------------------

    /// Allocates an object, collecting (and reporting) as needed.
    fn alloc_object(
        &self,
        creating_class: ClassId,
        class: ClassId,
        scalar_bytes: u32,
        ref_slots: u16,
    ) -> VmResult<ObjectId> {
        // Periodic trigger: give the collector (and through its report, the
        // offloading controller) a chance to run at this safe point.
        let periodic = {
            let mut vm = self.vm.lock();
            if vm.gc.should_collect() {
                Some(self.collect_locked(&mut vm))
            } else {
                None
            }
        };
        if let Some(report) = periodic {
            self.emit_gc(&report);
        }

        // Allocation with OOM -> collect -> (hooks may offload) -> retry.
        // The retry budget must exceed the trigger policy's consecutive-
        // report requirement: each failed attempt emits one GC report, and
        // the offloading controller only reacts once the trigger fires.
        const MAX_ATTEMPTS: usize = 8;
        let mut attempts = 0usize;
        loop {
            let outcome = {
                let mut vm = self.vm.lock();
                if vm.heap.fits(scalar_bytes, ref_slots) {
                    let id = vm.mint_object_id();
                    let record = ObjectRecord::new(class, scalar_bytes, ref_slots);
                    let footprint = record.footprint();
                    vm.heap
                        .insert(id, record)
                        .expect("fits() guaranteed capacity");
                    vm.gc.note_alloc(footprint);
                    let cost = vm.config.cost.alloc_micros;
                    vm.charge_micros(cost);
                    Ok((id, footprint))
                } else if attempts < MAX_ATTEMPTS {
                    Err(Some(self.collect_locked(&mut vm)))
                } else {
                    let free = vm.heap.free_bytes();
                    return Err(VmError::OutOfMemory {
                        class,
                        requested: ObjectRecord::footprint_of(scalar_bytes, ref_slots),
                        free,
                    });
                }
            };
            match outcome {
                Ok((id, footprint)) => {
                    self.hooks.on_alloc(class, id, footprint);
                    self.charge_monitor_event();
                    let _ = creating_class;
                    return Ok(id);
                }
                Err(Some(report)) => {
                    attempts += 1;
                    // Hooks run without the VM lock: the offloading
                    // controller may react by migrating objects away.
                    self.emit_gc(&report);
                }
                Err(None) => unreachable!(),
            }
        }
    }

    fn collect_locked(&self, vm: &mut Vm) -> GcReport {
        vm.collect_now()
    }

    fn emit_gc(&self, report: &GcReport) {
        // Report per-class frees to the monitor first so node weights shrink.
        let freed = {
            let vm = self.vm.lock();
            vm.last_freed_by_class()
        };
        for (class, (objects, bytes)) in freed {
            self.hooks.on_free(class, objects, bytes);
        }
        // Charge the GC's own virtual cost.
        {
            let mut vm = self.vm.lock();
            vm.charge_micros(report.duration_micros);
        }
        self.hooks.on_gc(report);
        self.charge_monitor_event();
    }

    fn charge_monitor_event(&self) {
        let cost = self.monitor_cost();
        if cost > 0.0 {
            let mut vm = self.vm.lock();
            vm.charge_hook_micros(cost);
        }
    }

    /// Calls a method on a *local* receiver (or a static method).
    fn call_local(
        &self,
        self_obj: Option<ObjectId>,
        class: ClassId,
        method: MethodId,
        args: &[ObjectId],
        depth: usize,
    ) -> VmResult<()> {
        if depth >= self.max_depth {
            return Err(VmError::CallDepthExceeded(self.max_depth));
        }
        let (program, frame_id) = {
            let mut vm = self.vm.lock();
            if let Some(obj) = self_obj {
                let found = vm.heap.get(obj)?.class;
                if found != class {
                    return Err(VmError::ClassMismatch {
                        expected: class,
                        found,
                    });
                }
            }
            (vm.program.clone(), vm.push_frame(self_obj, args))
        };
        let mdef = program.method(class, method)?;
        let mut op_count = 0u64;
        let result = self.exec_ops(&mdef.body, frame_id, self_obj, class, depth, &mut op_count);
        {
            let mut vm = self.vm.lock();
            vm.pop_frame(frame_id);
            // Flushed even on error so partial counts match the flat
            // interpreter's dispatch-time accounting.
            vm.ops_executed += op_count;
        }
        self.hooks.on_method_exit(class, method);
        result
    }

    fn read_reg(&self, frame_id: u64, reg: Reg) -> VmResult<Option<ObjectId>> {
        if !reg.is_valid() {
            return Err(VmError::InvalidRegister(reg));
        }
        let vm = self.vm.lock();
        Ok(vm.frames[&frame_id].regs[reg.index()])
    }

    fn read_reg_obj(&self, frame_id: u64, reg: Reg) -> VmResult<ObjectId> {
        self.read_reg(frame_id, reg)?
            .ok_or(VmError::NullRegister(reg))
    }

    fn write_reg(&self, frame_id: u64, reg: Reg, value: Option<ObjectId>) -> VmResult<()> {
        if !reg.is_valid() {
            return Err(VmError::InvalidRegister(reg));
        }
        let mut vm = self.vm.lock();
        vm.frames.get_mut(&frame_id).expect("live frame").regs[reg.index()] = value;
        Ok(())
    }

    /// Whether `id` resolves in the local heap.
    fn is_local(&self, id: ObjectId) -> bool {
        self.vm.lock().heap.contains(id)
    }

    fn class_of(&self, id: ObjectId) -> VmResult<ClassId> {
        {
            let vm = self.vm.lock();
            if let Ok(rec) = vm.heap.get(id) {
                return Ok(rec.class);
            }
        }
        match self.remote.get() {
            Some(r) => r.class_of(id),
            None => Err(VmError::DanglingReference(id)),
        }
    }

    fn record_interaction(
        &self,
        caller: ClassId,
        callee: ClassId,
        target: Option<ObjectId>,
        kind: InteractionKind,
        bytes: u64,
        remote: bool,
    ) {
        self.hooks.on_interaction(Interaction {
            caller,
            callee,
            target,
            kind,
            bytes,
            remote,
        });
        self.charge_monitor_event();
    }

    #[allow(clippy::too_many_lines)]
    fn exec_ops(
        &self,
        ops: &[Op],
        frame_id: u64,
        self_obj: Option<ObjectId>,
        class: ClassId,
        depth: usize,
        op_count: &mut u64,
    ) -> VmResult<()> {
        for op in ops {
            // `Repeat` is pure control structure: only its body ops count,
            // once per iteration — the same logical-op accounting the flat
            // interpreter uses (its Loop/EndLoop/Return ops are uncounted).
            if !matches!(op, Op::Repeat { .. }) {
                *op_count += 1;
            }
            match op {
                Op::Work { micros } => {
                    {
                        let mut vm = self.vm.lock();
                        vm.charge_micros(*micros as f64);
                    }
                    self.hooks.on_work(class, *micros as f64);
                    self.charge_monitor_event();
                }
                Op::New {
                    class: new_class,
                    scalar_bytes,
                    ref_slots,
                    dst,
                } => {
                    let id = self.alloc_object(class, *new_class, *scalar_bytes, *ref_slots)?;
                    self.write_reg(frame_id, *dst, Some(id))?;
                }
                Op::Call {
                    obj,
                    class: callee_class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let mut arg_objs: Vec<ObjectId> = Vec::with_capacity(args.len());
                    for a in args {
                        arg_objs.push(self.read_reg_obj(frame_id, *a)?);
                    }
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    {
                        let mut vm = self.vm.lock();
                        let cost = vm.config.cost.invoke_micros;
                        vm.charge_micros(cost);
                    }
                    if self.is_local(target) {
                        self.record_interaction(
                            class,
                            *callee_class,
                            Some(target),
                            InteractionKind::Invocation,
                            bytes,
                            false,
                        );
                        self.call_local(
                            Some(target),
                            *callee_class,
                            *method,
                            &arg_objs,
                            depth + 1,
                        )?;
                    } else {
                        self.record_interaction(
                            class,
                            *callee_class,
                            Some(target),
                            InteractionKind::Invocation,
                            bytes,
                            true,
                        );
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.invoke(
                            target,
                            *callee_class,
                            *method,
                            *arg_bytes,
                            *ret_bytes,
                            &arg_objs,
                        )?;
                    }
                }
                Op::CallStatic {
                    class: callee_class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let mut arg_objs: Vec<ObjectId> = Vec::with_capacity(args.len());
                    for a in args {
                        arg_objs.push(self.read_reg_obj(frame_id, *a)?);
                    }
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    {
                        let mut vm = self.vm.lock();
                        let cost = vm.config.cost.invoke_micros;
                        vm.charge_micros(cost);
                    }
                    // Static methods execute locally on whichever VM invokes
                    // them (paper §4); only record an interaction when the
                    // classes differ.
                    if *callee_class != class {
                        self.record_interaction(
                            class,
                            *callee_class,
                            None,
                            InteractionKind::Invocation,
                            bytes,
                            false,
                        );
                    }
                    self.call_local(None, *callee_class, *method, &arg_objs, depth + 1)?;
                }
                Op::Read { obj, bytes } | Op::Write { obj, bytes } => {
                    let write = matches!(op, Op::Write { .. });
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    if self.is_local(target) {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.field_access_micros;
                            vm.charge_micros(cost);
                        }
                        if callee != class {
                            self.record_interaction(
                                class,
                                callee,
                                Some(target),
                                InteractionKind::FieldAccess,
                                *bytes as u64,
                                false,
                            );
                        }
                    } else {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            *bytes as u64,
                            true,
                        );
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.field_access(target, *bytes, write)?;
                    }
                }
                Op::GetSlot { slot, dst } => {
                    let me = self_obj.ok_or_else(|| {
                        VmError::InvalidProgram("self slot access in static method".into())
                    })?;
                    // The receiver may have been migrated away *while this
                    // method is executing* (offloading is asynchronous to
                    // the call stack): redirect like any remote access.
                    let value = if self.is_local(me) {
                        let vm = self.vm.lock();
                        let rec = vm.heap.get(me)?;
                        *slot_ref(rec, me, *slot)?
                    } else {
                        self.record_interaction(
                            class,
                            class,
                            Some(me),
                            InteractionKind::FieldAccess,
                            8,
                            true,
                        );
                        let remote = self.remote.get().ok_or(VmError::DanglingReference(me))?;
                        remote.get_slot(me, *slot)?
                    };
                    self.write_reg(frame_id, *dst, value)?;
                }
                Op::PutSlot { slot, src } => {
                    let me = self_obj.ok_or_else(|| {
                        VmError::InvalidProgram("self slot access in static method".into())
                    })?;
                    let value = self.read_reg(frame_id, *src)?;
                    if self.is_local(me) {
                        let mut vm = self.vm.lock();
                        let rec = vm.heap.get_mut(me)?;
                        *slot_mut(rec, me, *slot)? = value;
                    } else {
                        self.record_interaction(
                            class,
                            class,
                            Some(me),
                            InteractionKind::FieldAccess,
                            8,
                            true,
                        );
                        let remote = self.remote.get().ok_or(VmError::DanglingReference(me))?;
                        remote.put_slot(me, *slot, value)?;
                    }
                }
                Op::GetSlotOf { obj, slot, dst } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    let value = if self.is_local(target) {
                        let vm = self.vm.lock();
                        let rec = vm.heap.get(target)?;
                        *slot_ref(rec, target, *slot)?
                    } else {
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.get_slot(target, *slot)?
                    };
                    let remote_access = !self.is_local(target);
                    if callee != class || remote_access {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            8,
                            remote_access,
                        );
                    }
                    self.write_reg(frame_id, *dst, value)?;
                }
                Op::PutSlotOf { obj, slot, src } => {
                    let target = self.read_reg_obj(frame_id, *obj)?;
                    let callee = self.class_of(target)?;
                    let value = self.read_reg(frame_id, *src)?;
                    let remote_access = !self.is_local(target);
                    if remote_access {
                        let remote = self
                            .remote
                            .get()
                            .ok_or(VmError::DanglingReference(target))?;
                        remote.put_slot(target, *slot, value)?;
                    } else {
                        let mut vm = self.vm.lock();
                        let rec = vm.heap.get_mut(target)?;
                        *slot_mut(rec, target, *slot)? = value;
                    }
                    if callee != class || remote_access {
                        self.record_interaction(
                            class,
                            callee,
                            Some(target),
                            InteractionKind::FieldAccess,
                            8,
                            remote_access,
                        );
                    }
                }
                Op::Native {
                    kind,
                    work_micros,
                    arg_bytes,
                    ret_bytes,
                } => {
                    let (my_kind, stateless_local) = {
                        let vm = self.vm.lock();
                        (vm.config.kind, vm.config.stateless_natives_local)
                    };
                    let bytes = *arg_bytes as u64 + *ret_bytes as u64;
                    let must_go_to_client = my_kind == VmKind::Surrogate
                        && native_requires_client(*kind, stateless_local);
                    if must_go_to_client {
                        self.hooks
                            .on_native(class, *kind, *work_micros, bytes, true);
                        self.charge_monitor_event();
                        let remote = self.remote.get().ok_or_else(|| {
                            VmError::RemoteFailure("client-bound native with no peer".into())
                        })?;
                        remote.native(class, *kind, *work_micros, *arg_bytes, *ret_bytes)?;
                    } else {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.native_base_micros + *work_micros as f64;
                            vm.charge_micros(cost);
                        }
                        self.hooks
                            .on_native(class, *kind, *work_micros, bytes, false);
                        self.charge_monitor_event();
                    }
                }
                Op::GetStatic {
                    class: target_class,
                    bytes,
                }
                | Op::PutStatic {
                    class: target_class,
                    bytes,
                } => {
                    let write = matches!(op, Op::PutStatic { .. });
                    let my_kind = self.vm.lock().config.kind;
                    if my_kind == VmKind::Surrogate {
                        // Static data is kept consistent by directing all
                        // access back to the client VM (paper §3.2).
                        self.hooks
                            .on_static_access(class, *target_class, *bytes as u64, true);
                        self.charge_monitor_event();
                        let remote = self.remote.get().ok_or_else(|| {
                            VmError::RemoteFailure("static access with no peer".into())
                        })?;
                        remote.static_access(class, *target_class, *bytes, write)?;
                    } else {
                        {
                            let mut vm = self.vm.lock();
                            let cost = vm.config.cost.static_access_micros;
                            vm.charge_micros(cost);
                            vm.statics_accesses += 1;
                        }
                        self.hooks
                            .on_static_access(class, *target_class, *bytes as u64, false);
                        self.charge_monitor_event();
                    }
                }
                Op::Clear { reg } => {
                    self.write_reg(frame_id, *reg, None)?;
                }
                Op::Repeat { n, body } => {
                    for _ in 0..*n {
                        self.exec_ops(body, frame_id, self_obj, class, depth, op_count)?;
                    }
                }
            }
        }
        Ok(())
    }

    // ---- flat-IR interpretation -------------------------------------------------

    /// Runs `(class, method)` on `self_obj` to completion under the flat
    /// interpreter: sets up an [`ExecState`] in the VM (so its registers
    /// are GC roots), drives bursts, and tears the state down, emitting
    /// the same hook events in the same order as [`Machine::call_local`].
    fn run_flat(
        &self,
        self_obj: Option<ObjectId>,
        class: ClassId,
        method: MethodId,
        args: &[ObjectId],
    ) -> VmResult<()> {
        if self.max_depth == 0 {
            return Err(VmError::CallDepthExceeded(0));
        }
        let (flat, sid, base_stats) = {
            let mut vm = self.vm.lock();
            let flat = vm.flat_program();
            let sites = flat.site_count() as usize;
            if vm.ic.len() < sites {
                vm.ic.resize(sites, IcEntry::INVALID);
            }
            if let Some(obj) = self_obj {
                let found = vm.heap.get(obj)?.class;
                if found != class {
                    return Err(VmError::ClassMismatch {
                        expected: class,
                        found,
                    });
                }
            }
            let entry = flat
                .method_entry(class, method)
                .ok_or_else(|| flat.resolution_error(class, method))?;
            let m = *flat.method(entry);
            let mut values = vec![None; Reg::COUNT];
            for (i, &a) in args.iter().take(Reg::COUNT).enumerate() {
                values[i] = Some(a);
            }
            let sid = vm.next_state;
            vm.next_state += 1;
            vm.exec_states.insert(
                sid,
                ExecState {
                    values,
                    frames: vec![FlatFrame {
                        base: 0,
                        ip: m.code_start,
                        class,
                        method,
                        self_obj,
                        loop_base: 0,
                    }],
                    loops: Vec::new(),
                },
            );
            (flat, sid, (vm.ic_hits, vm.ic_misses, vm.ops_executed))
        };

        let mut pending = PendingEvents::new();
        let result = self.flat_drive(sid, &flat, &mut pending);

        let run_stats = {
            let mut vm = self.vm.lock();
            if let Some(state) = vm.exec_states.remove(&sid) {
                if result.is_err() {
                    // The legacy tree-walker emits `on_method_exit` for
                    // every unwound frame, innermost first, even on error.
                    for fr in state.frames.iter().rev() {
                        pending.push(PendingEvent::MethodExit {
                            class: fr.class,
                            method: fr.method,
                        });
                    }
                }
            }
            (
                vm.ic_hits - base_stats.0,
                vm.ic_misses - base_stats.1,
                vm.ops_executed - base_stats.2,
            )
        };
        pending.flush(self.hooks.as_ref());
        let metrics = vm_metrics();
        metrics.0.add(run_stats.0);
        metrics.1.add(run_stats.1);
        metrics.2.add(run_stats.2);
        result
    }

    /// The burst driver: repeatedly executes a locked burst, flushes the
    /// queued hook events outside the lock, then services whatever made
    /// the burst exit (allocation, remote access) before re-entering.
    #[allow(clippy::too_many_lines)]
    fn flat_drive(
        &self,
        sid: u64,
        flat: &FlatProgram,
        pending: &mut PendingEvents,
    ) -> VmResult<()> {
        loop {
            let exit = {
                let mut vm = self.vm.lock();
                flat_burst(&mut vm, sid, flat, pending, self.max_depth)
            };
            // Deliver events queued up to the exit (or error) point before
            // acting on it — hook order must match the tree-walker's.
            pending.flush(self.hooks.as_ref());
            match exit? {
                Exit::Done => return Ok(()),
                Exit::Yield => {}
                Exit::Alloc {
                    creating,
                    class,
                    scalar_bytes,
                    ref_slots,
                    dst,
                } => {
                    let id = self.alloc_object(creating, class, scalar_bytes, ref_slots)?;
                    self.flat_write_reg(sid, dst, Some(id))?;
                }
                Exit::Invoke {
                    call,
                    target,
                    args,
                    n_args,
                } => {
                    let cs = *flat.call(call);
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    remote.invoke(
                        target,
                        cs.class,
                        cs.method,
                        cs.arg_bytes,
                        cs.ret_bytes,
                        &args[..n_args as usize],
                    )?;
                }
                Exit::Field {
                    caller,
                    target,
                    bytes,
                    write,
                } => {
                    let callee = self.class_of(target)?;
                    self.record_interaction(
                        caller,
                        callee,
                        Some(target),
                        InteractionKind::FieldAccess,
                        bytes as u64,
                        true,
                    );
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    remote.field_access(target, bytes, write)?;
                }
                Exit::SlotGet { target, slot, dst } => {
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    let value = remote.get_slot(target, slot)?;
                    self.flat_write_reg(sid, dst, value)?;
                }
                Exit::SlotPut {
                    target,
                    slot,
                    value,
                } => {
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    remote.put_slot(target, slot, value)?;
                }
                Exit::SlotGetOf {
                    caller,
                    target,
                    slot,
                    dst,
                } => {
                    let callee = self.class_of(target)?;
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    let value = remote.get_slot(target, slot)?;
                    self.record_interaction(
                        caller,
                        callee,
                        Some(target),
                        InteractionKind::FieldAccess,
                        8,
                        true,
                    );
                    self.flat_write_reg(sid, dst, value)?;
                }
                Exit::SlotPutOf {
                    caller,
                    target,
                    slot,
                    value,
                } => {
                    let callee = self.class_of(target)?;
                    let remote = self
                        .remote
                        .get()
                        .ok_or(VmError::DanglingReference(target))?;
                    remote.put_slot(target, slot, value)?;
                    self.record_interaction(
                        caller,
                        callee,
                        Some(target),
                        InteractionKind::FieldAccess,
                        8,
                        true,
                    );
                }
                Exit::NativeCall {
                    caller,
                    kind,
                    work_micros,
                    arg_bytes,
                    ret_bytes,
                } => {
                    let remote = self.remote.get().ok_or_else(|| {
                        VmError::RemoteFailure("client-bound native with no peer".into())
                    })?;
                    remote.native(caller, kind, work_micros, arg_bytes, ret_bytes)?;
                }
                Exit::StaticAccess {
                    accessor,
                    class,
                    bytes,
                    write,
                } => {
                    let remote = self.remote.get().ok_or_else(|| {
                        VmError::RemoteFailure("static access with no peer".into())
                    })?;
                    remote.static_access(accessor, class, bytes, write)?;
                }
            }
        }
    }

    /// Writes a register of the current (topmost) frame of flat state
    /// `sid` — used by the driver to store allocation and remote-read
    /// results back into the window.
    fn flat_write_reg(&self, sid: u64, reg: u8, value: Option<ObjectId>) -> VmResult<()> {
        let mut vm = self.vm.lock();
        let state = vm.exec_states.get_mut(&sid).expect("live exec state");
        let f = *state.frames.last().expect("exec state has a frame");
        reg_set(&mut state.values, f.base, reg, value)
    }
}

#[inline]
fn reg_get(values: &[Option<ObjectId>], base: u32, reg: u8) -> VmResult<Option<ObjectId>> {
    if (reg as usize) < Reg::COUNT {
        Ok(values[base as usize + reg as usize])
    } else {
        Err(VmError::InvalidRegister(Reg(reg)))
    }
}

#[inline]
fn reg_obj(values: &[Option<ObjectId>], base: u32, reg: u8) -> VmResult<ObjectId> {
    reg_get(values, base, reg)?.ok_or(VmError::NullRegister(Reg(reg)))
}

#[inline]
fn reg_set(
    values: &mut [Option<ObjectId>],
    base: u32,
    reg: u8,
    value: Option<ObjectId>,
) -> VmResult<()> {
    if (reg as usize) < Reg::COUNT {
        values[base as usize + reg as usize] = value;
        Ok(())
    } else {
        Err(VmError::InvalidRegister(Reg(reg)))
    }
}

/// Executes up to [`BURST_OPS`] flat ops of state `sid` under one VM lock.
///
/// Observable events are pushed onto `pending` (and their monitor cost
/// charged to the hook clock immediately); anything that needs the
/// allocator, the GC, or the peer returns an [`Exit`] for the unlocked
/// driver. Mutator charges reproduce the tree-walker's exact expressions
/// and order, so both interpreters tick the virtual clock identically.
#[allow(clippy::too_many_lines)]
fn flat_burst(
    vm: &mut Vm,
    sid: u64,
    flat: &FlatProgram,
    pending: &mut PendingEvents,
    max_depth: usize,
) -> VmResult<Exit> {
    let Vm {
        config,
        heap,
        exec_states,
        ic,
        ic_hits,
        ic_misses,
        mutator_seconds,
        hook_seconds,
        ops_executed,
        statics_accesses,
        ..
    } = vm;
    let speed = config.speed_factor;
    let cost = config.cost;
    let monitor = cost.monitor_event_micros;
    let my_kind = config.kind;
    let stateless_local = config.stateless_natives_local;
    let code = flat.code();
    let state = exec_states.get_mut(&sid).expect("live exec state");
    // The hot loop works on a local copy of the top frame; resumable exits
    // write it back. Error returns skip the write-back deliberately: the
    // whole state is torn down by `run_flat` on the error path.
    let mut f = *state.frames.last().expect("exec state has a frame");
    let mut budget = BURST_OPS;

    macro_rules! save {
        () => {
            *state.frames.last_mut().expect("exec state has a frame") = f;
        };
    }
    // Monitor-event charge for one queued hook event (matches the legacy
    // `charge_monitor_event`, which only charges when the cost is set).
    macro_rules! hook_charge {
        () => {
            if monitor > 0.0 {
                *hook_seconds += monitor / 1e6 / speed;
            }
        };
    }

    loop {
        if budget == 0 {
            save!();
            return Ok(Exit::Yield);
        }
        budget -= 1;
        let op = code[f.ip as usize];
        match op {
            FlatOp::Work { micros } => {
                *ops_executed += 1;
                *mutator_seconds += micros as f64 / 1e6 / speed;
                pending.push(PendingEvent::Work {
                    class: f.class,
                    micros: micros as f64,
                });
                hook_charge!();
                f.ip += 1;
                save!();
                // Exit so the queued `on_work` reaches the hooks (and
                // through them the periodic offload evaluator) before the
                // next op runs — exactly where the tree-walker fired it.
                return Ok(Exit::Yield);
            }
            FlatOp::New {
                class,
                scalar_bytes,
                ref_slots,
                dst,
            } => {
                *ops_executed += 1;
                f.ip += 1;
                save!();
                return Ok(Exit::Alloc {
                    creating: f.class,
                    class,
                    scalar_bytes,
                    ref_slots,
                    dst,
                });
            }
            FlatOp::Call { call } | FlatOp::CallStatic { call } => {
                *ops_executed += 1;
                let cs = *flat.call(call);
                let target = if cs.is_static {
                    None
                } else {
                    Some(reg_obj(&state.values, f.base, cs.obj)?)
                };
                let arg_regs = flat.call_args(call);
                let mut args = [ObjectId(0); Reg::COUNT];
                let n_args = arg_regs.len();
                for (i, &r) in arg_regs.iter().enumerate() {
                    args[i] = reg_obj(&state.values, f.base, r)?;
                }
                let bytes = cs.arg_bytes as u64 + cs.ret_bytes as u64;
                *mutator_seconds += cost.invoke_micros / 1e6 / speed;

                if let Some(t) = target {
                    // Local-vs-remote check through the inline cache: a
                    // monomorphic site hits on one compare of (id, epoch).
                    let epoch = heap.locality_epoch();
                    let entry = &mut ic[cs.ic as usize];
                    let local_class = if entry.target == t && entry.epoch == epoch {
                        *ic_hits += 1;
                        Some(entry.class)
                    } else if let Ok(rec) = heap.get(t) {
                        *ic_misses += 1;
                        *entry = IcEntry {
                            target: t,
                            class: rec.class,
                            epoch,
                        };
                        Some(rec.class)
                    } else {
                        *ic_misses += 1;
                        None
                    };
                    match local_class {
                        Some(found) => {
                            pending.push(PendingEvent::Interaction(Interaction {
                                caller: f.class,
                                callee: cs.class,
                                target: Some(t),
                                kind: InteractionKind::Invocation,
                                bytes,
                                remote: false,
                            }));
                            hook_charge!();
                            if state.frames.len() >= max_depth {
                                return Err(VmError::CallDepthExceeded(max_depth));
                            }
                            if found != cs.class {
                                return Err(VmError::ClassMismatch {
                                    expected: cs.class,
                                    found,
                                });
                            }
                            if cs.target == UNRESOLVED {
                                return Err(flat.resolution_error(cs.class, cs.method));
                            }
                            let callee = flat.method(cs.target);
                            f.ip += 1;
                            save!();
                            let base = state.values.len() as u32;
                            state.values.resize(state.values.len() + Reg::COUNT, None);
                            for (i, a) in args[..n_args].iter().enumerate() {
                                state.values[base as usize + i] = Some(*a);
                            }
                            f = FlatFrame {
                                base,
                                ip: callee.code_start,
                                class: cs.class,
                                method: cs.method,
                                self_obj: Some(t),
                                loop_base: state.loops.len() as u32,
                            };
                            state.frames.push(f);
                        }
                        None => {
                            pending.push(PendingEvent::Interaction(Interaction {
                                caller: f.class,
                                callee: cs.class,
                                target: Some(t),
                                kind: InteractionKind::Invocation,
                                bytes,
                                remote: true,
                            }));
                            hook_charge!();
                            f.ip += 1;
                            save!();
                            return Ok(Exit::Invoke {
                                call,
                                target: t,
                                args,
                                n_args: n_args as u8,
                            });
                        }
                    }
                } else {
                    // Static: runs locally on whichever VM invokes it;
                    // interaction recorded only across classes.
                    if cs.class != f.class {
                        pending.push(PendingEvent::Interaction(Interaction {
                            caller: f.class,
                            callee: cs.class,
                            target: None,
                            kind: InteractionKind::Invocation,
                            bytes,
                            remote: false,
                        }));
                        hook_charge!();
                    }
                    if state.frames.len() >= max_depth {
                        return Err(VmError::CallDepthExceeded(max_depth));
                    }
                    if cs.target == UNRESOLVED {
                        return Err(flat.resolution_error(cs.class, cs.method));
                    }
                    let callee = flat.method(cs.target);
                    f.ip += 1;
                    save!();
                    let base = state.values.len() as u32;
                    state.values.resize(state.values.len() + Reg::COUNT, None);
                    for (i, a) in args[..n_args].iter().enumerate() {
                        state.values[base as usize + i] = Some(*a);
                    }
                    f = FlatFrame {
                        base,
                        ip: callee.code_start,
                        class: cs.class,
                        method: cs.method,
                        self_obj: None,
                        loop_base: state.loops.len() as u32,
                    };
                    state.frames.push(f);
                }
            }
            FlatOp::Read {
                obj,
                bytes,
                ic: site,
            }
            | FlatOp::Write {
                obj,
                bytes,
                ic: site,
            } => {
                *ops_executed += 1;
                let write = matches!(op, FlatOp::Write { .. });
                let target = reg_obj(&state.values, f.base, obj)?;
                let epoch = heap.locality_epoch();
                let entry = &mut ic[site as usize];
                let local_class = if entry.target == target && entry.epoch == epoch {
                    *ic_hits += 1;
                    Some(entry.class)
                } else if let Ok(rec) = heap.get(target) {
                    *ic_misses += 1;
                    *entry = IcEntry {
                        target,
                        class: rec.class,
                        epoch,
                    };
                    Some(rec.class)
                } else {
                    *ic_misses += 1;
                    None
                };
                match local_class {
                    Some(callee) => {
                        *mutator_seconds += cost.field_access_micros / 1e6 / speed;
                        if callee != f.class {
                            pending.push(PendingEvent::Interaction(Interaction {
                                caller: f.class,
                                callee,
                                target: Some(target),
                                kind: InteractionKind::FieldAccess,
                                bytes: bytes as u64,
                                remote: false,
                            }));
                            hook_charge!();
                        }
                        f.ip += 1;
                    }
                    None => {
                        f.ip += 1;
                        save!();
                        return Ok(Exit::Field {
                            caller: f.class,
                            target,
                            bytes,
                            write,
                        });
                    }
                }
            }
            FlatOp::GetSlot { slot, dst } => {
                *ops_executed += 1;
                let me = f.self_obj.ok_or_else(|| {
                    VmError::InvalidProgram("self slot access in static method".into())
                })?;
                match heap.get(me) {
                    Ok(rec) => {
                        let value = *slot_ref(rec, me, slot)?;
                        reg_set(&mut state.values, f.base, dst, value)?;
                        f.ip += 1;
                    }
                    Err(_) => {
                        // Receiver migrated away mid-method: remote access.
                        pending.push(PendingEvent::Interaction(Interaction {
                            caller: f.class,
                            callee: f.class,
                            target: Some(me),
                            kind: InteractionKind::FieldAccess,
                            bytes: 8,
                            remote: true,
                        }));
                        hook_charge!();
                        f.ip += 1;
                        save!();
                        return Ok(Exit::SlotGet {
                            target: me,
                            slot,
                            dst,
                        });
                    }
                }
            }
            FlatOp::PutSlot { slot, src } => {
                *ops_executed += 1;
                let me = f.self_obj.ok_or_else(|| {
                    VmError::InvalidProgram("self slot access in static method".into())
                })?;
                let value = reg_get(&state.values, f.base, src)?;
                match heap.get_mut(me) {
                    Ok(rec) => {
                        *slot_mut(rec, me, slot)? = value;
                        f.ip += 1;
                    }
                    Err(_) => {
                        pending.push(PendingEvent::Interaction(Interaction {
                            caller: f.class,
                            callee: f.class,
                            target: Some(me),
                            kind: InteractionKind::FieldAccess,
                            bytes: 8,
                            remote: true,
                        }));
                        hook_charge!();
                        f.ip += 1;
                        save!();
                        return Ok(Exit::SlotPut {
                            target: me,
                            slot,
                            value,
                        });
                    }
                }
            }
            FlatOp::GetSlotOf { obj, slot, dst } => {
                *ops_executed += 1;
                let target = reg_obj(&state.values, f.base, obj)?;
                match heap.get(target) {
                    Ok(rec) => {
                        let callee = rec.class;
                        let value = *slot_ref(rec, target, slot)?;
                        if callee != f.class {
                            pending.push(PendingEvent::Interaction(Interaction {
                                caller: f.class,
                                callee,
                                target: Some(target),
                                kind: InteractionKind::FieldAccess,
                                bytes: 8,
                                remote: false,
                            }));
                            hook_charge!();
                        }
                        reg_set(&mut state.values, f.base, dst, value)?;
                        f.ip += 1;
                    }
                    Err(_) => {
                        f.ip += 1;
                        save!();
                        return Ok(Exit::SlotGetOf {
                            caller: f.class,
                            target,
                            slot,
                            dst,
                        });
                    }
                }
            }
            FlatOp::PutSlotOf { obj, slot, src } => {
                *ops_executed += 1;
                let target = reg_obj(&state.values, f.base, obj)?;
                if heap.contains(target) {
                    let value = reg_get(&state.values, f.base, src)?;
                    let rec = heap.get_mut(target).expect("contains() checked");
                    let callee = rec.class;
                    *slot_mut(rec, target, slot)? = value;
                    if callee != f.class {
                        pending.push(PendingEvent::Interaction(Interaction {
                            caller: f.class,
                            callee,
                            target: Some(target),
                            kind: InteractionKind::FieldAccess,
                            bytes: 8,
                            remote: false,
                        }));
                        hook_charge!();
                    }
                    f.ip += 1;
                } else {
                    let value = reg_get(&state.values, f.base, src)?;
                    f.ip += 1;
                    save!();
                    return Ok(Exit::SlotPutOf {
                        caller: f.class,
                        target,
                        slot,
                        value,
                    });
                }
            }
            FlatOp::Native {
                kind,
                work_micros,
                arg_bytes,
                ret_bytes,
            } => {
                *ops_executed += 1;
                let bytes = arg_bytes as u64 + ret_bytes as u64;
                let must_go_to_client =
                    my_kind == VmKind::Surrogate && native_requires_client(kind, stateless_local);
                if must_go_to_client {
                    pending.push(PendingEvent::Native {
                        caller: f.class,
                        kind,
                        work_micros,
                        bytes,
                        remote: true,
                    });
                    hook_charge!();
                    f.ip += 1;
                    save!();
                    return Ok(Exit::NativeCall {
                        caller: f.class,
                        kind,
                        work_micros,
                        arg_bytes,
                        ret_bytes,
                    });
                }
                *mutator_seconds += (cost.native_base_micros + work_micros as f64) / 1e6 / speed;
                pending.push(PendingEvent::Native {
                    caller: f.class,
                    kind,
                    work_micros,
                    bytes,
                    remote: false,
                });
                hook_charge!();
                f.ip += 1;
            }
            FlatOp::GetStatic { class, bytes } | FlatOp::PutStatic { class, bytes } => {
                *ops_executed += 1;
                let write = matches!(op, FlatOp::PutStatic { .. });
                if my_kind == VmKind::Surrogate {
                    pending.push(PendingEvent::StaticAccess {
                        accessor: f.class,
                        class,
                        bytes: bytes as u64,
                        remote: true,
                    });
                    hook_charge!();
                    f.ip += 1;
                    save!();
                    return Ok(Exit::StaticAccess {
                        accessor: f.class,
                        class,
                        bytes,
                        write,
                    });
                }
                *mutator_seconds += cost.static_access_micros / 1e6 / speed;
                *statics_accesses += 1;
                pending.push(PendingEvent::StaticAccess {
                    accessor: f.class,
                    class,
                    bytes: bytes as u64,
                    remote: false,
                });
                hook_charge!();
                f.ip += 1;
            }
            FlatOp::Clear { reg } => {
                *ops_executed += 1;
                reg_set(&mut state.values, f.base, reg, None)?;
                f.ip += 1;
            }
            FlatOp::Loop { n, end } => {
                if n == 0 {
                    f.ip = end + 1;
                } else {
                    state.loops.push(n);
                    f.ip += 1;
                }
            }
            FlatOp::EndLoop { start } => {
                let counter = state.loops.last_mut().expect("active loop counter");
                *counter -= 1;
                if *counter == 0 {
                    state.loops.pop();
                    f.ip += 1;
                } else {
                    f.ip = start;
                }
            }
            FlatOp::Return => {
                pending.push(PendingEvent::MethodExit {
                    class: f.class,
                    method: f.method,
                });
                state.frames.pop();
                state.values.truncate(f.base as usize);
                state.loops.truncate(f.loop_base as usize);
                match state.frames.last() {
                    Some(parent) => f = *parent,
                    None => return Ok(Exit::Done),
                }
            }
        }
    }
}

fn slot_ref(rec: &ObjectRecord, id: ObjectId, slot: u16) -> VmResult<&Option<ObjectId>> {
    rec.slots.get(slot as usize).ok_or(VmError::SlotOutOfRange {
        object: id,
        slot,
        slots: rec.slots.len() as u16,
    })
}

fn slot_mut(rec: &mut ObjectRecord, id: ObjectId, slot: u16) -> VmResult<&mut Option<ObjectId>> {
    let slots = rec.slots.len() as u16;
    rec.slots
        .get_mut(slot as usize)
        .ok_or(VmError::SlotOutOfRange {
            object: id,
            slot,
            slots,
        })
}
