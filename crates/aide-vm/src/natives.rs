//! Native methods and their offloading semantics.
//!
//! Java applications ultimately call native methods for certain functions.
//! Natives cannot be migrated (they are implemented in native code) and, by
//! default, AIDE directs all native invocations back to the client VM so
//! applications appear to execute on the client (paper §3.2). The paper's
//! §5.2 "Native" enhancement observes that many natives are *stateless*
//! (math functions, string copies) and can safely execute on whichever
//! device invoked them; this module carries that annotation.

use serde::{Deserialize, Serialize};

/// The kinds of native methods the runtime models, annotated by operation
/// type as the paper proposes for the standard Java library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NativeKind {
    /// Stateless mathematical functions (`Math.sin`, `Math.sqrt`, ...).
    Math,
    /// Stateless string operations (copies, comparisons).
    StringOp,
    /// Framebuffer / screen drawing — must execute on the client, which
    /// owns the display.
    Framebuffer,
    /// Widget-toolkit operations backed by client-local UI state.
    UiToolkit,
    /// File operations; movable in principle "with some work" (paper §5.1)
    /// but client-bound by default.
    FileIo,
    /// Reads of host-specific system state (`System.properties` and
    /// friends) — client-bound.
    SystemInfo,
}

impl NativeKind {
    /// All modelled native kinds.
    pub const ALL: [NativeKind; 6] = [
        NativeKind::Math,
        NativeKind::StringOp,
        NativeKind::Framebuffer,
        NativeKind::UiToolkit,
        NativeKind::FileIo,
        NativeKind::SystemInfo,
    ];

    /// Returns `true` if the native is stateless/idempotent and therefore
    /// safe to execute on the device where it is invoked, provided the
    /// implementation has the same interface and behaviour on both devices.
    #[inline]
    pub fn is_stateless(self) -> bool {
        matches!(self, NativeKind::Math | NativeKind::StringOp)
    }

    /// Returns `true` if the native must always execute on the client
    /// device (it touches hardware or host state only the client has).
    #[inline]
    pub fn is_client_only(self) -> bool {
        matches!(
            self,
            NativeKind::Framebuffer | NativeKind::UiToolkit | NativeKind::SystemInfo
        )
    }

    /// A short stable name for traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            NativeKind::Math => "math",
            NativeKind::StringOp => "string",
            NativeKind::Framebuffer => "framebuffer",
            NativeKind::UiToolkit => "ui",
            NativeKind::FileIo => "file",
            NativeKind::SystemInfo => "sysinfo",
        }
    }
}

/// Where a native invocation should execute, given the invoking device and
/// the platform's stateless-native enhancement setting.
///
/// Returns `true` when the native must run on the *client* even though the
/// invoking code is executing on the surrogate (i.e. the invocation becomes
/// a remote call back to the client).
pub fn native_requires_client(kind: NativeKind, stateless_run_local: bool) -> bool {
    if kind.is_stateless() && stateless_run_local {
        return false;
    }
    // Default policy: every native executes on the client (paper §3.2).
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_and_string_are_stateless() {
        assert!(NativeKind::Math.is_stateless());
        assert!(NativeKind::StringOp.is_stateless());
        assert!(!NativeKind::Framebuffer.is_stateless());
        assert!(!NativeKind::FileIo.is_stateless());
    }

    #[test]
    fn display_and_host_state_are_client_only() {
        assert!(NativeKind::Framebuffer.is_client_only());
        assert!(NativeKind::UiToolkit.is_client_only());
        assert!(NativeKind::SystemInfo.is_client_only());
        assert!(!NativeKind::Math.is_client_only());
        assert!(!NativeKind::FileIo.is_client_only());
    }

    #[test]
    fn default_policy_pins_all_natives_to_client() {
        for kind in NativeKind::ALL {
            assert!(native_requires_client(kind, false), "{kind:?}");
        }
    }

    #[test]
    fn enhancement_releases_only_stateless_natives() {
        for kind in NativeKind::ALL {
            let released = !native_requires_client(kind, true);
            assert_eq!(released, kind.is_stateless(), "{kind:?}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = NativeKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NativeKind::ALL.len());
    }
}
