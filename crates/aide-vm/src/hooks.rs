//! Runtime instrumentation hooks.
//!
//! The paper instruments the JVM's code for method invocations, data-field
//! accesses, object creation, and object deletion (§3.4). This module is the
//! equivalent interposition point of our VM: every observable event is
//! delivered to a [`RuntimeHooks`] implementation. AIDE's monitoring module
//! and the emulator's trace recorder are both hook implementations.
//!
//! Hooks receive a `remote` flag on interaction events: `true` when the
//! interaction crossed the client/surrogate boundary (used for Figure 8's
//! remote-invocation accounting).

use serde::{Deserialize, Serialize};

use crate::gc::GcReport;
use crate::ids::{ClassId, MethodId, ObjectId};
use crate::natives::NativeKind;

/// Whether an interaction was a method invocation or a data-field access.
///
/// Table 2's 1.2 million interaction events for JavaNote are "almost evenly
/// divided between invocations and accesses".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InteractionKind {
    /// A method invocation (parameters out, return value back).
    Invocation,
    /// A data-field read or write.
    FieldAccess,
}

/// An inter-class interaction observed by the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interaction {
    /// The class whose code performed the interaction.
    pub caller: ClassId,
    /// The class of the target object.
    pub callee: ClassId,
    /// The target object (`None` for static-method invocations, which have
    /// no receiver).
    pub target: Option<ObjectId>,
    /// Invocation or field access.
    pub kind: InteractionKind,
    /// Total payload bytes (parameters plus return value, or field bytes).
    pub bytes: u64,
    /// `true` if the interaction crossed the VM boundary.
    pub remote: bool,
}

/// Observer of VM execution events.
///
/// All methods have empty default implementations so implementors override
/// only what they need. Implementations must be cheap: they run inline with
/// every interpreted instruction (the paper measured an 11% monitoring
/// overhead for JavaNote; see `exp_monitor_overhead`).
#[allow(unused_variables)]
pub trait RuntimeHooks: Send + Sync {
    /// An inter-class interaction (invocation or field access) occurred.
    fn on_interaction(&self, event: Interaction) {}

    /// An object was created. `bytes` is the full heap footprint.
    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {}

    /// `objects` instances of `class` (total footprint `bytes`) were
    /// reclaimed by a collection cycle.
    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {}

    /// `micros` of exclusive CPU time accrued in `class` (Figure 9
    /// attribution: nested calls are attributed to the callee).
    fn on_work(&self, class: ClassId, micros: f64) {}

    /// A native method of `kind` was invoked by code of `caller`, carrying
    /// `bytes` of payload and burning `work_micros` of client-speed CPU.
    /// `remote` is `true` when the invocation had to travel back to the
    /// client from the surrogate.
    fn on_native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        bytes: u64,
        remote: bool,
    ) {
    }

    /// Static data of `class` was accessed by code of `accessor`.
    /// `remote` is `true` when the access travelled to the client.
    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, remote: bool) {}

    /// A method body finished executing (used for call-tree accounting).
    fn on_method_exit(&self, class: ClassId, method: MethodId) {}

    /// A garbage-collection cycle completed.
    fn on_gc(&self, report: &GcReport) {}
}

/// One deferred hook event, queued by the flat interpreter's burst loop.
///
/// The tree-walking interpreter pays an `Arc<Mutex<Vm>>` unlock/relock plus
/// a dynamic-dispatch hook call at every instrumented op. The flat
/// interpreter instead executes a burst of ops under one lock, pushing
/// observable events onto a [`PendingEvents`] queue, and drains the queue to
/// the real [`RuntimeHooks`] *outside* the lock — same events, same order,
/// amortised dispatch. Allocation, free, and GC events are not queued: they
/// are delivered by the allocation/collection path itself, which already
/// runs between bursts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PendingEvent {
    /// An inter-class interaction ([`RuntimeHooks::on_interaction`]).
    Interaction(Interaction),
    /// Exclusive CPU time accrued ([`RuntimeHooks::on_work`]).
    Work {
        /// Class the work is attributed to.
        class: ClassId,
        /// Microseconds of client-speed CPU.
        micros: f64,
    },
    /// A native invocation ([`RuntimeHooks::on_native`]).
    Native {
        /// Class whose code invoked the native.
        caller: ClassId,
        /// Which native.
        kind: NativeKind,
        /// CPU burned by the native.
        work_micros: u32,
        /// Payload bytes (parameters plus results).
        bytes: u64,
        /// `true` when the call travelled back to the client.
        remote: bool,
    },
    /// A static-data access ([`RuntimeHooks::on_static_access`]).
    StaticAccess {
        /// Class whose code performed the access.
        accessor: ClassId,
        /// Class owning the static data.
        class: ClassId,
        /// Bytes accessed.
        bytes: u64,
        /// `true` when the access travelled to the client.
        remote: bool,
    },
    /// A method body finished ([`RuntimeHooks::on_method_exit`]).
    MethodExit {
        /// Class owning the method.
        class: ClassId,
        /// The method that returned.
        method: MethodId,
    },
}

/// FIFO queue of [`PendingEvent`]s awaiting delivery to a hook sink.
///
/// The backing buffer is reused across flushes, so steady-state batched
/// dispatch allocates nothing.
#[derive(Debug, Default)]
pub struct PendingEvents {
    queue: Vec<PendingEvent>,
}

impl PendingEvents {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PendingEvents::default()
    }

    /// Queues one event.
    #[inline]
    pub fn push(&mut self, event: PendingEvent) {
        self.queue.push(event);
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Drains every queued event to `hooks`, in the order queued.
    pub fn flush(&mut self, hooks: &dyn RuntimeHooks) {
        for event in self.queue.drain(..) {
            match event {
                PendingEvent::Interaction(i) => hooks.on_interaction(i),
                PendingEvent::Work { class, micros } => hooks.on_work(class, micros),
                PendingEvent::Native {
                    caller,
                    kind,
                    work_micros,
                    bytes,
                    remote,
                } => hooks.on_native(caller, kind, work_micros, bytes, remote),
                PendingEvent::StaticAccess {
                    accessor,
                    class,
                    bytes,
                    remote,
                } => hooks.on_static_access(accessor, class, bytes, remote),
                PendingEvent::MethodExit { class, method } => hooks.on_method_exit(class, method),
            }
        }
    }
}

/// A hook implementation that ignores every event (monitoring off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullHooks;

impl RuntimeHooks for NullHooks {}

/// Fans events out to several hook implementations in order.
///
/// # Examples
///
/// ```
/// use aide_vm::{HookChain, NullHooks, RuntimeHooks};
/// use std::sync::Arc;
///
/// let chain = HookChain::new(vec![Arc::new(NullHooks), Arc::new(NullHooks)]);
/// chain.on_work(aide_vm::ClassId(0), 1.0); // delivered to both
/// ```
#[derive(Clone)]
pub struct HookChain {
    hooks: Vec<std::sync::Arc<dyn RuntimeHooks>>,
}

impl std::fmt::Debug for HookChain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookChain")
            .field("len", &self.hooks.len())
            .finish()
    }
}

impl HookChain {
    /// Creates a chain delivering events to `hooks` in order.
    pub fn new(hooks: Vec<std::sync::Arc<dyn RuntimeHooks>>) -> Self {
        HookChain { hooks }
    }

    /// Number of chained hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Returns `true` if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl RuntimeHooks for HookChain {
    fn on_interaction(&self, event: Interaction) {
        for h in &self.hooks {
            h.on_interaction(event);
        }
    }

    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        for h in &self.hooks {
            h.on_alloc(class, object, bytes);
        }
    }

    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        for h in &self.hooks {
            h.on_free(class, objects, bytes);
        }
    }

    fn on_work(&self, class: ClassId, micros: f64) {
        for h in &self.hooks {
            h.on_work(class, micros);
        }
    }

    fn on_native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        bytes: u64,
        remote: bool,
    ) {
        for h in &self.hooks {
            h.on_native(caller, kind, work_micros, bytes, remote);
        }
    }

    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, remote: bool) {
        for h in &self.hooks {
            h.on_static_access(accessor, class, bytes, remote);
        }
    }

    fn on_method_exit(&self, class: ClassId, method: MethodId) {
        for h in &self.hooks {
            h.on_method_exit(class, method);
        }
    }

    fn on_gc(&self, report: &GcReport) {
        for h in &self.hooks {
            h.on_gc(report);
        }
    }
}

/// A hook that counts events — useful in tests and overhead experiments.
#[derive(Debug, Default)]
pub struct CountingHooks {
    /// Interaction events seen.
    pub interactions: std::sync::atomic::AtomicU64,
    /// Allocation events seen.
    pub allocs: std::sync::atomic::AtomicU64,
    /// Free events seen.
    pub frees: std::sync::atomic::AtomicU64,
    /// Native invocations seen.
    pub natives: std::sync::atomic::AtomicU64,
    /// Static accesses seen.
    pub statics: std::sync::atomic::AtomicU64,
    /// GC reports seen.
    pub gcs: std::sync::atomic::AtomicU64,
    /// Total exclusive work microseconds observed (sum, as integer micros).
    pub work_micros: std::sync::atomic::AtomicU64,
}

impl CountingHooks {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        CountingHooks::default()
    }
}

impl RuntimeHooks for CountingHooks {
    fn on_interaction(&self, _: Interaction) {
        self.interactions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_alloc(&self, _: ClassId, _: ObjectId, _: u64) {
        self.allocs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_free(&self, _: ClassId, objects: u64, _: u64) {
        self.frees
            .fetch_add(objects, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_work(&self, _: ClassId, micros: f64) {
        self.work_micros
            .fetch_add(micros.round() as u64, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_native(&self, _: ClassId, _: NativeKind, _: u32, _: u64, _: bool) {
        self.natives
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_static_access(&self, _: ClassId, _: ClassId, _: u64, _: bool) {
        self.statics
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn on_gc(&self, _: &GcReport) {
        self.gcs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn null_hooks_accept_all_events() {
        let h = NullHooks;
        h.on_interaction(Interaction {
            caller: ClassId(0),
            callee: ClassId(1),
            target: Some(ObjectId::client(0)),
            kind: InteractionKind::Invocation,
            bytes: 8,
            remote: false,
        });
        h.on_work(ClassId(0), 1.5);
        h.on_gc(&GcReport {
            cycle: 1,
            capacity: 100,
            used_after: 0,
            free_after: 100,
            freed_objects: 0,
            freed_bytes: 0,
            duration_micros: 0.0,
        });
    }

    #[test]
    fn chain_delivers_to_all_members() {
        let a = Arc::new(CountingHooks::new());
        let b = Arc::new(CountingHooks::new());
        let chain = HookChain::new(vec![a.clone(), b.clone()]);
        assert_eq!(chain.len(), 2);
        chain.on_alloc(ClassId(0), ObjectId::client(0), 64);
        chain.on_native(ClassId(0), NativeKind::Math, 2, 8, true);
        chain.on_work(ClassId(0), 2.0);
        assert_eq!(a.allocs.load(Ordering::Relaxed), 1);
        assert_eq!(b.allocs.load(Ordering::Relaxed), 1);
        assert_eq!(a.natives.load(Ordering::Relaxed), 1);
        assert_eq!(b.work_micros.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_chain_is_permitted() {
        let chain = HookChain::new(vec![]);
        assert!(chain.is_empty());
        chain.on_work(ClassId(0), 1.0);
    }

    #[test]
    fn pending_events_flush_fifo_and_reuse_buffer() {
        #[derive(Default)]
        struct Order(std::sync::Mutex<Vec<&'static str>>);
        impl RuntimeHooks for Order {
            fn on_interaction(&self, _: Interaction) {
                self.0.lock().unwrap().push("interaction");
            }
            fn on_work(&self, _: ClassId, _: f64) {
                self.0.lock().unwrap().push("work");
            }
            fn on_method_exit(&self, _: ClassId, _: MethodId) {
                self.0.lock().unwrap().push("exit");
            }
        }
        let sink = Order::default();
        let mut pending = PendingEvents::new();
        assert!(pending.is_empty());
        pending.push(PendingEvent::Work {
            class: ClassId(0),
            micros: 1.0,
        });
        pending.push(PendingEvent::Interaction(Interaction {
            caller: ClassId(0),
            callee: ClassId(1),
            target: None,
            kind: InteractionKind::Invocation,
            bytes: 8,
            remote: false,
        }));
        pending.push(PendingEvent::MethodExit {
            class: ClassId(0),
            method: MethodId(0),
        });
        assert_eq!(pending.len(), 3);
        pending.flush(&sink);
        assert!(pending.is_empty());
        pending.flush(&sink); // flushing an empty queue is a no-op
        assert_eq!(*sink.0.lock().unwrap(), vec!["work", "interaction", "exit"]);
    }

    #[test]
    fn hooks_are_object_safe_and_send_sync() {
        fn assert_hooks<T: RuntimeHooks + Send + Sync>() {}
        assert_hooks::<NullHooks>();
        assert_hooks::<HookChain>();
        assert_hooks::<CountingHooks>();
        let _boxed: Box<dyn RuntimeHooks> = Box::new(NullHooks);
    }
}
