//! Pre-decoded flat IR for the register VM.
//!
//! The seed interpreter tree-walks nested `Vec<Op>` method bodies on every
//! pass: each `Op::Repeat { n, body }` re-traverses its body vector per
//! iteration, every call re-resolves its callee through the class table,
//! and every operand is re-decoded from the enum on each execution. This
//! module lowers a [`Program`] **once** into a contiguous, pre-decoded
//! instruction stream (the register-VM shape):
//!
//! * `Repeat` bodies are flattened into [`FlatOp::Loop`]/[`FlatOp::EndLoop`]
//!   pairs with explicit backward jumps and a per-frame loop-counter stack —
//!   no tree re-traversal at run time;
//! * every method body ends with an explicit [`FlatOp::Return`], so the
//!   interpreter never needs to track body extents;
//! * call sites are pre-resolved to dense flat-method indices (a
//!   [`CallSite`] side table) and their argument registers live in one
//!   shared arena;
//! * class and method names are interned into a [`Sym`] string table;
//! * each op that performs the local-vs-remote reference check
//!   ([`FlatOp::Call`], [`FlatOp::Read`], [`FlatOp::Write`]) is assigned a
//!   dense *inline-cache site id* indexing the VM's per-site cache of
//!   `(object, class, locality-epoch)` — a monomorphic site's check becomes
//!   a single compare-and-branch.
//!
//! `GetSlot`/`GetSlotOf`-family ops carry no cache site: reading a slot
//! needs the object record anyway, so the flat interpreter's single heap
//! lookup already subsumes the locality check.
//!
//! The interpreter executing this IR lives in [`crate::machine`]; this
//! module is purely the compiler and the layout types.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::VmError;
use crate::ids::{ClassId, MethodId, Reg};
use crate::natives::NativeKind;
use crate::program::{Op, Program};

/// An interned string: an index into the flat program's string table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub u32);

/// Sentinel flat-method index for call sites whose target could not be
/// resolved at compile time. Unreachable for programs built through
/// [`Program::new`] (validation guarantees every callee exists); possible
/// only for deserialized programs that bypassed validation, in which case
/// executing the site reproduces the tree-walker's lazy lookup error.
pub const UNRESOLVED: u32 = u32::MAX;

/// Sentinel inline-cache site id for ops that carry no cache (static calls).
pub const NO_SITE: u32 = u32::MAX;

/// One pre-decoded instruction of the flat IR.
///
/// Operands are raw `u8` register indices and `u32` slots — no nested
/// vectors, no heap indirection. Wide call-site payloads live in the
/// [`CallSite`] side table so the op itself stays small and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlatOp {
    /// Burn `micros` microseconds of client-speed CPU.
    Work {
        /// Microseconds of client-speed CPU time.
        micros: u32,
    },
    /// Allocate an object of `class` and store the reference in `dst`.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// Scalar payload size in bytes.
        scalar_bytes: u32,
        /// Number of object-reference slots.
        ref_slots: u16,
        /// Destination register.
        dst: u8,
    },
    /// Invoke through [`CallSite`] `call` (dynamic: receiver in a register).
    Call {
        /// Index into the call-site table.
        call: u32,
    },
    /// Invoke a static method through [`CallSite`] `call`.
    CallStatic {
        /// Index into the call-site table.
        call: u32,
    },
    /// Read `bytes` of scalar data from the object in register `obj`.
    Read {
        /// Register holding the target object.
        obj: u8,
        /// Bytes read.
        bytes: u32,
        /// Inline-cache site id for the local-vs-remote check.
        ic: u32,
    },
    /// Write `bytes` of scalar data to the object in register `obj`.
    Write {
        /// Register holding the target object.
        obj: u8,
        /// Bytes written.
        bytes: u32,
        /// Inline-cache site id for the local-vs-remote check.
        ic: u32,
    },
    /// Copy a reference out of one of `self`'s slots into `dst`.
    GetSlot {
        /// Slot index within the receiver.
        slot: u16,
        /// Destination register.
        dst: u8,
    },
    /// Store register `src` into one of `self`'s slots.
    PutSlot {
        /// Slot index within the receiver.
        slot: u16,
        /// Source register (may hold null).
        src: u8,
    },
    /// Copy a reference out of a slot of the object in `obj`.
    GetSlotOf {
        /// Register holding the object whose slot is read.
        obj: u8,
        /// Slot index.
        slot: u16,
        /// Destination register.
        dst: u8,
    },
    /// Store register `src` into a slot of the object in `obj`.
    PutSlotOf {
        /// Register holding the object whose slot is written.
        obj: u8,
        /// Slot index.
        slot: u16,
        /// Source register.
        src: u8,
    },
    /// Invoke a native method.
    Native {
        /// Kind of native (decides where it may run).
        kind: NativeKind,
        /// Microseconds of client-speed CPU the native burns.
        work_micros: u32,
        /// Bytes of parameters passed.
        arg_bytes: u32,
        /// Bytes of results returned.
        ret_bytes: u32,
    },
    /// Read `bytes` from a class's static data.
    GetStatic {
        /// Class owning the static data.
        class: ClassId,
        /// Bytes read.
        bytes: u32,
    },
    /// Write `bytes` to a class's static data.
    PutStatic {
        /// Class owning the static data.
        class: ClassId,
        /// Bytes written.
        bytes: u32,
    },
    /// Clear a register.
    Clear {
        /// Register to clear.
        reg: u8,
    },
    /// Loop header lowered from `Op::Repeat`: push `n` onto the frame's
    /// loop-counter stack and fall through, or — when `n == 0` — jump past
    /// the matching [`FlatOp::EndLoop`] at instruction index `end`.
    Loop {
        /// Iteration count.
        n: u32,
        /// Instruction index of the matching `EndLoop`.
        end: u32,
    },
    /// Loop trailer: decrement the innermost counter and jump back to
    /// `start` (the first body op) while it is non-zero.
    EndLoop {
        /// Instruction index of the first loop-body op.
        start: u32,
    },
    /// Method terminator: pop the current frame (appended to every body).
    Return,
}

/// Side-table entry for one `Call`/`CallStatic` site: the pre-resolved
/// callee plus the interaction-accounting payload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Class the site is compiled against (receiver must match).
    pub class: ClassId,
    /// Method index within `class`.
    pub method: MethodId,
    /// Pre-resolved dense flat-method index, or [`UNRESOLVED`].
    pub target: u32,
    /// Inline-cache site id, or [`NO_SITE`] for static calls.
    pub ic: u32,
    /// Start of this site's argument registers in the shared arena.
    pub args_start: u32,
    /// Number of argument registers.
    pub args_len: u8,
    /// Bytes of parameters passed.
    pub arg_bytes: u32,
    /// Bytes of return value produced.
    pub ret_bytes: u32,
    /// Register holding the receiver (unused for static calls).
    pub obj: u8,
    /// `true` for `CallStatic` sites (no receiver, no locality check).
    pub is_static: bool,
}

/// One compiled method: a contiguous `[code_start, code_end)` range of the
/// flat instruction stream, ending with a [`FlatOp::Return`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatMethod {
    /// Owning class.
    pub class: ClassId,
    /// Method index within the class.
    pub method: MethodId,
    /// Interned method name.
    pub name: Sym,
    /// `true` for static methods.
    pub is_static: bool,
    /// First instruction index.
    pub code_start: u32,
    /// One past the terminating `Return`.
    pub code_end: u32,
}

#[derive(Debug, Default)]
struct Interner {
    map: HashMap<String, Sym>,
    strings: Vec<Box<str>>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.into());
        self.map.insert(s.to_string(), sym);
        sym
    }
}

struct Lowerer<'p> {
    program: &'p Program,
    class_method_base: Vec<u32>,
    code: Vec<FlatOp>,
    calls: Vec<CallSite>,
    call_args: Vec<u8>,
    sites: u32,
}

impl Lowerer<'_> {
    fn next_site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }

    /// Mirrors `Program::method` resolution, but at compile time.
    fn resolve(&self, class: ClassId, method: MethodId) -> u32 {
        match self.program.classes().get(class.index()) {
            Some(c) if method.index() < c.methods.len() => {
                self.class_method_base[class.index()] + u32::from(method.0)
            }
            _ => UNRESOLVED,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_call(
        &mut self,
        obj: Option<Reg>,
        class: ClassId,
        method: MethodId,
        arg_bytes: u32,
        ret_bytes: u32,
        args: &[Reg],
    ) -> u32 {
        let args_start = self.call_args.len() as u32;
        self.call_args.extend(args.iter().map(|r| r.0));
        let ic = if obj.is_some() {
            self.next_site()
        } else {
            NO_SITE
        };
        let idx = self.calls.len() as u32;
        self.calls.push(CallSite {
            class,
            method,
            target: self.resolve(class, method),
            ic,
            args_start,
            args_len: args.len() as u8,
            arg_bytes,
            ret_bytes,
            obj: obj.map_or(0, |r| r.0),
            is_static: obj.is_none(),
        });
        idx
    }

    fn lower_ops(&mut self, ops: &[Op]) {
        for op in ops {
            match op {
                Op::Work { micros } => self.code.push(FlatOp::Work { micros: *micros }),
                Op::New {
                    class,
                    scalar_bytes,
                    ref_slots,
                    dst,
                } => self.code.push(FlatOp::New {
                    class: *class,
                    scalar_bytes: *scalar_bytes,
                    ref_slots: *ref_slots,
                    dst: dst.0,
                }),
                Op::Call {
                    obj,
                    class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let call =
                        self.lower_call(Some(*obj), *class, *method, *arg_bytes, *ret_bytes, args);
                    self.code.push(FlatOp::Call { call });
                }
                Op::CallStatic {
                    class,
                    method,
                    arg_bytes,
                    ret_bytes,
                    args,
                } => {
                    let call = self.lower_call(None, *class, *method, *arg_bytes, *ret_bytes, args);
                    self.code.push(FlatOp::CallStatic { call });
                }
                Op::Read { obj, bytes } => {
                    let ic = self.next_site();
                    self.code.push(FlatOp::Read {
                        obj: obj.0,
                        bytes: *bytes,
                        ic,
                    });
                }
                Op::Write { obj, bytes } => {
                    let ic = self.next_site();
                    self.code.push(FlatOp::Write {
                        obj: obj.0,
                        bytes: *bytes,
                        ic,
                    });
                }
                Op::GetSlot { slot, dst } => self.code.push(FlatOp::GetSlot {
                    slot: *slot,
                    dst: dst.0,
                }),
                Op::PutSlot { slot, src } => self.code.push(FlatOp::PutSlot {
                    slot: *slot,
                    src: src.0,
                }),
                Op::GetSlotOf { obj, slot, dst } => self.code.push(FlatOp::GetSlotOf {
                    obj: obj.0,
                    slot: *slot,
                    dst: dst.0,
                }),
                Op::PutSlotOf { obj, slot, src } => self.code.push(FlatOp::PutSlotOf {
                    obj: obj.0,
                    slot: *slot,
                    src: src.0,
                }),
                Op::Native {
                    kind,
                    work_micros,
                    arg_bytes,
                    ret_bytes,
                } => self.code.push(FlatOp::Native {
                    kind: *kind,
                    work_micros: *work_micros,
                    arg_bytes: *arg_bytes,
                    ret_bytes: *ret_bytes,
                }),
                Op::GetStatic { class, bytes } => self.code.push(FlatOp::GetStatic {
                    class: *class,
                    bytes: *bytes,
                }),
                Op::PutStatic { class, bytes } => self.code.push(FlatOp::PutStatic {
                    class: *class,
                    bytes: *bytes,
                }),
                Op::Clear { reg } => self.code.push(FlatOp::Clear { reg: reg.0 }),
                Op::Repeat { n, body } => {
                    let header = self.code.len();
                    self.code.push(FlatOp::Loop { n: *n, end: 0 });
                    self.lower_ops(body);
                    let end = self.code.len() as u32;
                    self.code.push(FlatOp::EndLoop {
                        start: header as u32 + 1,
                    });
                    self.code[header] = FlatOp::Loop { n: *n, end };
                }
            }
        }
    }
}

/// A program compiled to the flat IR: one contiguous instruction stream,
/// a dense method table, the call-site side table, and the interned
/// string table.
#[derive(Debug)]
pub struct FlatProgram {
    code: Vec<FlatOp>,
    methods: Vec<FlatMethod>,
    /// Prefix sums of per-class method counts (`len == class_count + 1`):
    /// flat index of `(class, method)` is `base[class] + method`.
    class_method_base: Vec<u32>,
    calls: Vec<CallSite>,
    call_args: Vec<u8>,
    strings: Vec<Box<str>>,
    class_names: Vec<Sym>,
    sites: u32,
}

impl FlatProgram {
    /// Lowers `program` into the flat IR. Total for any program: sites
    /// whose callee cannot be resolved (possible only for programs that
    /// bypassed validation) compile to [`UNRESOLVED`] targets that
    /// reproduce the lazy lookup error when executed.
    pub fn compile(program: &Program) -> FlatProgram {
        let classes = program.classes();
        let mut interner = Interner::default();
        let class_names: Vec<Sym> = classes.iter().map(|c| interner.intern(&c.name)).collect();

        let mut class_method_base = Vec::with_capacity(classes.len() + 1);
        let mut total = 0u32;
        for c in classes {
            class_method_base.push(total);
            total += c.methods.len() as u32;
        }
        class_method_base.push(total);

        let mut lo = Lowerer {
            program,
            class_method_base,
            code: Vec::new(),
            calls: Vec::new(),
            call_args: Vec::new(),
            sites: 0,
        };
        let mut methods = Vec::with_capacity(total as usize);
        for (ci, c) in classes.iter().enumerate() {
            for (mi, m) in c.methods.iter().enumerate() {
                let code_start = lo.code.len() as u32;
                lo.lower_ops(&m.body);
                lo.code.push(FlatOp::Return);
                methods.push(FlatMethod {
                    class: ClassId(ci as u32),
                    method: MethodId(mi as u16),
                    name: interner.intern(&m.name),
                    is_static: m.is_static,
                    code_start,
                    code_end: lo.code.len() as u32,
                });
            }
        }
        FlatProgram {
            code: lo.code,
            methods,
            class_method_base: lo.class_method_base,
            calls: lo.calls,
            call_args: lo.call_args,
            strings: interner.strings,
            class_names,
            sites: lo.sites,
        }
    }

    /// The contiguous instruction stream.
    #[inline]
    pub fn code(&self) -> &[FlatOp] {
        &self.code
    }

    /// Total instructions in the stream (including `Loop`/`EndLoop`/`Return`
    /// control ops the compiler inserted).
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// The method at dense flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (callers obtain indices from
    /// [`FlatProgram::method_entry`] or resolved [`CallSite::target`]s).
    #[inline]
    pub fn method(&self, idx: u32) -> &FlatMethod {
        &self.methods[idx as usize]
    }

    /// Number of compiled methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// The call site at index `call`.
    ///
    /// # Panics
    ///
    /// Panics if `call` is out of range (indices come from
    /// [`FlatOp::Call`]/[`FlatOp::CallStatic`] operands).
    #[inline]
    pub fn call(&self, call: u32) -> &CallSite {
        &self.calls[call as usize]
    }

    /// Number of call sites.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// The argument registers of call site `call`, from the shared arena.
    #[inline]
    pub fn call_args(&self, call: u32) -> &[u8] {
        let cs = &self.calls[call as usize];
        &self.call_args[cs.args_start as usize..cs.args_start as usize + cs.args_len as usize]
    }

    /// Resolves `(class, method)` to a dense flat-method index.
    pub fn method_entry(&self, class: ClassId, method: MethodId) -> Option<u32> {
        let ci = class.index();
        if ci + 1 >= self.class_method_base.len() {
            return None;
        }
        let idx = self.class_method_base[ci] + u32::from(method.0);
        (idx < self.class_method_base[ci + 1]).then_some(idx)
    }

    /// The error `Program::method` would produce for an unresolvable
    /// `(class, method)` pair — used when an [`UNRESOLVED`] site executes.
    pub(crate) fn resolution_error(&self, class: ClassId, method: MethodId) -> VmError {
        if class.index() + 1 >= self.class_method_base.len() {
            VmError::UnknownClass(class)
        } else {
            VmError::UnknownMethod(class, method)
        }
    }

    /// Number of inline-cache sites the interpreter must provision.
    pub fn site_count(&self) -> u32 {
        self.sites
    }

    /// Resolves an interned symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this program's table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// The interned name of `class`, if in range.
    pub fn class_name(&self, class: ClassId) -> Option<&str> {
        self.class_names
            .get(class.index())
            .map(|&s| self.resolve(s))
    }

    /// A human-readable listing of the whole instruction stream, one op per
    /// line, grouped by method — for debugging and golden tests.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for m in &self.methods {
            let _ = writeln!(
                out,
                "{}::{} [{}..{}]{}",
                self.class_name(m.class).unwrap_or("?"),
                self.resolve(m.name),
                m.code_start,
                m.code_end,
                if m.is_static { " static" } else { "" },
            );
            for ip in m.code_start..m.code_end {
                let _ = writeln!(out, "  {ip:>4}: {:?}", self.code[ip as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{MethodDef, ProgramBuilder};

    fn nested_repeat_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let helper = b.add_class("Helper");
        let hm = b.add_method(helper, MethodDef::new("help", vec![Op::Work { micros: 5 }]));
        b.add_method(
            main,
            MethodDef::new(
                "main",
                vec![
                    Op::New {
                        class: helper,
                        scalar_bytes: 100,
                        ref_slots: 0,
                        dst: Reg(0),
                    },
                    Op::Repeat {
                        n: 3,
                        body: vec![
                            Op::Read {
                                obj: Reg(0),
                                bytes: 8,
                            },
                            Op::Repeat {
                                n: 2,
                                body: vec![Op::Call {
                                    obj: Reg(0),
                                    class: helper,
                                    method: hm,
                                    arg_bytes: 4,
                                    ret_bytes: 4,
                                    args: vec![Reg(0)],
                                }],
                            },
                        ],
                    },
                ],
            ),
        );
        b.build(main, MethodId(0), 64, 0).unwrap()
    }

    #[test]
    fn repeat_lowers_to_matched_loop_pairs() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        // Main::main is compiled after Helper::help (class 0 methods first?
        // no — classes are lowered in id order, Main is class 0).
        let main = flat.method(flat.method_entry(ClassId(0), MethodId(0)).unwrap());
        let code = &flat.code()[main.code_start as usize..main.code_end as usize];
        // New, Loop, Read, Loop, Call, EndLoop, EndLoop, Return
        assert_eq!(code.len(), 8);
        assert!(matches!(code[0], FlatOp::New { .. }));
        let (outer_end, inner_end) = match (code[1], code[3]) {
            (FlatOp::Loop { n: 3, end: o }, FlatOp::Loop { n: 2, end: i }) => (o, i),
            other => panic!("unexpected loop headers {other:?}"),
        };
        // Ends are absolute instruction indices into the whole stream.
        let base = main.code_start;
        assert!(matches!(code[4], FlatOp::Call { .. }));
        assert_eq!(inner_end, base + 5);
        assert!(matches!(code[5], FlatOp::EndLoop { start } if start == base + 4));
        assert_eq!(outer_end, base + 6);
        assert!(matches!(code[6], FlatOp::EndLoop { start } if start == base + 2));
        assert!(matches!(code[7], FlatOp::Return));
    }

    #[test]
    fn call_sites_are_resolved_and_args_arena_backed() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        assert_eq!(flat.call_count(), 1);
        let cs = flat.call(0);
        assert_eq!(cs.class, ClassId(1));
        assert_eq!(cs.method, MethodId(0));
        assert_eq!(
            cs.target,
            flat.method_entry(ClassId(1), MethodId(0)).unwrap()
        );
        assert_ne!(cs.target, UNRESOLVED);
        assert_eq!(cs.arg_bytes, 4);
        assert_eq!(cs.ret_bytes, 4);
        assert!(!cs.is_static);
        assert_eq!(flat.call_args(0), &[0]);
    }

    #[test]
    fn sites_are_dense_and_cover_checked_ops() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        // One Read site + one dynamic Call site.
        assert_eq!(flat.site_count(), 2);
        let cs = flat.call(0);
        assert_ne!(cs.ic, NO_SITE);
    }

    #[test]
    fn symbols_are_interned_and_resolvable() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        assert_eq!(flat.class_name(ClassId(0)), Some("Main"));
        assert_eq!(flat.class_name(ClassId(1)), Some("Helper"));
        assert_eq!(flat.class_name(ClassId(9)), None);
        let help = flat.method(flat.method_entry(ClassId(1), MethodId(0)).unwrap());
        assert_eq!(flat.resolve(help.name), "help");
        assert!(!help.is_static);
    }

    #[test]
    fn method_entry_rejects_out_of_range() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        assert!(flat.method_entry(ClassId(2), MethodId(0)).is_none());
        assert!(flat.method_entry(ClassId(0), MethodId(1)).is_none());
        assert!(matches!(
            flat.resolution_error(ClassId(2), MethodId(0)),
            VmError::UnknownClass(ClassId(2))
        ));
        assert!(matches!(
            flat.resolution_error(ClassId(0), MethodId(1)),
            VmError::UnknownMethod(ClassId(0), MethodId(1))
        ));
    }

    #[test]
    fn every_method_ends_with_return() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        for i in 0..flat.method_count() {
            let m = flat.method(i as u32);
            assert!(m.code_end > m.code_start);
            assert!(matches!(
                flat.code()[m.code_end as usize - 1],
                FlatOp::Return
            ));
        }
    }

    #[test]
    fn zero_iteration_loop_jumps_past_endloop() {
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(
            c,
            MethodDef::new(
                "m",
                vec![Op::Repeat {
                    n: 0,
                    body: vec![Op::Work { micros: 1 }],
                }],
            ),
        );
        let p = b.build(c, MethodId(0), 0, 0).unwrap();
        let flat = FlatProgram::compile(&p);
        let m = flat.method(0);
        match flat.code()[m.code_start as usize] {
            FlatOp::Loop { n: 0, end } => {
                // `end + 1` must land exactly on the Return.
                assert!(matches!(flat.code()[end as usize + 1], FlatOp::Return));
            }
            other => panic!("expected loop header, got {other:?}"),
        }
    }

    #[test]
    fn unvalidated_callee_compiles_to_unresolved_trap() {
        // Build a program that bypasses validation via serde, with a call
        // to a method that does not exist.
        let mut b = ProgramBuilder::new();
        let c = b.add_class("C");
        b.add_method(c, MethodDef::new("m", vec![Op::Work { micros: 1 }]));
        let valid = b.build(c, MethodId(0), 0, 0).unwrap();
        let mut json = serde_json::to_value(&valid).unwrap();
        json["classes"][0]["methods"][0]["body"] = serde_json::json!([
            { "Call": { "obj": 0, "class": 0, "method": 7,
                        "arg_bytes": 0, "ret_bytes": 0, "args": [] } }
        ]);
        let hacked: Program = serde_json::from_value(json).unwrap();
        let flat = FlatProgram::compile(&hacked);
        assert_eq!(flat.call(0).target, UNRESOLVED);
    }

    #[test]
    fn disassembly_lists_every_op_once() {
        let flat = FlatProgram::compile(&nested_repeat_program());
        let dis = flat.disassemble();
        assert!(dis.contains("Main::main"));
        assert!(dis.contains("Helper::help"));
        // One line per op plus one header per method.
        let lines = dis.lines().count();
        assert_eq!(lines, flat.op_count() + flat.method_count());
    }
}
