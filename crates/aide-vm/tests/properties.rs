//! Property-based tests on the VM's heap, collector, and program builder.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use aide_vm::{
    ClassId, Collector, GcConfig, Heap, Machine, MethodDef, MethodId, ObjectId, ObjectRecord, Op,
    ProgramBuilder, Reg, VmConfig,
};
use proptest::prelude::*;

/// An abstract heap operation for model-based testing.
#[derive(Debug, Clone)]
enum HeapOp {
    Insert { class: u32, bytes: u32, slots: u16 },
    Sweep(usize),
    Link { from: usize, slot: u16, to: usize },
}

fn arb_heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..8, 0u32..10_000, 0u16..4).prop_map(|(class, bytes, slots)| HeapOp::Insert {
                class,
                bytes,
                slots
            }),
            (0usize..64).prop_map(HeapOp::Sweep),
            (0usize..64, 0u16..4, 0usize..64).prop_map(|(from, slot, to)| HeapOp::Link {
                from,
                slot,
                to
            }),
        ],
        1..120,
    )
}

proptest! {
    /// The heap's used-byte ledger always equals the sum of live object
    /// footprints, and never exceeds capacity.
    #[test]
    fn heap_ledger_is_exact(ops in arb_heap_ops()) {
        let mut heap = Heap::new(512 * 1024);
        let mut live: Vec<ObjectId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                HeapOp::Insert { class, bytes, slots } => {
                    let id = ObjectId::client(next);
                    next += 1;
                    if heap.insert(id, ObjectRecord::new(ClassId(class), bytes, slots)).is_ok() {
                        live.push(id);
                    }
                }
                HeapOp::Sweep(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        heap.sweep(id).expect("live object sweeps");
                    }
                }
                HeapOp::Link { from, slot, to } => {
                    if !live.is_empty() {
                        let (a, b) = (live[from % live.len()], live[to % live.len()]);
                        if let Ok(rec) = heap.get_mut(a) {
                            if (slot as usize) < rec.slots.len() {
                                rec.slots[slot as usize] = Some(b);
                            }
                        }
                    }
                }
            }
            let expected: u64 = live
                .iter()
                .map(|&id| heap.get(id).expect("tracked object is live").footprint())
                .sum();
            prop_assert_eq!(heap.stats().used_bytes, expected);
            prop_assert!(heap.stats().used_bytes <= heap.capacity());
            prop_assert_eq!(heap.stats().live_objects as usize, live.len());
        }
    }

    /// After a collection: every root-reachable object survives, every
    /// unreachable object is gone, and the reclaimed byte count matches.
    #[test]
    fn gc_preserves_exactly_the_reachable_set(
        n in 2usize..40,
        edges in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        root_mask in any::<u64>(),
    ) {
        let mut heap = Heap::new(4 << 20);
        let ids: Vec<ObjectId> = (0..n as u64).map(ObjectId::client).collect();
        for &id in &ids {
            heap.insert(id, ObjectRecord::new(ClassId(0), 64, 4)).unwrap();
        }
        for (i, &(from, to)) in edges.iter().enumerate() {
            let (a, b) = (ids[from % n], ids[to % n]);
            let rec = heap.get_mut(a).unwrap();
            let slot = i % rec.slots.len();
            rec.slots[slot] = Some(b);
        }
        let roots: Vec<ObjectId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| root_mask & (1 << (i % 64)) != 0)
            .map(|(_, &id)| id)
            .collect();

        // Model: compute reachability independently.
        let mut reachable: HashSet<ObjectId> = HashSet::new();
        let mut stack: Vec<ObjectId> = roots.clone();
        while let Some(id) = stack.pop() {
            if reachable.insert(id) {
                for s in heap.get(id).unwrap().slots.iter().flatten() {
                    stack.push(*s);
                }
            }
        }

        let used_before = heap.stats().used_bytes;
        let mut gc = Collector::new(GcConfig::default());
        let report = gc.collect(&mut heap, roots, []);

        for &id in &ids {
            prop_assert_eq!(heap.contains(id), reachable.contains(&id));
        }
        prop_assert_eq!(report.freed_objects as usize, n - reachable.len());
        prop_assert_eq!(used_before - report.freed_bytes, heap.stats().used_bytes);
        // Per-class free accounting sums to the report.
        let freed_from_classes: u64 = gc.last_freed_by_class().values().map(|v| v.1).sum();
        prop_assert_eq!(freed_from_classes, report.freed_bytes);
    }

    /// Programs with random (valid) shapes always pass validation and run
    /// to completion within an adequate heap.
    #[test]
    fn generated_linear_programs_run(
        allocs in proptest::collection::vec((0u32..20_000, 0u16..4), 1..30),
        work in proptest::collection::vec(1u32..500, 1..30),
    ) {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        let data = b.add_class("Data");
        let mut body = Vec::new();
        for (i, &(bytes, slots)) in allocs.iter().enumerate() {
            body.push(Op::New {
                class: data,
                scalar_bytes: bytes,
                ref_slots: slots,
                dst: Reg((i % 8) as u8),
            });
        }
        for &w in &work {
            body.push(Op::Work { micros: w });
        }
        b.add_method(main, MethodDef::new("main", body));
        let program = Arc::new(b.build(main, MethodId(0), 64, 4).expect("valid"));
        let machine = Machine::new(program, VmConfig::client(64 << 20));
        let summary = machine.run_entry().expect("runs");
        prop_assert_eq!(summary.objects_allocated, allocs.len() as u64 + 1);
        let expected_work: u64 = work.iter().map(|&w| u64::from(w)).sum();
        prop_assert!(summary.cpu_seconds >= expected_work as f64 / 1e6);
    }

    /// bytes_by_class matches a model computed from insertions.
    #[test]
    fn bytes_by_class_matches_model(
        inserts in proptest::collection::vec((0u32..5, 1u32..5_000), 1..60),
    ) {
        let mut heap = Heap::new(64 << 20);
        let mut model: HashMap<ClassId, u64> = HashMap::new();
        for (i, &(class, bytes)) in inserts.iter().enumerate() {
            let rec = ObjectRecord::new(ClassId(class), bytes, 0);
            *model.entry(ClassId(class)).or_default() += rec.footprint();
            heap.insert(ObjectId::client(i as u64), rec).unwrap();
        }
        prop_assert_eq!(heap.bytes_by_class(), model);
    }
}
