//! Behavioural tests of the interpreter: execution, accounting, GC
//! interplay, natives, statics, and error paths.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use aide_vm::{
    ClassId, CountingHooks, GcConfig, Interaction, InteractionKind, Machine, MethodDef, MethodId,
    NativeKind, ObjectId, Op, ProgramBuilder, Reg, RuntimeHooks, VmConfig, VmError,
};
use parking_lot::Mutex;

/// Collects full interaction events for fine-grained assertions.
#[derive(Default)]
struct EventLog {
    interactions: Mutex<Vec<Interaction>>,
    natives: Mutex<Vec<(ClassId, NativeKind, bool)>>,
    work: Mutex<Vec<(ClassId, f64)>>,
    gc_free_fracs: Mutex<Vec<f64>>,
}

impl RuntimeHooks for EventLog {
    fn on_interaction(&self, event: Interaction) {
        self.interactions.lock().push(event);
    }
    fn on_native(&self, caller: ClassId, kind: NativeKind, _work: u32, _bytes: u64, remote: bool) {
        self.natives.lock().push((caller, kind, remote));
    }
    fn on_work(&self, class: ClassId, micros: f64) {
        self.work.lock().push((class, micros));
    }
    fn on_gc(&self, report: &aide_vm::GcReport) {
        self.gc_free_fracs.lock().push(report.free_fraction());
    }
}

fn run_with_log(
    build: impl FnOnce(&mut ProgramBuilder) -> (ClassId, MethodId),
    config: VmConfig,
) -> (aide_vm::RunSummary, Arc<EventLog>) {
    let mut b = ProgramBuilder::new();
    let (entry_class, entry_method) = build(&mut b);
    let program = Arc::new(b.build(entry_class, entry_method, 64, 4).unwrap());
    let log = Arc::new(EventLog::default());
    let machine = Machine::with_hooks(program, config, log.clone());
    let summary = machine.run_entry().unwrap();
    (summary, log)
}

#[test]
fn work_advances_clock_and_attributes_to_class() {
    let (summary, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let m = b.add_method(
                main,
                MethodDef::new("main", vec![Op::Work { micros: 2_000 }]),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    // 2000 µs of work + small alloc/invoke overheads.
    assert!(summary.cpu_seconds >= 2e-3);
    assert!(summary.cpu_seconds < 2.2e-3);
    let work = log.work.lock();
    assert_eq!(work.len(), 1);
    assert_eq!(work[0], (ClassId(0), 2_000.0));
}

#[test]
fn surrogate_speed_factor_divides_cpu_time() {
    let fast = VmConfig {
        speed_factor: 4.0,
        ..VmConfig::client(1 << 20)
    };
    let (summary, _) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let m = b.add_method(
                main,
                MethodDef::new("main", vec![Op::Work { micros: 4_000 }]),
            );
            (main, m)
        },
        fast,
    );
    assert!(summary.cpu_seconds >= 1e-3);
    assert!(summary.cpu_seconds < 1.1e-3);
}

#[test]
fn calls_record_interactions_between_classes() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let helper = b.add_class("Helper");
            let hm = b.add_method(helper, MethodDef::new("help", vec![Op::Work { micros: 1 }]));
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::New {
                            class: helper,
                            scalar_bytes: 16,
                            ref_slots: 0,
                            dst: Reg(0),
                        },
                        Op::Repeat {
                            n: 3,
                            body: vec![Op::Call {
                                obj: Reg(0),
                                class: helper,
                                method: hm,
                                arg_bytes: 10,
                                ret_bytes: 6,
                                args: vec![],
                            }],
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    let ints = log.interactions.lock();
    assert_eq!(ints.len(), 3);
    for i in ints.iter() {
        assert_eq!(i.caller, ClassId(0));
        assert_eq!(i.callee, ClassId(1));
        assert_eq!(i.kind, InteractionKind::Invocation);
        assert_eq!(i.bytes, 16);
        assert!(!i.remote);
        assert!(i.target.is_some());
    }
}

#[test]
fn reads_and_writes_record_field_accesses() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let data = b.add_class("Data");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::New {
                            class: data,
                            scalar_bytes: 100,
                            ref_slots: 0,
                            dst: Reg(0),
                        },
                        Op::Read {
                            obj: Reg(0),
                            bytes: 40,
                        },
                        Op::Write {
                            obj: Reg(0),
                            bytes: 24,
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    let ints = log.interactions.lock();
    assert_eq!(ints.len(), 2);
    assert!(ints
        .iter()
        .all(|i| i.kind == InteractionKind::FieldAccess && !i.remote));
    assert_eq!(ints[0].bytes, 40);
    assert_eq!(ints[1].bytes, 24);
}

#[test]
fn same_class_field_accesses_are_not_recorded() {
    // The paper: "Information is recorded only for interactions between two
    // different classes."
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::New {
                            class: main,
                            scalar_bytes: 8,
                            ref_slots: 0,
                            dst: Reg(0),
                        },
                        Op::Read {
                            obj: Reg(0),
                            bytes: 4,
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    assert!(log.interactions.lock().is_empty());
}

#[test]
fn slot_wiring_builds_reachable_object_graph() {
    // main creates A and B, stores B into A's slot, clears both registers;
    // GC must keep B alive through A while A is registered in a slot of the
    // entry object.
    let (summary, _) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let node = b.add_class("Node");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::New {
                            class: node,
                            scalar_bytes: 50_000,
                            ref_slots: 1,
                            dst: Reg(0),
                        },
                        Op::New {
                            class: node,
                            scalar_bytes: 50_000,
                            ref_slots: 1,
                            dst: Reg(1),
                        },
                        // A.slots[0] = B
                        Op::PutSlotOf {
                            obj: Reg(0),
                            slot: 0,
                            src: Reg(1),
                        },
                        // self.slots[0] = A
                        Op::PutSlot {
                            slot: 0,
                            src: Reg(0),
                        },
                        Op::Clear { reg: Reg(0) },
                        Op::Clear { reg: Reg(1) },
                        // Force heavy allocation so the GC runs; A and B must
                        // survive because they hang off the entry object.
                        Op::Repeat {
                            n: 200,
                            body: vec![Op::New {
                                class: node,
                                scalar_bytes: 10_000,
                                ref_slots: 0,
                                dst: Reg(2),
                            }],
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20), // 1 MiB heap: garbage must be collected
    );
    // Entry + A + B survive every collection; temporaries allocated since
    // the last cycle may still linger (garbage dies at cycles, not at drop).
    assert!(summary.objects_live >= 3);
    assert!(summary.gc_cycles >= 1);
    assert!(summary.heap_used >= 100_000);
}

#[test]
fn unreferenced_allocations_die_and_heap_survives_beyond_capacity_total() {
    // Allocate 4 MiB total through a 1 MiB heap.
    let (summary, _) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let buf = b.add_class("Buf");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![Op::Repeat {
                        n: 400,
                        body: vec![Op::New {
                            class: buf,
                            scalar_bytes: 10_000,
                            ref_slots: 0,
                            dst: Reg(0),
                        }],
                    }],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    assert_eq!(summary.objects_allocated, 401);
    // The heap never exceeded its capacity even though 4 MiB flowed through.
    assert!(summary.heap_used <= 1 << 20);
    assert!(summary.objects_live <= 110, "live bounded by heap capacity");
}

#[test]
fn out_of_memory_is_reported_when_all_objects_are_live() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let buf = b.add_class("Buf");
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![Op::Repeat {
                n: 100,
                body: vec![
                    Op::New {
                        class: buf,
                        scalar_bytes: 50_000,
                        ref_slots: 1,
                        dst: Reg(1),
                    },
                    // Chain each buffer to the previous one and anchor the
                    // chain in the entry object: nothing can be collected.
                    Op::PutSlotOf {
                        obj: Reg(1),
                        slot: 0,
                        src: Reg(0),
                    },
                    Op::PutSlot {
                        slot: 0,
                        src: Reg(1),
                    },
                    Op::Clear { reg: Reg(0) },
                    // Move the new head into r0 for the next iteration.
                    Op::GetSlot {
                        slot: 0,
                        dst: Reg(0),
                    },
                ],
            }],
        ),
    );
    // First iteration: PutSlotOf writes a null (r0 empty) — permitted? No:
    // PutSlotOf reads the src register which may be empty; that stores None.
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    let err = machine.run_entry().unwrap_err();
    match err {
        VmError::OutOfMemory { free, .. } => {
            assert!(free < 50_016, "OOM only when nothing reclaimable fits");
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

#[test]
fn natives_run_locally_on_client_and_are_logged() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::Native {
                            kind: NativeKind::Math,
                            work_micros: 10,
                            arg_bytes: 8,
                            ret_bytes: 8,
                        },
                        Op::Native {
                            kind: NativeKind::Framebuffer,
                            work_micros: 50,
                            arg_bytes: 128,
                            ret_bytes: 0,
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    let natives = log.natives.lock();
    assert_eq!(natives.len(), 2);
    assert!(natives.iter().all(|&(_, _, remote)| !remote));
    assert_eq!(natives[0].1, NativeKind::Math);
    assert_eq!(natives[1].1, NativeKind::Framebuffer);
}

#[test]
fn static_methods_execute_without_receiver() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let util = b.add_class("Util");
            let sm = b.add_method(
                util,
                MethodDef::new_static("helper", vec![Op::Work { micros: 7 }]),
            );
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![Op::CallStatic {
                        class: util,
                        method: sm,
                        arg_bytes: 4,
                        ret_bytes: 4,
                        args: vec![],
                    }],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    let ints = log.interactions.lock();
    assert_eq!(ints.len(), 1);
    assert_eq!(ints[0].kind, InteractionKind::Invocation);
    assert_eq!(ints[0].target, None);
    // Work inside the static method is attributed to Util, not Main.
    let work = log.work.lock();
    assert_eq!(work[0].0, ClassId(1));
}

#[test]
fn static_data_accesses_are_counted() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let sys = b.add_class("SystemProps");
            b.set_static_bytes(sys, 2_048);
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::GetStatic {
                            class: sys,
                            bytes: 64,
                        },
                        Op::PutStatic {
                            class: sys,
                            bytes: 32,
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    // Recorded via on_static_access, not on_interaction.
    assert!(log.interactions.lock().is_empty());
}

#[test]
fn class_mismatch_is_detected() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let a = b.add_class("A");
    let bc = b.add_class("B");
    let bm = b.add_method(bc, MethodDef::new("m", vec![]));
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: a,
                    scalar_bytes: 8,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                // Call B::m on an A instance.
                Op::Call {
                    obj: Reg(0),
                    class: bc,
                    method: bm,
                    arg_bytes: 0,
                    ret_bytes: 0,
                    args: vec![],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    assert!(matches!(
        machine.run_entry().unwrap_err(),
        VmError::ClassMismatch { .. }
    ));
}

#[test]
fn null_register_and_bad_slot_errors() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![Op::Read {
                obj: Reg(3),
                bytes: 1,
            }],
        ),
    );
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    assert!(matches!(
        machine.run_entry().unwrap_err(),
        VmError::NullRegister(Reg(3))
    ));

    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![Op::GetSlot {
                slot: 99,
                dst: Reg(0),
            }],
        ),
    );
    let program = Arc::new(b.build(main, m, 64, 2).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    assert!(matches!(
        machine.run_entry().unwrap_err(),
        VmError::SlotOutOfRange { slot: 99, .. }
    ));
}

#[test]
fn recursion_limit_is_enforced() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    // main calls itself on the entry object forever.
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: main,
                    scalar_bytes: 8,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::Call {
                    obj: Reg(0),
                    class: main,
                    method: MethodId(0),
                    arg_bytes: 0,
                    ret_bytes: 0,
                    args: vec![],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(100 << 20));
    assert!(matches!(
        machine.run_entry().unwrap_err(),
        VmError::CallDepthExceeded(_)
    ));
}

#[test]
fn argument_registers_are_passed_to_callee() {
    // main creates Data, passes it to Helper::use(data) which reads it —
    // the interaction caller must be Helper, proving args arrived.
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let helper = b.add_class("Helper");
            let data = b.add_class("Data");
            let hm = b.add_method(
                helper,
                MethodDef::new(
                    "use",
                    vec![Op::Read {
                        obj: Reg(0), // first argument register
                        bytes: 12,
                    }],
                ),
            );
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![
                        Op::New {
                            class: data,
                            scalar_bytes: 64,
                            ref_slots: 0,
                            dst: Reg(0),
                        },
                        Op::New {
                            class: helper,
                            scalar_bytes: 16,
                            ref_slots: 0,
                            dst: Reg(1),
                        },
                        Op::Call {
                            obj: Reg(1),
                            class: helper,
                            method: hm,
                            arg_bytes: 8,
                            ret_bytes: 0,
                            args: vec![Reg(0)],
                        },
                    ],
                ),
            );
            (main, m)
        },
        VmConfig::client(1 << 20),
    );
    let ints = log.interactions.lock();
    let read = ints
        .iter()
        .find(|i| i.kind == InteractionKind::FieldAccess)
        .expect("helper read the data");
    assert_eq!(read.caller, ClassId(1)); // Helper
    assert_eq!(read.callee, ClassId(2)); // Data
}

#[test]
fn monitor_event_cost_slows_the_clock() {
    let build = |b: &mut ProgramBuilder| {
        let main = b.add_class("Main");
        let data = b.add_class("Data");
        let m = b.add_method(
            main,
            MethodDef::new(
                "main",
                vec![
                    Op::New {
                        class: data,
                        scalar_bytes: 8,
                        ref_slots: 0,
                        dst: Reg(0),
                    },
                    Op::Repeat {
                        n: 1_000,
                        body: vec![Op::Read {
                            obj: Reg(0),
                            bytes: 4,
                        }],
                    },
                ],
            ),
        );
        (main, m)
    };
    let base = VmConfig::client(1 << 20);
    let mut monitored = base;
    monitored.cost.monitor_event_micros = 1.0;
    let (off, _) = run_with_log(build, base);
    let (on, _) = run_with_log(build, monitored);
    assert!(on.cpu_seconds > off.cpu_seconds);
    // ~1000 monitored events at 1 µs each ≈ 1 ms extra.
    assert!(on.cpu_seconds - off.cpu_seconds > 0.9e-3);
}

#[test]
fn gc_reports_reach_hooks_with_free_fractions() {
    let (_, log) = run_with_log(
        |b| {
            let main = b.add_class("Main");
            let buf = b.add_class("Buf");
            let m = b.add_method(
                main,
                MethodDef::new(
                    "main",
                    vec![Op::Repeat {
                        n: 2_000,
                        body: vec![Op::New {
                            class: buf,
                            scalar_bytes: 1_000,
                            ref_slots: 0,
                            dst: Reg(0),
                        }],
                    }],
                ),
            );
            (main, m)
        },
        VmConfig {
            gc: GcConfig {
                trigger_alloc_count: 100,
                trigger_alloc_bytes: u64::MAX,
                cost_micros_per_object: 0.05,
            },
            ..VmConfig::client(1 << 20)
        },
    );
    let fracs = log.gc_free_fracs.lock();
    assert!(
        fracs.len() >= 10,
        "periodic trigger fired {} times",
        fracs.len()
    );
    assert!(fracs.iter().all(|f| (0.0..=1.0).contains(f)));
}

#[test]
fn counting_hooks_tally_event_volumes() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let d = b.add_class("D");
    let m = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: d,
                    scalar_bytes: 10,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::Repeat {
                    n: 5,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 2,
                    }],
                },
                Op::Native {
                    kind: NativeKind::StringOp,
                    work_micros: 1,
                    arg_bytes: 16,
                    ret_bytes: 16,
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let hooks = Arc::new(CountingHooks::new());
    let machine = Machine::with_hooks(program, VmConfig::client(1 << 20), hooks.clone());
    machine.run_entry().unwrap();
    assert_eq!(hooks.allocs.load(Ordering::Relaxed), 2);
    assert_eq!(hooks.interactions.load(Ordering::Relaxed), 5);
    assert_eq!(hooks.natives.load(Ordering::Relaxed), 1);
}

#[test]
fn dangling_reference_without_peer_is_an_error() {
    // Craft a machine and poke a nonexistent object through the public
    // peer-serving API.
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let m = b.add_method(main, MethodDef::new("main", vec![]));
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    let ghost = ObjectId::surrogate(42);
    assert!(matches!(
        machine.field_access_on(ghost, 8, false).unwrap_err(),
        VmError::DanglingReference(_)
    ));
    assert!(matches!(
        machine.class_of_local(ghost).unwrap_err(),
        VmError::DanglingReference(_)
    ));
}

#[test]
fn external_roots_pin_objects_across_collections() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let m = b.add_method(main, MethodDef::new("main", vec![]));
    let program = Arc::new(b.build(main, m, 64, 4).unwrap());
    let machine = Machine::new(program, VmConfig::client(1 << 20));
    machine.run_entry().unwrap();

    let vm = machine.vm();
    let (exported, report_pinned, report_released) = {
        let mut vm = vm.lock();
        // Simulate the RPC layer exporting an object to the peer.
        let id = {
            let heap = vm.heap_mut();
            let id = ObjectId::client(999_999);
            heap.insert(id, aide_vm::ObjectRecord::new(ClassId(0), 100, 0))
                .unwrap();
            id
        };
        vm.external_root_inc(id);
        let pinned = vm.collect_now();
        vm.external_root_dec(id);
        let released = vm.collect_now();
        (id, pinned, released)
    };
    assert_eq!(report_pinned.freed_objects, 1); // only the dead entry object
    assert_eq!(report_released.freed_objects, 1); // now the exported one dies
    assert!(!vm.lock().heap().contains(exported));
}
