//! Property test for the flat-IR compiler and register interpreter:
//! for arbitrary nested `Repeat`/`Call` bodies, the flat VM must match the
//! legacy tree-walker exactly — same `RunSummary`, same hook-event stream,
//! same error (if any).
//!
//! Programs are generated from a deterministic xorshift stream (same
//! generator family as the placement property tests), biased toward valid
//! programs so runs go deep, but invalid constructions are kept: the
//! property covers error paths too.

use std::sync::Arc;

use aide_vm::{
    ClassId, ExecMode, GcReport, Interaction, Machine, MethodDef, MethodId, NativeKind, ObjectId,
    Op, Program, ProgramBuilder, Reg, RunSummary, RuntimeHooks, VmConfig, VmResult,
};
use parking_lot::Mutex;

/// Deterministic xorshift64 stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One recorded hook event.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Interaction(Interaction),
    Alloc(ClassId, ObjectId, u64),
    Free(ClassId, u64, u64),
    Work(ClassId, f64),
    Native(ClassId, NativeKind, u32, u64, bool),
    StaticAccess(ClassId, ClassId, u64, bool),
    MethodExit(ClassId, MethodId),
    Gc(u64, u64, u64),
}

#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Ev>>,
}

impl RuntimeHooks for Recorder {
    fn on_interaction(&self, event: Interaction) {
        self.events.lock().push(Ev::Interaction(event));
    }
    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        self.events.lock().push(Ev::Alloc(class, object, bytes));
    }
    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        self.events.lock().push(Ev::Free(class, objects, bytes));
    }
    fn on_work(&self, class: ClassId, micros: f64) {
        self.events.lock().push(Ev::Work(class, micros));
    }
    fn on_native(&self, caller: ClassId, kind: NativeKind, work: u32, bytes: u64, remote: bool) {
        self.events
            .lock()
            .push(Ev::Native(caller, kind, work, bytes, remote));
    }
    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, remote: bool) {
        self.events
            .lock()
            .push(Ev::StaticAccess(accessor, class, bytes, remote));
    }
    fn on_method_exit(&self, class: ClassId, method: MethodId) {
        self.events.lock().push(Ev::MethodExit(class, method));
    }
    fn on_gc(&self, report: &GcReport) {
        self.events.lock().push(Ev::Gc(
            report.cycle,
            report.freed_objects,
            report.freed_bytes,
        ));
    }
}

/// What the generator knows about a register at a program point.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RegState {
    /// Definitely holds an object of this class.
    Known(ClassId),
    /// Definitely non-null, class unknown (method argument).
    Filled,
    /// Possibly null.
    Empty,
}

impl RegState {
    fn filled(self) -> bool {
        !matches!(self, RegState::Empty)
    }
}

const CLASSES: u32 = 3;
/// Every generated object (and the entry object) has this many reference
/// slots, so slot indices below it are always valid.
const REF_SLOTS: u16 = 4;

/// Signature of one generated method. Bodies may only call methods with a
/// strictly greater index, so generated call graphs are acyclic and every
/// program terminates.
#[derive(Debug, Clone, Copy)]
struct Spec {
    class: ClassId,
    is_static: bool,
    params: u8,
}

fn gen_body(
    rng: &mut Rng,
    specs: &[Spec],
    my_index: usize,
    state: &mut [RegState; 8],
    depth: u32,
    len: u64,
) -> Vec<Op> {
    let mut body = Vec::new();
    for _ in 0..len {
        let pick = rng.below(12);
        let op = match pick {
            0 | 1 => Op::Work {
                micros: 1 + rng.below(200) as u32,
            },
            2 | 3 => {
                let class = ClassId(rng.below(CLASSES as u64) as u32);
                let dst = rng.below(8) as usize;
                state[dst] = RegState::Known(class);
                Op::New {
                    class,
                    scalar_bytes: 16 + rng.below(2048) as u32,
                    ref_slots: REF_SLOTS,
                    dst: Reg(dst as u8),
                }
            }
            4 | 5 => match pick_filled(rng, state) {
                Some(obj) => {
                    let bytes = 1 + rng.below(512) as u32;
                    if rng.below(2) == 0 {
                        Op::Read { obj, bytes }
                    } else {
                        Op::Write { obj, bytes }
                    }
                }
                None => fallback(rng),
            },
            6 => {
                let dst = rng.below(8) as usize;
                state[dst] = RegState::Empty;
                Op::GetSlot {
                    slot: rng.below(REF_SLOTS as u64) as u16,
                    dst: Reg(dst as u8),
                }
            }
            7 => match pick_filled(rng, state) {
                Some(src) => Op::PutSlot {
                    slot: rng.below(REF_SLOTS as u64) as u16,
                    src,
                },
                None => fallback(rng),
            },
            8 => match (pick_filled(rng, state), pick_filled(rng, state)) {
                (Some(obj), Some(src)) if rng.below(2) == 0 => Op::PutSlotOf {
                    obj,
                    slot: rng.below(REF_SLOTS as u64) as u16,
                    src,
                },
                (Some(obj), _) => {
                    let dst = rng.below(8) as usize;
                    state[dst] = RegState::Empty;
                    Op::GetSlotOf {
                        obj,
                        slot: rng.below(REF_SLOTS as u64) as u16,
                        dst: Reg(dst as u8),
                    }
                }
                _ => fallback(rng),
            },
            9 => match gen_call(rng, specs, my_index, state) {
                Some(op) => op,
                None => fallback(rng),
            },
            10 => {
                if rng.below(3) == 0 {
                    Op::Native {
                        kind: NativeKind::ALL[rng.below(6) as usize],
                        work_micros: 1 + rng.below(50) as u32,
                        arg_bytes: 4,
                        ret_bytes: 4,
                    }
                } else {
                    let class = ClassId(rng.below(CLASSES as u64) as u32);
                    let bytes = 1 + rng.below(64) as u32;
                    if rng.below(2) == 0 {
                        Op::GetStatic { class, bytes }
                    } else {
                        Op::PutStatic { class, bytes }
                    }
                }
            }
            _ => {
                if depth < 2 {
                    let mut inner = *state;
                    let n = rng.below(4) as u32;
                    let nested = gen_body(
                        rng,
                        specs,
                        my_index,
                        &mut inner,
                        depth + 1,
                        1 + rng.below(4),
                    );
                    // The loop may run zero times: keep only register facts
                    // that hold both before and after the body.
                    for (s, i) in state.iter_mut().zip(inner.iter()) {
                        if *s != *i {
                            *s = RegState::Empty;
                        }
                    }
                    Op::Repeat { n, body: nested }
                } else {
                    fallback(rng)
                }
            }
        };
        body.push(op);
    }
    body
}

fn fallback(rng: &mut Rng) -> Op {
    Op::Work {
        micros: 1 + rng.below(20) as u32,
    }
}

fn pick_filled(rng: &mut Rng, state: &[RegState; 8]) -> Option<Reg> {
    let filled: Vec<u8> = (0..8u8).filter(|&r| state[r as usize].filled()).collect();
    if filled.is_empty() {
        return None;
    }
    Some(Reg(filled[rng.below(filled.len() as u64) as usize]))
}

/// Generates a dynamic or static call to a later method, or `None` when no
/// receiver/arguments are available at this program point.
fn gen_call(rng: &mut Rng, specs: &[Spec], my_index: usize, state: &[RegState; 8]) -> Option<Op> {
    let mut candidates = Vec::new();
    for (j, spec) in specs.iter().enumerate().skip(my_index + 1) {
        if spec.is_static {
            candidates.push((j, None));
        } else {
            for r in 0..8u8 {
                if state[r as usize] == RegState::Known(spec.class) {
                    candidates.push((j, Some(Reg(r))));
                }
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (j, receiver) = candidates[rng.below(candidates.len() as u64) as usize];
    let spec = specs[j];
    let filled: Vec<Reg> = (0..8u8)
        .filter(|&r| state[r as usize].filled())
        .map(Reg)
        .collect();
    if filled.len() < spec.params as usize {
        return None;
    }
    let args: Vec<Reg> = (0..spec.params)
        .map(|_| filled[rng.below(filled.len() as u64) as usize])
        .collect();
    let method = method_id_within_class(specs, j);
    let arg_bytes = 1 + rng.below(64) as u32;
    let ret_bytes = rng.below(32) as u32;
    Some(match receiver {
        Some(obj) => Op::Call {
            obj,
            class: spec.class,
            method,
            arg_bytes,
            ret_bytes,
            args,
        },
        None => Op::CallStatic {
            class: spec.class,
            method,
            arg_bytes,
            ret_bytes,
            args,
        },
    })
}

/// Method ids are per-class indices in builder insertion order; methods are
/// added to the builder in spec order, so the id of spec `j` is the number
/// of earlier specs in the same class.
fn method_id_within_class(specs: &[Spec], j: usize) -> MethodId {
    let n = specs[..j]
        .iter()
        .filter(|s| s.class == specs[j].class)
        .count();
    MethodId(n as u16)
}

fn gen_program(seed: u64) -> Arc<Program> {
    let mut rng = Rng::new(seed);
    let n_methods = 4 + rng.below(3) as usize;
    let mut specs = Vec::with_capacity(n_methods);
    // Method 0 is the entry point: class 0, dynamic, no parameters.
    specs.push(Spec {
        class: ClassId(0),
        is_static: false,
        params: 0,
    });
    for _ in 1..n_methods {
        specs.push(Spec {
            class: ClassId(rng.below(CLASSES as u64) as u32),
            is_static: rng.below(4) == 0,
            params: rng.below(3) as u8,
        });
    }

    let mut b = ProgramBuilder::new();
    for c in 0..CLASSES {
        b.add_class(format!("C{c}"));
    }
    for (i, spec) in specs.iter().enumerate() {
        let mut state = [RegState::Empty; 8];
        for p in 0..spec.params {
            state[p as usize] = RegState::Filled;
        }
        let body = gen_body(&mut rng, &specs, i, &mut state, 0, 2 + rng.below(7));
        let name = format!("m{i}");
        let def = if spec.is_static {
            MethodDef::new_static(name, body)
        } else {
            MethodDef::new(name, body)
        };
        b.add_method(spec.class, def);
    }
    Arc::new(
        b.build(ClassId(0), MethodId(0), 64, REF_SLOTS)
            .expect("generated program validates"),
    )
}

fn run_mode(
    program: &Arc<Program>,
    mode: ExecMode,
    config: VmConfig,
) -> (VmResult<RunSummary>, Vec<Ev>) {
    let rec = Arc::new(Recorder::default());
    let mut machine = Machine::with_hooks(program.clone(), config, rec.clone());
    machine.set_exec_mode(mode);
    let result = machine.run_entry();
    let events = rec.events.lock().clone();
    (result, events)
}

fn check_equivalence(seed: u64, config: VmConfig, label: &str) {
    let program = gen_program(seed);
    let (flat, flat_events) = run_mode(&program, ExecMode::Flat, config);
    let (legacy, legacy_events) = run_mode(&program, ExecMode::Legacy, config);
    assert_eq!(
        flat, legacy,
        "seed {seed} ({label}): outcome diverged\nprogram: {program:#?}"
    );
    assert_eq!(
        flat_events.len(),
        legacy_events.len(),
        "seed {seed} ({label}): event count diverged"
    );
    for (i, (f, l)) in flat_events.iter().zip(legacy_events.iter()).enumerate() {
        assert_eq!(f, l, "seed {seed} ({label}): event {i} diverged");
    }
}

#[test]
fn flat_ir_matches_tree_walk_semantics() {
    for seed in 0..32u64 {
        check_equivalence(seed, VmConfig::client(1 << 22), "monitoring off");
    }
}

#[test]
fn flat_ir_matches_tree_walk_semantics_with_monitoring() {
    let mut config = VmConfig::client(1 << 22);
    config.cost.monitor_event_micros = 1.0;
    for seed in 100..120u64 {
        check_equivalence(seed, config, "monitoring on");
    }
}

#[test]
fn flat_ir_matches_tree_walk_on_surrogate_config() {
    // A surrogate-speed VM without a peer: remote paths error identically.
    let config = VmConfig {
        speed_factor: 3.5,
        ..VmConfig::client(1 << 22)
    };
    for seed in 200..216u64 {
        check_equivalence(seed, config, "surrogate speed");
    }
}
