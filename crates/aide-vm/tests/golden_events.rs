//! Golden monitor-event fixtures for the interpreter overhaul.
//!
//! The flat register VM batches hook dispatch, so these tests pin down the
//! one thing batching must not change: the exact event stream. A fixed
//! program covering every event type is executed under both interpreters
//! and checked against an in-code expected stream *and* a checked-in JSON
//! fixture. Regenerate the fixture after an intentional change with:
//!
//! ```sh
//! AIDE_BLESS=1 cargo test -p aide-vm --test golden_events
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use aide_vm::{
    ClassId, ExecMode, GcReport, Interaction, InteractionKind, Machine, MethodDef, MethodId,
    NativeKind, ObjectId, Op, Program, ProgramBuilder, Reg, RunSummary, RuntimeHooks, VmConfig,
    VmError, VmResult,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One recorded hook event — the full observable stream, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Ev {
    Interaction(Interaction),
    Alloc {
        class: ClassId,
        object: ObjectId,
        bytes: u64,
    },
    Free {
        class: ClassId,
        objects: u64,
        bytes: u64,
    },
    Work {
        class: ClassId,
        micros: f64,
    },
    Native {
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        bytes: u64,
        remote: bool,
    },
    StaticAccess {
        accessor: ClassId,
        class: ClassId,
        bytes: u64,
        remote: bool,
    },
    MethodExit {
        class: ClassId,
        method: MethodId,
    },
    Gc {
        cycle: u64,
        freed_objects: u64,
    },
}

/// Records every hook event verbatim.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Ev>>,
}

impl RuntimeHooks for Recorder {
    fn on_interaction(&self, event: Interaction) {
        self.events.lock().push(Ev::Interaction(event));
    }
    fn on_alloc(&self, class: ClassId, object: ObjectId, bytes: u64) {
        self.events.lock().push(Ev::Alloc {
            class,
            object,
            bytes,
        });
    }
    fn on_free(&self, class: ClassId, objects: u64, bytes: u64) {
        self.events.lock().push(Ev::Free {
            class,
            objects,
            bytes,
        });
    }
    fn on_work(&self, class: ClassId, micros: f64) {
        self.events.lock().push(Ev::Work { class, micros });
    }
    fn on_native(
        &self,
        caller: ClassId,
        kind: NativeKind,
        work_micros: u32,
        bytes: u64,
        remote: bool,
    ) {
        self.events.lock().push(Ev::Native {
            caller,
            kind,
            work_micros,
            bytes,
            remote,
        });
    }
    fn on_static_access(&self, accessor: ClassId, class: ClassId, bytes: u64, remote: bool) {
        self.events.lock().push(Ev::StaticAccess {
            accessor,
            class,
            bytes,
            remote,
        });
    }
    fn on_method_exit(&self, class: ClassId, method: MethodId) {
        self.events.lock().push(Ev::MethodExit { class, method });
    }
    fn on_gc(&self, report: &GcReport) {
        self.events.lock().push(Ev::Gc {
            cycle: report.cycle,
            freed_objects: report.freed_objects,
        });
    }
}

fn run_mode(program: &Arc<Program>, mode: ExecMode) -> (VmResult<RunSummary>, Vec<Ev>, Machine) {
    let rec = Arc::new(Recorder::default());
    let mut machine = Machine::with_hooks(program.clone(), VmConfig::client(1 << 22), rec.clone());
    machine.set_exec_mode(mode);
    let result = machine.run_entry();
    let events = rec.events.lock().clone();
    (result, events, machine)
}

/// A fixed program whose run touches every event type: allocation, work,
/// field reads/writes, repeated dynamic calls, a static call, a native,
/// and a static-data access.
fn golden_program() -> (Arc<Program>, MethodId, MethodId, MethodId) {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main"); // ClassId(0)
    let helper = b.add_class("Helper"); // ClassId(1)
    let util = b.add_class("Util"); // ClassId(2)
    let help = b.add_method(
        helper,
        MethodDef::new("help", vec![Op::Work { micros: 100 }]),
    );
    let boot = b.add_method(
        util,
        MethodDef::new_static("boot", vec![Op::Work { micros: 50 }]),
    );
    let entry = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: helper,
                    scalar_bytes: 100,
                    ref_slots: 2,
                    dst: Reg(0),
                },
                Op::Work { micros: 500 },
                Op::Write {
                    obj: Reg(0),
                    bytes: 64,
                },
                Op::Read {
                    obj: Reg(0),
                    bytes: 32,
                },
                Op::Repeat {
                    n: 2,
                    body: vec![Op::Call {
                        obj: Reg(0),
                        class: helper,
                        method: help,
                        arg_bytes: 8,
                        ret_bytes: 4,
                        args: vec![],
                    }],
                },
                Op::CallStatic {
                    class: util,
                    method: boot,
                    arg_bytes: 6,
                    ret_bytes: 2,
                    args: vec![],
                },
                Op::Native {
                    kind: NativeKind::Math,
                    work_micros: 10,
                    arg_bytes: 4,
                    ret_bytes: 4,
                },
                Op::GetStatic {
                    class: util,
                    bytes: 16,
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, entry, 64, 4).expect("golden program builds"));
    (program, entry, help, boot)
}

fn interaction(
    caller: u32,
    callee: u32,
    target: Option<u64>,
    kind: InteractionKind,
    bytes: u64,
) -> Ev {
    Ev::Interaction(Interaction {
        caller: ClassId(caller),
        callee: ClassId(callee),
        target: target.map(ObjectId),
        kind,
        bytes,
        remote: false,
    })
}

/// The exact stream the golden program must produce, written out by hand.
/// Entry object: 16-byte header + 64 scalar + 4 slots * 8 = 112 bytes.
/// Helper object: 16 + 100 + 2 * 8 = 132 bytes.
fn expected_events(entry: MethodId, help: MethodId, boot: MethodId) -> Vec<Ev> {
    use InteractionKind::{FieldAccess, Invocation};
    vec![
        Ev::Alloc {
            class: ClassId(0),
            object: ObjectId(0),
            bytes: 112,
        },
        Ev::Alloc {
            class: ClassId(1),
            object: ObjectId(1),
            bytes: 132,
        },
        Ev::Work {
            class: ClassId(0),
            micros: 500.0,
        },
        interaction(0, 1, Some(1), FieldAccess, 64),
        interaction(0, 1, Some(1), FieldAccess, 32),
        interaction(0, 1, Some(1), Invocation, 12),
        Ev::Work {
            class: ClassId(1),
            micros: 100.0,
        },
        Ev::MethodExit {
            class: ClassId(1),
            method: help,
        },
        interaction(0, 1, Some(1), Invocation, 12),
        Ev::Work {
            class: ClassId(1),
            micros: 100.0,
        },
        Ev::MethodExit {
            class: ClassId(1),
            method: help,
        },
        interaction(0, 2, None, Invocation, 8),
        Ev::Work {
            class: ClassId(2),
            micros: 50.0,
        },
        Ev::MethodExit {
            class: ClassId(2),
            method: boot,
        },
        Ev::Native {
            caller: ClassId(0),
            kind: NativeKind::Math,
            work_micros: 10,
            bytes: 8,
            remote: false,
        },
        Ev::StaticAccess {
            accessor: ClassId(0),
            class: ClassId(2),
            bytes: 16,
            remote: false,
        },
        Ev::MethodExit {
            class: ClassId(0),
            method: entry,
        },
    ]
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("vm_events.golden.json")
}

#[test]
fn golden_event_stream_matches_fixture_in_both_modes() {
    let (program, entry, help, boot) = golden_program();
    let expected = expected_events(entry, help, boot);

    let (flat_result, flat_events, _) = run_mode(&program, ExecMode::Flat);
    let (legacy_result, legacy_events, _) = run_mode(&program, ExecMode::Legacy);
    flat_result.expect("flat run succeeds");
    legacy_result.expect("legacy run succeeds");

    assert_eq!(
        flat_events, legacy_events,
        "batched hook dispatch changed the event stream"
    );
    assert_eq!(flat_events, expected, "event stream drifted from golden");

    let path = fixture_path();
    if std::env::var_os("AIDE_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("fixture dir");
        let mut json = serde_json::to_string_pretty(&expected).expect("serialize fixture");
        json.push('\n');
        std::fs::write(&path, json).expect("bless fixture");
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} unreadable: {e} (re-bless with AIDE_BLESS=1)",
            path.display()
        )
    });
    let loaded: Vec<Ev> = serde_json::from_str(&on_disk).expect("fixture parses");
    assert_eq!(
        loaded, expected,
        "checked-in fixture drifted; re-bless with AIDE_BLESS=1"
    );
}

#[test]
fn golden_summaries_agree_across_modes() {
    let (program, ..) = golden_program();
    let (flat, _, _) = run_mode(&program, ExecMode::Flat);
    let (legacy, _, _) = run_mode(&program, ExecMode::Legacy);
    let flat = flat.expect("flat run succeeds");
    let legacy = legacy.expect("legacy run succeeds");
    assert_eq!(flat, legacy, "RunSummary diverged between interpreters");
    // 12 logical ops: 8 in main (Repeat is not an op), 2 Calls' Work
    // bodies, 1 static Work. Loop/Return control ops must not be counted.
    assert_eq!(flat.ops_executed, 12);
    assert!(flat.mutator_seconds > 0.0);
    // Monitoring is off in the default cost model.
    assert_eq!(flat.hook_seconds, 0.0);
    assert!((flat.cpu_seconds - (flat.mutator_seconds + flat.hook_seconds)).abs() < 1e-18);
}

#[test]
fn hook_seconds_split_out_when_monitoring_is_on() {
    let (program, ..) = golden_program();
    let mut config = VmConfig::client(1 << 22);
    config.cost.monitor_event_micros = 1.0;
    let run = |mode: ExecMode| {
        let rec = Arc::new(Recorder::default());
        let mut machine = Machine::with_hooks(program.clone(), config, rec.clone());
        machine.set_exec_mode(mode);
        let summary = machine.run_entry().expect("run succeeds");
        let events = rec.events.lock().clone();
        (summary, events)
    };
    let (flat, flat_events) = run(ExecMode::Flat);
    let (legacy, legacy_events) = run(ExecMode::Legacy);
    assert_eq!(flat, legacy, "split accounting diverged between modes");
    assert_eq!(flat_events, legacy_events);
    // Every monitor event costs exactly 1 µs of hook time — except method
    // exits, which are call-tree bookkeeping and never monitor-charged.
    let charged = flat_events
        .iter()
        .filter(|e| !matches!(e, Ev::MethodExit { .. }))
        .count();
    let expected_hook = charged as f64 * 1.0 / 1e6;
    assert!(
        (flat.hook_seconds - expected_hook).abs() < 1e-15,
        "hook_seconds {} != events * 1µs {}",
        flat.hook_seconds,
        expected_hook
    );
    assert!(flat.mutator_seconds > 0.0);
}

#[test]
fn monomorphic_sites_hit_after_first_touch() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let data = b.add_class("Data");
    let entry = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![
                Op::New {
                    class: data,
                    scalar_bytes: 64,
                    ref_slots: 0,
                    dst: Reg(0),
                },
                Op::Repeat {
                    n: 100,
                    body: vec![Op::Read {
                        obj: Reg(0),
                        bytes: 8,
                    }],
                },
            ],
        ),
    );
    let program = Arc::new(b.build(main, entry, 16, 0).unwrap());
    let mut machine = Machine::with_hooks(
        program,
        VmConfig::client(1 << 20),
        Arc::new(aide_vm::NullHooks),
    );
    machine.set_exec_mode(ExecMode::Flat);
    let summary = machine.run_entry().expect("run succeeds");
    let (hits, misses) = machine.vm().lock().ic_stats();
    assert_eq!(misses, 1, "one cold miss fills the Read site");
    assert_eq!(hits, 99, "remaining iterations are single-compare hits");
    assert!(summary.ops_executed >= 101);
}

#[test]
fn migration_bumps_epoch_and_flushes_inline_caches() {
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let poke = b.add_method(
        main,
        MethodDef::new(
            "poke",
            vec![Op::Read {
                obj: Reg(0),
                bytes: 8,
            }],
        ),
    );
    let entry = b.add_method(main, MethodDef::new("main", vec![]));
    let program = Arc::new(b.build(main, entry, 32, 0).unwrap());
    let mut machine = Machine::with_hooks(
        program,
        VmConfig::client(1 << 20),
        Arc::new(aide_vm::NullHooks),
    );
    machine.set_exec_mode(ExecMode::Flat);
    machine.run_entry().expect("entry runs");
    let target = ObjectId(0); // the entry object stays live after the run

    machine
        .call_on(target, main, poke, &[target])
        .expect("first poke");
    machine
        .call_on(target, main, poke, &[target])
        .expect("second poke");
    let (hits, misses) = machine.vm().lock().ic_stats();
    assert_eq!(misses, 1, "first poke fills the site");
    assert_eq!(hits, 1, "second poke hits the warm cache");

    // Migrate the object out and back: locality may have changed, so the
    // warm answer must not be trusted again without a fresh heap probe.
    {
        let mut vm = machine.vm().lock();
        let epoch_before = vm.heap().locality_epoch();
        let record = vm.heap_mut().migrate_out(target).expect("migrate out");
        vm.heap_mut()
            .migrate_in(target, record)
            .expect("migrate in");
        assert_eq!(vm.heap().locality_epoch(), epoch_before + 2);
    }
    machine
        .call_on(target, main, poke, &[target])
        .expect("post-migration poke");
    let (hits_after, misses_after) = machine.vm().lock().ic_stats();
    assert_eq!(
        misses_after, 2,
        "stale epoch must force a miss after migration"
    );
    assert_eq!(hits_after, 1);
}

#[test]
fn legacy_escape_hatch_reports_no_cache_traffic() {
    let (program, ..) = golden_program();
    let (result, _, machine) = run_mode(&program, ExecMode::Legacy);
    result.expect("legacy run succeeds");
    assert_eq!(machine.exec_mode(), ExecMode::Legacy);
    assert_eq!(
        machine.vm().lock().ic_stats(),
        (0, 0),
        "the tree-walker must not touch inline caches"
    );
}

#[test]
fn legacy_env_var_selects_tree_walker() {
    // Every other test in this binary pins its mode explicitly via
    // set_exec_mode, so briefly setting the escape hatch here cannot
    // perturb them even when tests run in parallel.
    std::env::set_var("AIDE_VM_LEGACY", "1");
    let (program, ..) = golden_program();
    let machine = Machine::with_hooks(
        program,
        VmConfig::client(1 << 22),
        Arc::new(aide_vm::NullHooks),
    );
    std::env::remove_var("AIDE_VM_LEGACY");
    assert_eq!(machine.exec_mode(), ExecMode::Legacy);
    machine.run_entry().expect("legacy run succeeds");
    assert_eq!(machine.vm().lock().ic_stats(), (0, 0));
}

#[test]
fn errors_match_across_modes() {
    // Reading an empty register fails identically in both interpreters.
    let mut b = ProgramBuilder::new();
    let main = b.add_class("Main");
    let entry = b.add_method(
        main,
        MethodDef::new(
            "main",
            vec![Op::Read {
                obj: Reg(5),
                bytes: 8,
            }],
        ),
    );
    let program = Arc::new(b.build(main, entry, 16, 0).unwrap());
    let (flat, flat_events, _) = run_mode(&program, ExecMode::Flat);
    let (legacy, legacy_events, _) = run_mode(&program, ExecMode::Legacy);
    assert_eq!(flat.unwrap_err(), VmError::NullRegister(Reg(5)));
    assert_eq!(legacy.unwrap_err(), VmError::NullRegister(Reg(5)));
    assert_eq!(
        flat_events, legacy_events,
        "error paths must emit the same events"
    );
}
