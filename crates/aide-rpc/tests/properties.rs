//! Property-based tests: the wire codec round-trips arbitrary messages and
//! rejects arbitrary corruption without panicking; reference tables keep
//! exact counts under arbitrary interleavings.

use aide_rpc::{ExportTable, ImportTable, Message, Reply, Request};
use aide_vm::{ClassId, MethodId, NativeKind, ObjectId, ObjectRecord};
use proptest::prelude::*;

fn arb_object_id() -> impl Strategy<Value = ObjectId> {
    (any::<u64>(), any::<bool>()).prop_map(|(n, surrogate)| {
        let n = n & ((1 << 62) - 1);
        if surrogate {
            ObjectId::surrogate(n)
        } else {
            ObjectId::client(n)
        }
    })
}

fn arb_native() -> impl Strategy<Value = NativeKind> {
    prop_oneof![
        Just(NativeKind::Math),
        Just(NativeKind::StringOp),
        Just(NativeKind::Framebuffer),
        Just(NativeKind::UiToolkit),
        Just(NativeKind::FileIo),
        Just(NativeKind::SystemInfo),
    ]
}

fn arb_record() -> impl Strategy<Value = ObjectRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(proptest::option::of(arb_object_id()), 0..6),
    )
        .prop_map(|(class, bytes, slots)| {
            let mut rec = ObjectRecord::new(ClassId(class), bytes, slots.len() as u16);
            for (i, s) in slots.into_iter().enumerate() {
                rec.slots[i] = s;
            }
            rec
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            arb_object_id(),
            any::<u32>(),
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(arb_object_id(), 0..8)
        )
            .prop_map(|(target, class, method, arg_bytes, ret_bytes, args)| {
                Request::Invoke {
                    target,
                    class: ClassId(class),
                    method: MethodId(method),
                    arg_bytes,
                    ret_bytes,
                    args,
                }
            }),
        (arb_object_id(), any::<u32>(), any::<bool>()).prop_map(|(target, bytes, write)| {
            Request::FieldAccess {
                target,
                bytes,
                write,
            }
        }),
        (arb_object_id(), any::<u16>())
            .prop_map(|(target, slot)| Request::GetSlot { target, slot }),
        (
            arb_object_id(),
            any::<u16>(),
            proptest::option::of(arb_object_id())
        )
            .prop_map(|(target, slot, value)| Request::PutSlot {
                target,
                slot,
                value
            }),
        (
            any::<u32>(),
            arb_native(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(caller, kind, work_micros, arg_bytes, ret_bytes)| {
                Request::Native {
                    caller: ClassId(caller),
                    kind,
                    work_micros,
                    arg_bytes,
                    ret_bytes,
                }
            }),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
            |(accessor, class, bytes, write)| Request::StaticAccess {
                accessor: ClassId(accessor),
                class: ClassId(class),
                bytes,
                write,
            }
        ),
        arb_object_id().prop_map(|target| Request::ClassOf { target }),
        proptest::collection::vec((arb_object_id(), arb_record()), 0..12)
            .prop_map(|objects| Request::Migrate { objects }),
        (
            any::<u64>(),
            proptest::collection::vec((arb_object_id(), arb_record()), 0..12)
        )
            .prop_map(|(txn, objects)| Request::MigratePrepare { txn, objects }),
        any::<u64>().prop_map(|txn| Request::MigrateCommit { txn }),
        any::<u64>().prop_map(|txn| Request::MigrateAbort { txn }),
        proptest::collection::vec(arb_object_id(), 0..24)
            .prop_map(|objects| Request::GcRelease { objects }),
        Just(Request::Shutdown),
        Just(Request::Ping),
        Just(Request::Stats),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_request())
            .prop_map(|(seq, client, body)| Message::Request { seq, client, body }),
        (any::<u64>()).prop_map(|seq| Message::Reply {
            seq,
            result: Ok(Reply::Unit)
        }),
        (any::<u64>(), proptest::option::of(arb_object_id())).prop_map(|(seq, v)| {
            Message::Reply {
                seq,
                result: Ok(Reply::Slot(v)),
            }
        }),
        (any::<u64>(), any::<u32>()).prop_map(|(seq, c)| Message::Reply {
            seq,
            result: Ok(Reply::Class(ClassId(c)))
        }),
        (any::<u64>(), "[ -~]{0,64}").prop_map(|(seq, text)| Message::Reply {
            seq,
            result: Ok(Reply::Text(text))
        }),
        (any::<u64>(), "[ -~]{0,64}").prop_map(|(seq, msg)| Message::Reply {
            seq,
            result: Err(msg)
        }),
    ]
}

proptest! {
    /// Every message round-trips exactly through the codec.
    #[test]
    fn codec_round_trips(msg in arb_message()) {
        let frame = msg.encode();
        let back = Message::decode(&frame).expect("well-formed frame decodes");
        prop_assert_eq!(msg, back);
    }

    /// Truncations never decode successfully to a *different* message, and
    /// never panic.
    #[test]
    fn truncation_is_detected(msg in arb_message(), cut in any::<proptest::sample::Index>()) {
        let frame = msg.encode();
        let cut = cut.index(frame.len());
        if cut < frame.len() {
            match Message::decode(&frame[..cut]) {
                Ok(other) => prop_assert_ne!(other, msg, "truncated decode must differ"),
                Err(_) => {}
            }
        }
    }

    /// Random byte flips never panic the decoder; if they decode, re-encoding
    /// is self-consistent.
    #[test]
    fn corruption_never_panics(msg in arb_message(), pos in any::<proptest::sample::Index>(), flip in 1u8..255) {
        let mut frame = msg.encode().to_vec();
        let pos = pos.index(frame.len());
        frame[pos] ^= flip;
        if let Ok(decoded) = Message::decode(&frame) {
            let re = decoded.encode();
            let again = Message::decode(&re).expect("re-encode decodes");
            prop_assert_eq!(decoded, again);
        }
    }

    /// Fuzz the decoder with arbitrary byte soup: it must reject or decode,
    /// never panic. (Frames this short of a valid CRC essentially always
    /// reject; the property is the absence of a crash path.)
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        if let Ok(decoded) = Message::decode(&bytes) {
            // The astronomically unlikely accidental decode must still be
            // self-consistent.
            let re = decoded.encode();
            prop_assert_eq!(Message::decode(&re).expect("re-encode decodes"), decoded);
        }
    }

    /// Any single-byte flip in the frame *payload* (past the 5-byte
    /// version + CRC header) is caught by the checksum.
    #[test]
    fn payload_corruption_is_rejected(
        msg in arb_message(),
        pos in any::<proptest::sample::Index>(),
        flip in 1u8..255,
    ) {
        let mut frame = msg.encode().to_vec();
        let header = 5; // version byte + 4-byte CRC32
        let pos = header + pos.index(frame.len() - header);
        frame[pos] ^= flip;
        prop_assert!(Message::decode(&frame).is_err(), "flipped payload byte must fail the CRC");
    }

    /// Export-table counts are exact: after any interleaving of exports and
    /// releases, the pin state matches a reference-counting model.
    #[test]
    fn export_table_matches_refcount_model(
        ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..200)
    ) {
        let table = ExportTable::new();
        let mut model: std::collections::HashMap<u64, u64> = Default::default();
        let mut pinned: std::collections::HashSet<u64> = Default::default();
        for (obj, is_export) in ops {
            let id = ObjectId::client(obj);
            if is_export {
                let newly = table.export(id);
                let count = model.entry(obj).or_insert(0);
                *count += 1;
                prop_assert_eq!(newly, *count == 1);
                if newly {
                    pinned.insert(obj);
                }
            } else {
                let released = table.release(id);
                let count = model.entry(obj).or_insert(0);
                if *count > 0 {
                    *count -= 1;
                    prop_assert_eq!(released, *count == 0);
                    if released {
                        pinned.remove(&obj);
                    }
                } else {
                    prop_assert!(!released, "release of unexported object is a no-op");
                }
            }
            prop_assert_eq!(table.contains(id), model.get(&obj).copied().unwrap_or(0) > 0);
        }
        let live = model.values().filter(|&&c| c > 0).count();
        prop_assert_eq!(table.len(), live);
    }

    /// Import-table sweeps drop exactly the unreferenced entries.
    #[test]
    fn import_sweep_is_exact(
        held in proptest::collection::hash_set(0u64..64, 0..32),
        still in proptest::collection::hash_set(0u64..64, 0..32),
    ) {
        let table = ImportTable::new();
        for &h in &held {
            table.import(ObjectId::surrogate(h));
        }
        let still_ids: std::collections::HashSet<ObjectId> =
            still.iter().map(|&s| ObjectId::surrogate(s)).collect();
        let dropped = table.sweep_dropped(&still_ids);
        let expected: std::collections::HashSet<u64> =
            held.difference(&still).copied().collect();
        prop_assert_eq!(dropped.len(), expected.len());
        for d in dropped {
            prop_assert!(!still_ids.contains(&d));
        }
        prop_assert_eq!(table.len(), held.intersection(&still).count());
    }
}
