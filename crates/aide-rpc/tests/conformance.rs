//! Backend conformance: the same session, multiplexing, chaos, and retry
//! scenarios must behave identically over every `Transport` backend —
//! in-memory channels, real multiplexed TCP, and the emulated virtual-time
//! link. Each scenario iterates the full fixture set, so a backend that
//! diverges from the shared seam fails by name.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aide_graph::CommParams;
use aide_rpc::{
    channel_transport, chaos_wrap, virtual_transport, Acceptor, BackendKind, ChaosSchedule,
    Dispatcher, Endpoint, EndpointConfig, NetClock, Reply, Request, RetryPolicy, RpcError, Session,
    TcpMuxListener, TcpTransport, Transport,
};
use aide_vm::{ClassId, ObjectId, ObjectRecord};

/// One backend under test: the initiating and accepting halves, boxed so
/// every scenario runs against the same `dyn` seam the platform uses.
struct Fixture {
    name: &'static str,
    transport: Box<dyn Transport>,
    acceptor: Box<dyn Acceptor>,
}

fn fixtures() -> Vec<Fixture> {
    let mut all = Vec::new();

    let (t, a) = channel_transport();
    all.push(Fixture {
        name: "inmem",
        transport: Box::new(t),
        acceptor: Box::new(a),
    });

    let (t, a, _clock) = virtual_transport(CommParams::WAVELAN);
    all.push(Fixture {
        name: "emu",
        transport: Box::new(t),
        acceptor: Box::new(a),
    });

    let listener = TcpMuxListener::bind(std::net::SocketAddr::from(([127, 0, 0, 1], 0)))
        .expect("bind localhost listener");
    let addr = listener.local_addr();
    let accepted = std::thread::spawn(move || listener.accept());
    let t = TcpTransport::connect(addr, Duration::from_secs(2)).expect("connect");
    let conn = accepted.join().expect("accept thread").expect("accept");
    all.push(Fixture {
        name: "tcp",
        transport: Box::new(t),
        acceptor: Box::new(conn),
    });

    all
}

fn open_pair(fx: &Fixture) -> (Session, Session) {
    let ours = fx.transport.open_session().expect("open session");
    let theirs = fx.acceptor.accept().expect("accept session");
    (ours, theirs)
}

/// Answers slot reads with a fixed object and executes everything else.
struct EchoDispatcher;

impl Dispatcher for EchoDispatcher {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        match request {
            Request::GetSlot { .. } => Ok(Reply::Slot(Some(ObjectId::surrogate(7)))),
            _ => Ok(Reply::Unit),
        }
    }
}

/// The client side never serves.
struct NullDispatcher;

impl Dispatcher for NullDispatcher {
    fn dispatch(&self, _request: Request) -> Result<Reply, String> {
        Ok(Reply::Unit)
    }
}

/// A small worker pool: these scenarios have no nested cross-VM calls.
fn small_config() -> EndpointConfig {
    EndpointConfig {
        workers: 4,
        ..EndpointConfig::default()
    }
}

fn endpoint_pair(
    client_session: Session,
    server_session: Session,
    config: EndpointConfig,
) -> (Arc<Endpoint>, Arc<Endpoint>) {
    let clock = Arc::new(NetClock::new());
    let client = Endpoint::start(
        client_session,
        CommParams::WAVELAN,
        clock.clone(),
        Arc::new(NullDispatcher),
        config,
    );
    let server = Endpoint::start(
        server_session,
        CommParams::WAVELAN,
        clock,
        Arc::new(EchoDispatcher),
        config,
    );
    (client, server)
}

#[test]
fn raw_frames_round_trip_on_every_backend() {
    for fx in fixtures() {
        let (ours, theirs) = open_pair(&fx);
        ours.send(vec![1, 2, 3]).unwrap();
        assert_eq!(theirs.recv().unwrap(), vec![1, 2, 3], "{}", fx.name);
        theirs.send(vec![9, 8]).unwrap();
        assert_eq!(ours.recv().unwrap(), vec![9, 8], "{}", fx.name);
        assert_eq!(ours.backend(), theirs.backend(), "{}", fx.name);
    }
}

#[test]
fn backends_report_their_kind() {
    let expected = [
        ("inmem", BackendKind::InMemory),
        ("emu", BackendKind::Emulated),
        ("tcp", BackendKind::Tcp),
    ];
    for (fx, (name, kind)) in fixtures().iter().zip(expected) {
        assert_eq!(fx.name, name);
        assert_eq!(fx.transport.backend(), kind);
        let (ours, _theirs) = open_pair(fx);
        assert_eq!(ours.backend(), kind);
    }
}

#[test]
fn endpoints_complete_calls_on_every_backend() {
    for fx in fixtures() {
        let (cs, ss) = open_pair(&fx);
        let (client, server) = endpoint_pair(cs, ss, small_config());
        for _ in 0..10 {
            let reply = client
                .call(Request::GetSlot {
                    target: ObjectId::surrogate(7),
                    slot: 0,
                })
                .unwrap_or_else(|e| panic!("{}: {e}", fx.name));
            assert_eq!(reply, Reply::Slot(Some(ObjectId::surrogate(7))));
        }
        assert_eq!(server.requests_served(), 10, "{}", fx.name);
        client.shutdown();
        server.shutdown();
        client.join();
        server.join();
    }
}

#[test]
fn many_concurrent_sessions_stay_isolated_on_every_backend() {
    for fx in fixtures() {
        let mut pairs = Vec::new();
        for _ in 0..4 {
            pairs.push(open_pair(&fx));
        }
        // Echo servers, one thread per accepted session.
        let echoes: Vec<_> = pairs
            .iter()
            .map(|(_, theirs)| {
                let theirs = theirs.clone();
                std::thread::spawn(move || {
                    while let Ok(frame) = theirs.recv() {
                        if theirs.send(frame.to_vec()).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        for (i, (ours, _)) in pairs.iter().enumerate() {
            ours.send(vec![i as u8; 8]).unwrap();
        }
        for (i, (ours, _)) in pairs.iter().enumerate() {
            assert_eq!(
                ours.recv().unwrap(),
                vec![i as u8; 8],
                "{} session {i}",
                fx.name
            );
        }
        // On a multiplexed carrier dropping the handle is not enough: tell
        // the peer each session is done so its echo loop disconnects.
        for (ours, _) in &pairs {
            ours.close();
        }
        drop(pairs);
        for echo in echoes {
            echo.join().unwrap();
        }
    }
}

#[test]
fn deterministic_duplicates_are_absorbed_on_every_backend() {
    for fx in fixtures() {
        let (cs, ss) = open_pair(&fx);
        // Every client frame is sent twice; the serving side's at-most-once
        // cache must absorb the copies identically on every backend.
        let (cs, _stats) = chaos_wrap(
            cs,
            ChaosSchedule {
                duplicate: 1.0,
                ..ChaosSchedule::seeded(42)
            },
        );
        let (client, server) = endpoint_pair(cs, ss, small_config());
        for _ in 0..10 {
            client
                .call(Request::FieldAccess {
                    target: ObjectId::surrogate(1),
                    bytes: 16,
                    write: true,
                })
                .unwrap_or_else(|e| panic!("{}: {e}", fx.name));
        }
        assert_eq!(server.requests_served(), 10, "{}", fx.name);
        assert_eq!(server.dedup_hits(), 10, "{}", fx.name);
        client.shutdown();
        server.shutdown();
        client.join();
        server.join();
    }
}

#[test]
fn retry_masks_seeded_loss_on_every_backend() {
    let config = EndpointConfig {
        workers: 2,
        call_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_millis(100),
        retry: RetryPolicy {
            max_attempts: 12,
            attempt_timeout: Duration::from_millis(100),
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(20),
            ..RetryPolicy::default()
        },
    };
    for fx in fixtures() {
        let (cs, ss) = open_pair(&fx);
        let (cs, _stats) = chaos_wrap(
            cs,
            ChaosSchedule {
                drop: 0.25,
                ..ChaosSchedule::seeded(7)
            },
        );
        let (client, server) = endpoint_pair(cs, ss, config);
        for _ in 0..20 {
            client
                .call_with_retry(Request::FieldAccess {
                    target: ObjectId::surrogate(1),
                    bytes: 0,
                    write: true,
                })
                .unwrap_or_else(|e| panic!("{}: {e}", fx.name));
        }
        // Exactly-once execution despite loss and retransmission.
        assert_eq!(server.requests_served(), 20, "{}", fx.name);
        client.shutdown();
        server.shutdown();
        client.join();
        server.join();
    }
}

#[test]
fn a_slow_session_does_not_stall_its_siblings() {
    // The multiplexing fairness property: on every backend — most
    // importantly TCP, where sessions share one socket and one writer —
    // a session whose server is asleep must not block service on its
    // siblings.
    for fx in fixtures() {
        let (slow_ours, slow_theirs) = open_pair(&fx);
        let (fast_ours, fast_theirs) = open_pair(&fx);

        let slow_server = std::thread::spawn(move || {
            let frame = slow_theirs.recv().unwrap();
            std::thread::sleep(Duration::from_millis(600));
            slow_theirs.send(frame.to_vec()).unwrap();
        });
        let fast_server = std::thread::spawn(move || {
            while let Ok(frame) = fast_theirs.recv() {
                if fast_theirs.send(frame.to_vec()).is_err() {
                    break;
                }
            }
        });

        slow_ours.send(vec![1; 32]).unwrap();
        let started = Instant::now();
        for i in 0..50 {
            fast_ours.send(vec![i; 64]).unwrap();
            assert_eq!(fast_ours.recv().unwrap(), vec![i; 64], "{}", fx.name);
        }
        let fast_elapsed = started.elapsed();
        assert!(
            fast_elapsed < Duration::from_millis(500),
            "{}: 50 fast round trips took {fast_elapsed:?} behind a sleeping sibling",
            fx.name
        );
        // The slow session still completes.
        assert_eq!(slow_ours.recv().unwrap(), vec![1; 32], "{}", fx.name);
        slow_server.join().unwrap();
        fast_ours.close();
        drop(fast_ours);
        fast_server.join().unwrap();
    }
}

/// Refuses every data request with a `Busy` backpressure reply while
/// counting how many times it was asked — admission control's server half.
struct SaturatedDispatcher {
    asked: std::sync::atomic::AtomicU64,
}

impl Dispatcher for SaturatedDispatcher {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        match request {
            Request::Ping => Ok(Reply::Unit),
            _ => {
                self.asked.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Ok(Reply::Busy { retry_after_ms: 25 })
            }
        }
    }
}

#[test]
fn busy_replies_surface_once_and_never_burn_retries_on_every_backend() {
    for fx in fixtures() {
        let (cs, ss) = open_pair(&fx);
        let clock = Arc::new(NetClock::new());
        let client = Endpoint::start(
            cs,
            CommParams::WAVELAN,
            clock.clone(),
            Arc::new(NullDispatcher),
            small_config(),
        );
        let served = Arc::new(SaturatedDispatcher {
            asked: std::sync::atomic::AtomicU64::new(0),
        });
        let server = Endpoint::start(
            ss,
            CommParams::WAVELAN,
            clock,
            served.clone(),
            small_config(),
        );

        // Both the single-shot and the retrying call must surface the hint
        // as RpcError::Busy — and the retrying one must NOT re-ask: a Busy
        // reply is an answer, and repeating it only adds load.
        for retrying in [false, true] {
            let request = Request::FieldAccess {
                target: ObjectId::surrogate(1),
                bytes: 16,
                write: true,
            };
            let result = if retrying {
                client.call_with_retry(request)
            } else {
                client.call(request)
            };
            match result {
                Err(RpcError::Busy { retry_after_ms }) => {
                    assert_eq!(retry_after_ms, 25, "{}", fx.name)
                }
                other => panic!("{}: expected Busy, got {other:?}", fx.name),
            }
        }
        assert_eq!(
            served.asked.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "{}: one server-side refusal per call, retries never amplify saturation",
            fx.name
        );
        client.shutdown();
        server.shutdown();
        client.join();
        server.join();
    }
}

/// Installs relayed shipments with the same exactly-once-per-txn contract
/// the platform's `VmDispatcher` honours: duplicate `RelayDeliver` calls
/// for an already-applied txn acknowledge without re-installing.
struct RelayTargetDispatcher {
    applied: parking_lot::Mutex<std::collections::HashSet<u64>>,
    objects_installed: std::sync::atomic::AtomicU64,
}

impl Dispatcher for RelayTargetDispatcher {
    fn dispatch(&self, request: Request) -> Result<Reply, String> {
        match request {
            Request::RelayDeliver { txn, objects, .. } => {
                if self.applied.lock().insert(txn) {
                    self.objects_installed
                        .fetch_add(objects.len() as u64, std::sync::atomic::Ordering::SeqCst);
                }
                Ok(Reply::Unit)
            }
            _ => Ok(Reply::Unit),
        }
    }
}

#[test]
fn queued_relay_delivery_is_exactly_once_on_every_backend() {
    for fx in fixtures() {
        let (cs, ss) = open_pair(&fx);
        // Chaos duplicates every frame: the endpoint's at-most-once cache
        // must absorb wire-level copies, and the dispatcher's txn set must
        // absorb application-level re-deliveries.
        let (cs, _stats) = chaos_wrap(
            cs,
            ChaosSchedule {
                duplicate: 1.0,
                ..ChaosSchedule::seeded(11)
            },
        );
        let clock = Arc::new(NetClock::new());
        let client = Endpoint::start(
            cs,
            CommParams::WAVELAN,
            clock.clone(),
            Arc::new(NullDispatcher),
            small_config(),
        );
        let target = Arc::new(RelayTargetDispatcher {
            applied: parking_lot::Mutex::new(std::collections::HashSet::new()),
            objects_installed: std::sync::atomic::AtomicU64::new(0),
        });
        let server = Endpoint::start(
            ss,
            CommParams::WAVELAN,
            clock,
            target.clone(),
            small_config(),
        );

        let shipment = |txn: u64| Request::RelayDeliver {
            txn,
            queued_for_ms: 120,
            objects: (0..3)
                .map(|i| {
                    (
                        ObjectId::client(txn * 10 + i),
                        ObjectRecord::new(ClassId(1), 256, 1),
                    )
                })
                .collect(),
        };
        for txn in 1..=4u64 {
            client.call_with_retry(shipment(txn)).unwrap();
        }
        // The relay re-sends txn 2 after a reconnect: acknowledged, not
        // re-installed.
        client.call_with_retry(shipment(2)).unwrap();
        assert_eq!(
            target
                .objects_installed
                .load(std::sync::atomic::Ordering::SeqCst),
            12,
            "{}: 4 unique txns x 3 objects, duplicates install nothing",
            fx.name
        );
        client.shutdown();
        server.shutdown();
        client.join();
        server.join();
    }
}

#[test]
fn session_close_leaves_siblings_running_on_every_backend() {
    for fx in fixtures() {
        let (a_ours, a_theirs) = open_pair(&fx);
        let (b_ours, b_theirs) = open_pair(&fx);
        a_ours.close();
        drop(a_ours);
        drop(a_theirs);
        b_ours.send(vec![5]).unwrap();
        assert_eq!(b_theirs.recv().unwrap(), vec![5], "{}", fx.name);
    }
}
