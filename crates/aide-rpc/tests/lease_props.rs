//! Property-based tests for the lease/epoch state machine: under
//! arbitrary interleavings of export, renew, clock advance, epoch bumps,
//! and release batches — including duplicated, reordered, stale-epoch,
//! and unknown-id releases — the export table never double-unpins, never
//! keeps an expired entry past a sweep, and always converges to empty.
//!
//! The model is the set of currently pinned ids: every id the table hands
//! back (from a release or a sweep) must be pinned in the model at that
//! moment, exactly once. A violation is precisely a leak (model entry the
//! table forgot) or a double unpin (table returning an id twice).

use std::collections::HashSet;
use std::sync::Arc;

use aide_rpc::{ExportTable, GcClock};
use aide_vm::ObjectId;
use proptest::prelude::*;
use proptest::test_runner::TestCaseResult;

const TTL_MS: u64 = 100;

#[derive(Debug, Clone)]
enum Op {
    /// Export id (idempotent pin: only the first export per id pins).
    Export(u8),
    /// A release batch stamped with an absolute (epoch, seq) pair —
    /// arbitrary pairs model duplicates, reordering, and stale epochs.
    Release { epoch: u8, seq: u8, ids: Vec<u8> },
    /// A renewal stamped with an absolute epoch.
    Renew(u8),
    /// Advance the lease clock.
    Advance(u16),
    /// Reclaim expired leases.
    SweepExpired,
    /// Fence off the current epoch (failover).
    BeginEpoch,
    /// Reclaim entries stranded behind the fence.
    SweepStale,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::Export),
        (0u8..4, 0u8..8, proptest::collection::vec(0u8..20, 0..6))
            .prop_map(|(epoch, seq, ids)| Op::Release { epoch, seq, ids }),
        (0u8..4).prop_map(Op::Renew),
        (0u16..200).prop_map(Op::Advance),
        Just(Op::SweepExpired),
        Just(Op::BeginEpoch),
        Just(Op::SweepStale),
    ]
}

/// Asserts `returned` ids are pinned in the model exactly once each, and
/// unpins them. Any duplicate or unknown id is exactly a double unpin.
fn unpin_all_checked(
    model: &mut HashSet<ObjectId>,
    returned: &[ObjectId],
    what: &str,
) -> TestCaseResult {
    let mut seen = HashSet::new();
    for id in returned {
        prop_assert!(
            seen.insert(*id),
            "{} returned {:?} twice in one batch",
            what,
            id
        );
        prop_assert!(
            model.remove(id),
            "{} returned {:?} which is not pinned — double unpin",
            what,
            id
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lease_machine_never_double_unpins_and_always_converges(
        ops in proptest::collection::vec(arb_op(), 1..80)
    ) {
        let clock = Arc::new(GcClock::new());
        let table = ExportTable::with_clock(clock.clone());
        table.set_ttl_ms(TTL_MS);
        let mut model: HashSet<ObjectId> = HashSet::new();

        for op in &ops {
            match op {
                Op::Export(n) => {
                    let id = ObjectId::client(u64::from(*n));
                    let newly = table.export(id);
                    prop_assert_eq!(
                        newly,
                        model.insert(id),
                        "export pin decision must match the model"
                    );
                }
                Op::Release { epoch, seq, ids } => {
                    let ids: Vec<ObjectId> =
                        ids.iter().map(|n| ObjectId::client(u64::from(*n))).collect();
                    let returned = table.release_batch(
                        u64::from(*epoch),
                        u64::from(*seq),
                        &ids,
                    );
                    unpin_all_checked(&mut model, &returned, "release_batch")?;
                }
                Op::Renew(epoch) => {
                    table.renew(u64::from(*epoch));
                }
                Op::Advance(ms) => {
                    clock.advance_ms(u64::from(*ms));
                }
                Op::SweepExpired => {
                    let returned = table.sweep_expired();
                    unpin_all_checked(&mut model, &returned, "sweep_expired")?;
                    // A sweep leaves no expired entry behind: sweeping
                    // again without moving the clock finds nothing.
                    prop_assert!(
                        table.sweep_expired().is_empty(),
                        "an immediate re-sweep must find nothing expired"
                    );
                }
                Op::BeginEpoch => {
                    table.begin_epoch();
                }
                Op::SweepStale => {
                    let returned = table.sweep_stale_epochs();
                    unpin_all_checked(&mut model, &returned, "sweep_stale_epochs")?;
                }
            }
            // The table and the model always agree on what is pinned.
            prop_assert_eq!(table.len(), model.len());
            for id in &model {
                prop_assert!(table.contains(*id), "model entry {:?} leaked", id);
            }
        }

        // Convergence: with the peer gone, fencing plus one full TTL of
        // silence drains every surviving entry — no reachable state leaks.
        table.begin_epoch();
        unpin_all_checked(&mut model, &table.sweep_stale_epochs(), "final stale sweep")?;
        clock.advance_ms(TTL_MS + 1);
        unpin_all_checked(&mut model, &table.sweep_expired(), "final expiry sweep")?;
        prop_assert!(
            table.is_empty() && model.is_empty(),
            "table must converge to empty (table={}, model={})",
            table.len(),
            model.len()
        );
    }

    #[test]
    fn duplicated_and_reordered_release_streams_release_at_most_once(
        ids in proptest::collection::btree_set(0u8..12, 1..10),
        // A legitimate release stream, then an adversarial replay of it:
        // arbitrary subset, arbitrary order, arbitrary repetition.
        replay_picks in proptest::collection::vec((0usize..8, 0u8..12), 0..24)
    ) {
        let clock = Arc::new(GcClock::new());
        let table = ExportTable::with_clock(clock);
        table.set_ttl_ms(TTL_MS);
        let ids: Vec<ObjectId> =
            ids.into_iter().map(|n| ObjectId::client(u64::from(n))).collect();
        for id in &ids {
            prop_assert!(table.export(*id));
        }

        // The real stream: one batch per id, seq 1..=n, epoch 0.
        let mut released: HashSet<ObjectId> = HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            let returned = table.release_batch(0, (i + 1) as u64, &[*id]);
            prop_assert_eq!(returned, vec![*id]);
            released.insert(*id);
        }
        prop_assert!(table.is_empty());

        // The replayed stream: every batch is at or below the watermark
        // (or names an id that is long gone) and must release nothing.
        for (seq_pick, id_pick) in replay_picks {
            let seq = (seq_pick % (ids.len() + 1)) as u64; // 0..=n, all stale
            let id = ObjectId::client(u64::from(id_pick));
            let returned = table.release_batch(0, seq, &[id]);
            prop_assert!(
                returned.is_empty(),
                "replayed batch (seq {}) must be a counted no-op, got {:?}",
                seq,
                returned
            );
        }
        prop_assert!(table.is_empty());
    }
}
