//! Cross-VM object-reference bookkeeping (distributed garbage collection).
//!
//! When a reference to a local object is sent to the peer, the object must
//! survive local collection for as long as the peer may use it: the sender
//! records it in its [`ExportTable`] and pins it as an external GC root.
//! Symmetrically, the receiver records the remote reference in its
//! [`ImportTable`]. After a local collection, the receiver diffs the set of
//! remote ids still reachable from its heap and frames against the import
//! table and sends a release for the dropped ones — the paper's "simple
//! distributed garbage collection scheme" (§4).
//!
//! The simple scheme pins forever when messages misbehave, so every export
//! additionally carries a **lease**: an epoch tag plus a TTL deadline on a
//! shared [`GcClock`]. Ordinary RPC traffic piggybacks the importer's lease
//! epoch on every frame, which renews the exporter's current-epoch leases
//! for free; a session that goes quiet renews with an explicit
//! `Request::GcRenew`. An export whose lease runs out without renewal is
//! swept back to the collector ([`ExportTable::sweep_expired`]) — the
//! holder is presumed dead or partitioned, so pin-forever leaks become
//! bounded-by-TTL reclaims.
//!
//! Releases are made idempotent under the at-most-once retry machinery:
//! each batch carries the sender's lease epoch and a monotonically
//! increasing *release sequence number* ([`ImportTable::next_release_seq`]).
//! The exporter keeps a per-session watermark and drops any batch at or
//! below it (a retried, duplicated, or late-delivered batch) and any batch
//! from an older epoch (a zombie from before a failover) — counted no-ops,
//! never a double-unpin. A batch lost outright simply leaves the entries to
//! their lease deadline.
//!
//! [`GcClock`] is a manual millisecond clock rather than wall time so the
//! lease state machine is fully deterministic under test: soaks and
//! property tests advance it explicitly, and the surrogate daemon advances
//! it by measured wall-clock elapsed time.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use aide_vm::{ObjectId, Vm};

/// Default lease TTL for exported references, in [`GcClock`] milliseconds.
pub const DEFAULT_LEASE_TTL_MS: u64 = 30_000;

/// A shared monotonic millisecond clock that lease deadlines are measured
/// against. It only moves when something advances it: tests advance it
/// explicitly (deterministic expiry), long-running daemons advance it by
/// measured wall time. Platform runs that never advance it simply never
/// expire leases by time — epoch sweeps still reclaim after failover.
#[derive(Debug, Default)]
pub struct GcClock {
    now_ms: AtomicU64,
}

impl GcClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        GcClock::default()
    }

    /// Current clock reading, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::Relaxed)
    }

    /// Advances the clock by `delta_ms` milliseconds.
    pub fn advance_ms(&self, delta_ms: u64) {
        self.now_ms.fetch_add(delta_ms, Ordering::Relaxed);
    }
}

/// What happened to a single released export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The entry was dropped; the caller should unpin the external root.
    Unpinned,
    /// One reference count was released but live exports remain.
    StillHeld,
    /// The object was not in the table (a replayed or misrouted release);
    /// counted, never an error.
    Unknown,
}

/// One exported object's bookkeeping: how many references are out, which
/// export epoch it was last handed out under, and when its lease runs out.
#[derive(Debug, Clone, Copy)]
struct ExportEntry {
    count: u64,
    epoch: u64,
    deadline_ms: u64,
}

#[derive(Debug, Default)]
struct ExportInner {
    entries: HashMap<ObjectId, ExportEntry>,
    /// Current local export epoch; bumped by failover so survivors of the
    /// old session become sweepable.
    epoch: u64,
    /// Highest lease epoch the peer has advertised; releases and renewals
    /// from older epochs are zombies and are ignored.
    peer_epoch: u64,
    /// Highest release sequence number applied; batches at or below it
    /// are duplicates.
    watermark: u64,
}

/// Telemetry handles resolved once per table.
struct GcMetrics {
    renewed: Arc<aide_telemetry::Counter>,
    expired: Arc<aide_telemetry::Counter>,
    duplicate: Arc<aide_telemetry::Counter>,
    stale: Arc<aide_telemetry::Counter>,
    unknown: Arc<aide_telemetry::Counter>,
    reclaimed: Arc<aide_telemetry::Counter>,
    export_entries: Arc<aide_telemetry::Gauge>,
    import_entries: Arc<aide_telemetry::Gauge>,
}

impl GcMetrics {
    fn resolve() -> Self {
        let t = aide_telemetry::global();
        GcMetrics {
            renewed: t.counter(aide_telemetry::names::GC_LEASES_RENEWED),
            expired: t.counter(aide_telemetry::names::GC_LEASES_EXPIRED),
            duplicate: t.counter(aide_telemetry::names::GC_RELEASE_DUPLICATE),
            stale: t.counter(aide_telemetry::names::GC_RELEASE_STALE),
            unknown: t.counter(aide_telemetry::names::GC_RELEASE_UNKNOWN),
            reclaimed: t.counter(aide_telemetry::names::GC_EXPORTS_RECLAIMED),
            export_entries: t.gauge(aide_telemetry::names::GC_EXPORT_ENTRIES),
            import_entries: t.gauge(aide_telemetry::names::GC_IMPORT_ENTRIES),
        }
    }
}

impl std::fmt::Debug for GcMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcMetrics").finish()
    }
}

/// Tracks local objects whose references were exported to the peer.
///
/// Counts are reference counts: exporting the same object twice requires
/// two single releases before the pin drops. Every entry is lease-tagged
/// (epoch + TTL deadline); see the module docs for the reclamation rules.
#[derive(Debug)]
pub struct ExportTable {
    inner: Mutex<ExportInner>,
    clock: Arc<GcClock>,
    ttl_ms: AtomicU64,
    recorder: Mutex<Option<Arc<aide_telemetry::FlightRecorder>>>,
    metrics: GcMetrics,
}

impl Default for ExportTable {
    fn default() -> Self {
        ExportTable::with_clock(Arc::new(GcClock::new()))
    }
}

impl ExportTable {
    /// Creates an empty table with its own private [`GcClock`] (which
    /// nothing advances — leases never expire unless someone advances it).
    pub fn new() -> Self {
        ExportTable::default()
    }

    /// Creates an empty table whose lease deadlines are measured against
    /// `clock`.
    pub fn with_clock(clock: Arc<GcClock>) -> Self {
        ExportTable {
            inner: Mutex::new(ExportInner::default()),
            clock,
            ttl_ms: AtomicU64::new(DEFAULT_LEASE_TTL_MS),
            recorder: Mutex::new(None),
            metrics: GcMetrics::resolve(),
        }
    }

    /// The clock lease deadlines are measured against.
    pub fn clock(&self) -> &Arc<GcClock> {
        &self.clock
    }

    /// Replaces the lease TTL applied to subsequent exports and renewals.
    pub fn set_ttl_ms(&self, ttl_ms: u64) {
        self.ttl_ms.store(ttl_ms, Ordering::Relaxed);
    }

    /// Current lease TTL in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms.load(Ordering::Relaxed)
    }

    /// Attaches a flight recorder so misaccounted releases leave a
    /// visible warning event instead of disappearing.
    pub fn set_recorder(&self, recorder: Arc<aide_telemetry::FlightRecorder>) {
        *self.recorder.lock() = Some(recorder);
    }

    fn warn_unknown(&self, id: ObjectId) {
        self.metrics.unknown.inc();
        if let Some(r) = self.recorder.lock().as_ref() {
            r.record(aide_telemetry::PlatformEvent::GcReleaseUnknown { object: id.0 });
        }
    }

    /// Records one exported reference to `id`, tagging it with the current
    /// epoch and a fresh lease deadline. Returns `true` if this is the
    /// first live export of the object (the caller should pin it as an
    /// external GC root).
    pub fn export(&self, id: ObjectId) -> bool {
        let now = self.clock.now_ms();
        let ttl = self.ttl_ms();
        let mut inner = self.inner.lock();
        let epoch = inner.epoch;
        match inner.entries.get_mut(&id) {
            Some(e) => {
                e.count += 1;
                e.epoch = epoch;
                e.deadline_ms = now + ttl;
                false
            }
            None => {
                inner.entries.insert(
                    id,
                    ExportEntry {
                        count: 1,
                        epoch,
                        deadline_ms: now + ttl,
                    },
                );
                self.metrics.export_entries.add(1);
                true
            }
        }
    }

    /// Releases one exported reference, reporting exactly what happened.
    pub fn release_one(&self, id: ObjectId) -> ReleaseOutcome {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(&id) {
            Some(e) => {
                e.count -= 1;
                if e.count == 0 {
                    inner.entries.remove(&id);
                    drop(inner);
                    self.metrics.export_entries.add(-1);
                    ReleaseOutcome::Unpinned
                } else {
                    ReleaseOutcome::StillHeld
                }
            }
            None => {
                drop(inner);
                self.warn_unknown(id);
                ReleaseOutcome::Unknown
            }
        }
    }

    /// Records the release of one exported reference. Returns `true` when
    /// this was the last live export (the caller should unpin the root).
    /// A release of an unknown id is a counted no-op.
    pub fn release(&self, id: ObjectId) -> bool {
        self.release_one(id) == ReleaseOutcome::Unpinned
    }

    /// Applies a watermarked release batch from the peer's GC sweep.
    ///
    /// The batch is dropped whole — a counted no-op returning no ids — if
    /// `epoch` is older than the highest epoch the peer has advertised
    /// (zombie from before a failover) or `release_seq` is at or below the
    /// session watermark (a retry, a chaos duplicate, or a frame delivered
    /// after a later batch). Otherwise each object is dropped from the
    /// table entirely (the peer asserts it holds *no* references any
    /// more) and returned so the caller can unpin it.
    pub fn release_batch(
        &self,
        epoch: u64,
        release_seq: u64,
        objects: &[ObjectId],
    ) -> Vec<ObjectId> {
        let mut inner = self.inner.lock();
        if epoch < inner.peer_epoch {
            drop(inner);
            self.metrics.stale.inc();
            return Vec::new();
        }
        inner.peer_epoch = epoch;
        if release_seq <= inner.watermark {
            drop(inner);
            self.metrics.duplicate.inc();
            return Vec::new();
        }
        inner.watermark = release_seq;
        let mut unpinned = Vec::new();
        let mut unknown = Vec::new();
        for &id in objects {
            if inner.entries.remove(&id).is_some() {
                unpinned.push(id);
            } else {
                unknown.push(id);
            }
        }
        drop(inner);
        self.metrics
            .export_entries
            .add(-i64::try_from(unpinned.len()).unwrap_or(i64::MAX));
        for id in unknown {
            self.warn_unknown(id);
        }
        unpinned
    }

    /// Extends the lease deadline of every current-epoch entry — called on
    /// every frame that carries the peer's lease epoch, and by the
    /// explicit `GcRenew` path. Renewals advertising an epoch older than
    /// one already seen are zombies and extend nothing. Returns the number
    /// of leases extended.
    pub fn renew(&self, peer_epoch: u64) -> usize {
        let now = self.clock.now_ms();
        let ttl = self.ttl_ms();
        let mut inner = self.inner.lock();
        if peer_epoch < inner.peer_epoch {
            return 0;
        }
        inner.peer_epoch = peer_epoch;
        let epoch = inner.epoch;
        let mut n = 0usize;
        for e in inner.entries.values_mut() {
            if e.epoch == epoch {
                e.deadline_ms = now + ttl;
                n += 1;
            }
        }
        drop(inner);
        self.metrics.renewed.add(n as u64);
        n
    }

    /// Starts a new export epoch (failover, session teardown). Entries
    /// from older epochs stop being renewable and can be reclaimed in
    /// bulk with [`ExportTable::sweep_stale_epochs`]. Returns the new
    /// epoch.
    pub fn begin_epoch(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.epoch
    }

    /// Removes every entry whose lease deadline has passed, returning the
    /// ids so the caller can unpin them.
    pub fn sweep_expired(&self) -> Vec<ObjectId> {
        let now = self.clock.now_ms();
        let mut inner = self.inner.lock();
        let expired: Vec<ObjectId> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.deadline_ms < now)
            .map(|(id, _)| *id)
            .collect();
        for id in &expired {
            inner.entries.remove(id);
        }
        let epoch = inner.epoch;
        drop(inner);
        if !expired.is_empty() {
            if let Some(r) = self.recorder.lock().as_ref() {
                r.record(aide_telemetry::PlatformEvent::LeaseExpired {
                    objects: expired.len() as u64,
                    epoch,
                });
            }
        }
        self.metrics.expired.add(expired.len() as u64);
        self.metrics
            .export_entries
            .add(-i64::try_from(expired.len()).unwrap_or(i64::MAX));
        expired
    }

    /// Removes every entry tagged with an epoch older than the current
    /// one, returning the ids so the caller can unpin them. Run after
    /// [`ExportTable::begin_epoch`] to hand a dead session's exports back
    /// to the collector without waiting for their TTLs.
    pub fn sweep_stale_epochs(&self) -> Vec<ObjectId> {
        let mut inner = self.inner.lock();
        let epoch = inner.epoch;
        let stale: Vec<ObjectId> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.epoch < epoch)
            .map(|(id, _)| *id)
            .collect();
        for id in &stale {
            inner.entries.remove(id);
        }
        drop(inner);
        self.metrics.reclaimed.add(stale.len() as u64);
        self.metrics
            .export_entries
            .add(-i64::try_from(stale.len()).unwrap_or(i64::MAX));
        stale
    }

    /// The current local export epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// The highest lease epoch the peer has advertised.
    pub fn peer_epoch(&self) -> u64 {
        self.inner.lock().peer_epoch
    }

    /// The highest release sequence number applied so far.
    pub fn watermark(&self) -> u64 {
        self.inner.lock().watermark
    }

    /// Number of live references recorded for `id` (0 if absent).
    pub fn holds(&self, id: ObjectId) -> u64 {
        self.inner.lock().entries.get(&id).map_or(0, |e| e.count)
    }

    /// Number of distinct objects currently exported.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Returns `true` if nothing is exported.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Returns `true` if `id` is currently exported.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inner.lock().entries.contains_key(&id)
    }

    /// Age of every live lease in milliseconds: how long since each entry
    /// was last exported or renewed, measured as TTL minus remaining
    /// deadline. Entries past their deadline (not yet swept) report the
    /// full TTL. Fleet telemetry exposes these so an operator can see
    /// sessions drifting toward expiry before the sweeper reclaims them.
    pub fn lease_ages_ms(&self) -> Vec<u64> {
        let now = self.clock.now_ms();
        let ttl = self.ttl_ms();
        self.inner
            .lock()
            .entries
            .values()
            .map(|e| ttl.saturating_sub(e.deadline_ms.saturating_sub(now)))
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct ImportEntry {
    count: u64,
    epoch: u64,
}

#[derive(Debug, Default)]
struct ImportInner {
    held: HashMap<ObjectId, ImportEntry>,
    /// The lease epoch this side advertises on outgoing frames; bumped on
    /// failover and rollback so the old session's releases read as stale.
    epoch: u64,
    /// Source of release-batch sequence numbers (first batch is 1).
    next_release_seq: u64,
}

/// Tracks remote objects this VM holds references to.
///
/// Entries are reference-counted: importing the same remote id twice and
/// then removing one hold leaves the other intact (the set-based table
/// used to forget it). The liveness sweep is authoritative and drops an
/// entry wholesale — GC has proven nothing references the id.
#[derive(Debug)]
pub struct ImportTable {
    inner: Mutex<ImportInner>,
    metrics: GcMetrics,
}

impl Default for ImportTable {
    fn default() -> Self {
        ImportTable {
            inner: Mutex::new(ImportInner::default()),
            metrics: GcMetrics::resolve(),
        }
    }
}

impl ImportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ImportTable::default()
    }

    /// Records receipt of a reference to the remote object `id`.
    pub fn import(&self, id: ObjectId) {
        let mut inner = self.inner.lock();
        let epoch = inner.epoch;
        match inner.held.get_mut(&id) {
            Some(e) => {
                e.count += 1;
                e.epoch = epoch;
            }
            None => {
                inner.held.insert(id, ImportEntry { count: 1, epoch });
                drop(inner);
                self.metrics.import_entries.add(1);
            }
        }
    }

    /// Number of distinct remote objects held.
    pub fn len(&self) -> usize {
        self.inner.lock().held.len()
    }

    /// Returns `true` if no remote references are held.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().held.is_empty()
    }

    /// Returns `true` if `id` is recorded as held.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.inner.lock().held.contains_key(&id)
    }

    /// Number of live holds recorded for `id` (0 if absent).
    pub fn holds(&self, id: ObjectId) -> u64 {
        self.inner.lock().held.get(&id).map_or(0, |e| e.count)
    }

    /// Releases a single hold (used when an offload is rolled back and the
    /// object becomes local again). Other holds survive. Returns `true`
    /// if the id was held at all.
    pub fn remove(&self, id: ObjectId) -> bool {
        let mut inner = self.inner.lock();
        match inner.held.get_mut(&id) {
            Some(e) => {
                e.count -= 1;
                if e.count == 0 {
                    inner.held.remove(&id);
                    drop(inner);
                    self.metrics.import_entries.add(-1);
                }
                true
            }
            None => false,
        }
    }

    /// Diffs the table against the set of remote ids still reachable
    /// locally (`still_referenced`), removes the dropped entries (all
    /// holds — the collector has proven nothing references them), and
    /// returns them so the caller can send a release to the peer.
    pub fn sweep_dropped(&self, still_referenced: &HashSet<ObjectId>) -> Vec<ObjectId> {
        let mut inner = self.inner.lock();
        let dropped: Vec<ObjectId> = inner
            .held
            .keys()
            .filter(|id| !still_referenced.contains(id))
            .copied()
            .collect();
        for id in &dropped {
            inner.held.remove(id);
        }
        drop(inner);
        self.metrics
            .import_entries
            .add(-i64::try_from(dropped.len()).unwrap_or(i64::MAX));
        dropped
    }

    /// Starts a new lease epoch (failover, migration rollback). Returns
    /// the new epoch, which outgoing frames advertise from now on.
    pub fn begin_epoch(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.epoch
    }

    /// The lease epoch this side currently advertises.
    pub fn advertised_epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Draws the next release-batch sequence number (first call returns 1).
    pub fn next_release_seq(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.next_release_seq += 1;
        inner.next_release_seq
    }
}

/// Scans a VM's live heap slots *and* mutator roots (frame registers,
/// receivers) for references to objects that are not local — the set of
/// remote references still in use. Feed the result to
/// [`ImportTable::sweep_dropped`] after a collection.
pub fn live_remote_refs(vm: &Vm) -> HashSet<ObjectId> {
    let mut out = HashSet::new();
    let heap = vm.heap();
    for (_, rec) in heap.iter() {
        for slot in rec.slots.iter().flatten() {
            if !heap.contains(*slot) {
                out.insert(*slot);
            }
        }
    }
    for id in vm.root_refs() {
        if !heap.contains(id) {
            out.insert(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use aide_vm::{ClassId, MethodDef, ObjectRecord, ProgramBuilder, Vm, VmConfig};

    #[test]
    fn export_pins_once_per_object() {
        let t = ExportTable::new();
        let id = ObjectId::client(1);
        assert!(t.export(id), "first export pins");
        assert!(!t.export(id), "second export does not re-pin");
        assert_eq!(t.len(), 1);
        assert!(!t.release(id), "one release leaves one live export");
        assert!(t.release(id), "last release unpins");
        assert!(t.is_empty());
    }

    #[test]
    fn release_of_unknown_object_is_ignored() {
        let t = ExportTable::new();
        assert!(!t.release(ObjectId::client(9)));
        assert_eq!(t.release_one(ObjectId::client(9)), ReleaseOutcome::Unknown);
    }

    #[test]
    fn unknown_release_leaves_a_recorder_warning() {
        let t = ExportTable::new();
        let recorder = Arc::new(aide_telemetry::FlightRecorder::new(8));
        t.set_recorder(recorder.clone());
        t.release(ObjectId::client(42));
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].event,
            aide_telemetry::PlatformEvent::GcReleaseUnknown { object } if object == ObjectId::client(42).0
        ));
    }

    #[test]
    fn import_sweep_returns_dropped_references() {
        let t = ImportTable::new();
        let a = ObjectId::surrogate(1);
        let b = ObjectId::surrogate(2);
        let c = ObjectId::surrogate(3);
        t.import(a);
        t.import(b);
        t.import(c);
        let still: HashSet<ObjectId> = [b].into_iter().collect();
        let mut dropped = t.sweep_dropped(&still);
        dropped.sort();
        assert_eq!(dropped, vec![a, c]);
        assert!(t.contains(b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn imports_are_refcounted_across_removals() {
        // The set-based table forgot the second hold; the refcounted one
        // keeps the entry until every hold is released.
        let t = ImportTable::new();
        let id = ObjectId::surrogate(7);
        t.import(id);
        t.import(id);
        assert_eq!(t.holds(id), 2);
        assert!(t.remove(id));
        assert!(t.contains(id), "one hold remains");
        assert!(t.remove(id));
        assert!(!t.contains(id));
        assert!(!t.remove(id), "removing an absent id reports false");
    }

    #[test]
    fn release_batches_are_idempotent_under_the_watermark() {
        let t = ExportTable::new();
        let a = ObjectId::client(1);
        let b = ObjectId::client(2);
        t.export(a);
        t.export(b);
        let first = t.release_batch(0, 1, &[a]);
        assert_eq!(first, vec![a]);
        // A retry of the same batch (same seq) is a counted no-op even
        // though `a` is gone — no Unknown warnings, no double-unpin.
        assert!(t.release_batch(0, 1, &[a]).is_empty());
        // A later batch proceeds.
        assert_eq!(t.release_batch(0, 2, &[b]), vec![b]);
        assert!(t.is_empty());
        assert_eq!(t.watermark(), 2);
    }

    #[test]
    fn stale_epoch_releases_are_dropped() {
        let t = ExportTable::new();
        let id = ObjectId::client(3);
        t.export(id);
        // The peer advertises epoch 2 (post-failover)...
        assert_eq!(t.renew(2), 1);
        // ...so a release from epoch 1 is a zombie: dropped whole, the
        // entry stays pinned.
        assert!(t.release_batch(1, 1, &[id]).is_empty());
        assert!(t.contains(id));
        // The current-epoch release still works.
        assert_eq!(t.release_batch(2, 1, &[id]), vec![id]);
    }

    #[test]
    fn leases_expire_unless_renewed() {
        let clock = Arc::new(GcClock::new());
        let t = ExportTable::with_clock(clock.clone());
        t.set_ttl_ms(100);
        let a = ObjectId::client(1);
        let b = ObjectId::client(2);
        t.export(a);
        t.export(b);
        clock.advance_ms(60);
        // A renewal mid-life pushes both deadlines out.
        assert_eq!(t.renew(0), 2);
        clock.advance_ms(90);
        assert!(t.sweep_expired().is_empty(), "renewed leases still live");
        clock.advance_ms(20);
        let mut expired = t.sweep_expired();
        expired.sort();
        assert_eq!(expired, vec![a, b]);
        assert!(t.is_empty());
    }

    #[test]
    fn epoch_bump_makes_old_exports_sweepable() {
        let t = ExportTable::new();
        let old = ObjectId::client(1);
        let fresh = ObjectId::client(2);
        t.export(old);
        assert_eq!(t.begin_epoch(), 1);
        t.export(fresh);
        let stale = t.sweep_stale_epochs();
        assert_eq!(stale, vec![old]);
        assert!(t.contains(fresh), "current-epoch entries survive");
        // Renewals only extend current-epoch entries, so a zombie client
        // advertising the old epoch cannot keep anything alive.
        assert_eq!(t.renew(0), 1);
    }

    #[test]
    fn release_seq_numbers_are_monotonic_from_one() {
        let t = ImportTable::new();
        assert_eq!(t.next_release_seq(), 1);
        assert_eq!(t.next_release_seq(), 2);
        assert_eq!(t.advertised_epoch(), 0);
        assert_eq!(t.begin_epoch(), 1);
        assert_eq!(t.advertised_epoch(), 1);
    }

    #[test]
    fn live_remote_refs_finds_cross_vm_slots() {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, aide_vm::MethodId(0), 0, 0).unwrap());
        let mut vm = Vm::new(program, VmConfig::client(1 << 20));

        let local = ObjectId::client(0);
        let remote = ObjectId::surrogate(77);
        let mut rec = ObjectRecord::new(ClassId(0), 0, 2);
        rec.slots[0] = Some(remote);
        vm.heap_mut().insert(local, rec).unwrap();

        let live = live_remote_refs(&vm);
        assert!(live.contains(&remote));
        assert!(!live.contains(&local));
        assert_eq!(live.len(), 1);
    }
}
