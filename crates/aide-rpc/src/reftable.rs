//! Cross-VM object-reference bookkeeping (distributed garbage collection).
//!
//! When a reference to a local object is sent to the peer, the object must
//! survive local collection for as long as the peer may use it: the sender
//! records it in its [`ExportTable`] and pins it as an external GC root.
//! Symmetrically, the receiver records the remote reference in its
//! [`ImportTable`]. After a local collection, the receiver diffs the set of
//! remote ids still reachable from its heap and frames against the import
//! table and sends a `GcRelease` for the dropped ones — the paper's "simple
//! distributed garbage collection scheme" (§4).

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use aide_vm::{ObjectId, Vm};

/// Tracks local objects whose references were exported to the peer.
///
/// Counts are reference counts: exporting the same object twice requires two
/// releases before the pin drops.
#[derive(Debug, Default)]
pub struct ExportTable {
    counts: Mutex<HashMap<ObjectId, u64>>,
}

impl ExportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ExportTable::default()
    }

    /// Records one exported reference to `id`. Returns `true` if this is
    /// the first live export of the object (the caller should pin it as an
    /// external GC root).
    pub fn export(&self, id: ObjectId) -> bool {
        let mut counts = self.counts.lock();
        let n = counts.entry(id).or_insert(0);
        *n += 1;
        *n == 1
    }

    /// Records the release of one exported reference. Returns `true` when
    /// this was the last live export (the caller should unpin the root).
    pub fn release(&self, id: ObjectId) -> bool {
        let mut counts = self.counts.lock();
        match counts.get_mut(&id) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    counts.remove(&id);
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// Number of distinct objects currently exported.
    pub fn len(&self) -> usize {
        self.counts.lock().len()
    }

    /// Returns `true` if nothing is exported.
    pub fn is_empty(&self) -> bool {
        self.counts.lock().is_empty()
    }

    /// Returns `true` if `id` is currently exported.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.counts.lock().contains_key(&id)
    }
}

/// Tracks remote objects this VM holds references to.
#[derive(Debug, Default)]
pub struct ImportTable {
    held: Mutex<HashSet<ObjectId>>,
}

impl ImportTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ImportTable::default()
    }

    /// Records receipt of a reference to the remote object `id`.
    pub fn import(&self, id: ObjectId) {
        self.held.lock().insert(id);
    }

    /// Number of distinct remote objects held.
    pub fn len(&self) -> usize {
        self.held.lock().len()
    }

    /// Returns `true` if no remote references are held.
    pub fn is_empty(&self) -> bool {
        self.held.lock().is_empty()
    }

    /// Returns `true` if `id` is recorded as held.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.held.lock().contains(&id)
    }

    /// Removes a single entry (used when an offload is rolled back and the
    /// object becomes local again). Returns `true` if it was held.
    pub fn remove(&self, id: ObjectId) -> bool {
        self.held.lock().remove(&id)
    }

    /// Diffs the table against the set of remote ids still reachable
    /// locally (`still_referenced`), removes the dropped entries, and
    /// returns them so the caller can send a `GcRelease` to the peer.
    pub fn sweep_dropped(&self, still_referenced: &HashSet<ObjectId>) -> Vec<ObjectId> {
        let mut held = self.held.lock();
        let dropped: Vec<ObjectId> = held
            .iter()
            .filter(|id| !still_referenced.contains(id))
            .copied()
            .collect();
        for id in &dropped {
            held.remove(id);
        }
        dropped
    }
}

/// Scans a VM's live heap slots *and* mutator roots (frame registers,
/// receivers) for references to objects that are not local — the set of
/// remote references still in use. Feed the result to
/// [`ImportTable::sweep_dropped`] after a collection.
pub fn live_remote_refs(vm: &Vm) -> HashSet<ObjectId> {
    let mut out = HashSet::new();
    let heap = vm.heap();
    for (_, rec) in heap.iter() {
        for slot in rec.slots.iter().flatten() {
            if !heap.contains(*slot) {
                out.insert(*slot);
            }
        }
    }
    for id in vm.root_refs() {
        if !heap.contains(id) {
            out.insert(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use aide_vm::{ClassId, MethodDef, ObjectRecord, ProgramBuilder, Vm, VmConfig};

    #[test]
    fn export_pins_once_per_object() {
        let t = ExportTable::new();
        let id = ObjectId::client(1);
        assert!(t.export(id), "first export pins");
        assert!(!t.export(id), "second export does not re-pin");
        assert_eq!(t.len(), 1);
        assert!(!t.release(id), "one release leaves one live export");
        assert!(t.release(id), "last release unpins");
        assert!(t.is_empty());
    }

    #[test]
    fn release_of_unknown_object_is_ignored() {
        let t = ExportTable::new();
        assert!(!t.release(ObjectId::client(9)));
    }

    #[test]
    fn import_sweep_returns_dropped_references() {
        let t = ImportTable::new();
        let a = ObjectId::surrogate(1);
        let b = ObjectId::surrogate(2);
        let c = ObjectId::surrogate(3);
        t.import(a);
        t.import(b);
        t.import(c);
        let still: HashSet<ObjectId> = [b].into_iter().collect();
        let mut dropped = t.sweep_dropped(&still);
        dropped.sort();
        assert_eq!(dropped, vec![a, c]);
        assert!(t.contains(b));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn live_remote_refs_finds_cross_vm_slots() {
        let mut b = ProgramBuilder::new();
        let main = b.add_class("Main");
        b.add_method(main, MethodDef::new("main", vec![]));
        let program = Arc::new(b.build(main, aide_vm::MethodId(0), 0, 0).unwrap());
        let mut vm = Vm::new(program, VmConfig::client(1 << 20));

        let local = ObjectId::client(0);
        let remote = ObjectId::surrogate(77);
        let mut rec = ObjectRecord::new(ClassId(0), 0, 2);
        rec.slots[0] = Some(remote);
        vm.heap_mut().insert(local, rec).unwrap();

        let live = live_remote_refs(&vm);
        assert!(live.contains(&remote));
        assert!(!live.contains(&local));
        assert_eq!(live.len(), 1);
    }
}
