//! Process-wide observer seam for nondeterministic transport inputs.
//!
//! The decision pipeline above this crate is deterministic given its
//! inputs; the transport below it is not. Everything nondeterministic
//! that crosses the boundary — chaos RNG draws, RPC completion timings
//! and retry counts, registry probe RTTs, the emulator's virtual clock —
//! funnels through one [`RpcObserver`] so a trace recorder (the
//! `aide-replay` crate) can capture a run without this crate knowing
//! anything about trace formats.
//!
//! The observer is process-global and off by default: until
//! [`set_rpc_observer`] installs one, every hook is a single relaxed
//! atomic load. Installing an observer affects every endpoint, chaos
//! shim, and emulator in the process, so recorders must serialize runs
//! (the `aide-replay` test suites take a lock around recording).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Receiver for nondeterministic transport-level events.
///
/// All methods have no-op defaults so an observer only implements the
/// streams it cares about. Implementations must be cheap and must not
/// call back into the RPC layer (hooks fire on transport shim threads
/// and inside `Endpoint::call`).
pub trait RpcObserver: Send + Sync {
    /// A chaos xorshift64 stream produced its `index`-th draw.
    ///
    /// `stream` is the schedule seed that created the generator, so one
    /// recording distinguishes the client and surrogate directions of a
    /// chaos pair.
    fn chaos_draw(&self, stream: u64, index: u64, value: u64) {
        let _ = (stream, index, value);
    }

    /// An RPC call completed (successfully or not) after `attempts`
    /// sends and `elapsed_micros` of wall-clock waiting.
    fn call_completed(&self, seq: u64, attempts: u32, elapsed_micros: u64, ok: bool) {
        let _ = (seq, attempts, elapsed_micros, ok);
    }

    /// A registry liveness probe measured `rtt_micros` to `surrogate`.
    fn probe_rtt(&self, surrogate: &str, rtt_micros: u64) {
        let _ = (surrogate, rtt_micros);
    }

    /// The emulator's virtual clock was read at `at_micros`.
    fn virtual_tick(&self, at_micros: u64) {
        let _ = at_micros;
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OBSERVER: RwLock<Option<Arc<dyn RpcObserver>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide observer.
pub fn set_rpc_observer(observer: Option<Arc<dyn RpcObserver>>) {
    let mut slot = OBSERVER.write();
    ACTIVE.store(observer.is_some(), Ordering::Release);
    *slot = observer;
}

fn observer() -> Option<Arc<dyn RpcObserver>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    OBSERVER.read().clone()
}

/// Reports a chaos RNG draw to the installed observer, if any.
pub fn chaos_draw(stream: u64, index: u64, value: u64) {
    if let Some(o) = observer() {
        o.chaos_draw(stream, index, value);
    }
}

/// Reports an RPC completion to the installed observer, if any.
pub fn call_completed(seq: u64, attempts: u32, elapsed_micros: u64, ok: bool) {
    if let Some(o) = observer() {
        o.call_completed(seq, attempts, elapsed_micros, ok);
    }
}

/// Reports a probe RTT measurement to the installed observer, if any.
pub fn probe_rtt(surrogate: &str, rtt_micros: u64) {
    if let Some(o) = observer() {
        o.probe_rtt(surrogate, rtt_micros);
    }
}

/// Reports a virtual-clock reading to the installed observer, if any.
pub fn virtual_tick(at_micros: u64) {
    if let Some(o) = observer() {
        o.virtual_tick(at_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct Counting(AtomicU64);

    impl RpcObserver for Counting {
        fn chaos_draw(&self, stream: u64, _index: u64, _value: u64) {
            // Other tests in this binary may drive chaos sessions while
            // the global observer is installed; count only our stream.
            if stream == 1 {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn hooks_are_silent_without_an_observer_and_fire_with_one() {
        chaos_draw(1, 0, 42); // no observer: must not panic
        let counter = Arc::new(Counting(AtomicU64::new(0)));
        set_rpc_observer(Some(counter.clone()));
        chaos_draw(1, 0, 42);
        chaos_draw(1, 1, 43);
        set_rpc_observer(None);
        chaos_draw(1, 2, 44);
        assert_eq!(counter.0.load(Ordering::Relaxed), 2);
    }
}
