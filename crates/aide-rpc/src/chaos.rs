//! Deterministic fault injection at the transport layer.
//!
//! A chaos wrap composes over any [`Session`] — whichever backend
//! produced it (in-process channels, multiplexed TCP, emulated virtual
//! time) — and injects the failure modes of a lossy wireless link — drop, delay, duplication, reordering,
//! truncation, bit corruption, and hard connection resets — from a
//! reproducible [`ChaosSchedule`]. All randomness comes from a seeded
//! xorshift64 stream, so a failing run replays bit-for-bit from its seed.
//!
//! Faults are applied to the *outbound* direction of the wrapped end.
//! Wrapping both ends of a link (see [`chaos_pair`]) therefore covers both
//! directions, with independently derived seeds; wrapping only one end
//! injects asymmetric faults (e.g. reply-loss only).
//!
//! The layering above is what masks each fault: CRC32 framing turns
//! corruption and truncation into [`WireError::BadChecksum`] /
//! [`WireError::Truncated`] rejections, retries with fresh timeouts mask
//! loss and delay, the serving side's at-most-once dedup cache masks
//! duplication and retransmission, and two-phase migration masks hard
//! resets mid-offload.
//!
//! [`WireError::BadChecksum`]: crate::WireError::BadChecksum
//! [`WireError::Truncated`]: crate::WireError::Truncated

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aide_graph::CommParams;
use crossbeam::channel::unbounded;
use serde::{Deserialize, Serialize};

use crate::link::{Link, Session, TrafficStats};
use crate::wire::Frame;

/// A reproducible schedule of transport faults.
///
/// Each probability is evaluated independently per outbound frame, in the
/// order drop → corrupt → truncate → delay → reorder/duplicate. All
/// randomness derives from `seed`, so two runs over the same frame
/// sequence inject identical faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Seed for the xorshift64 fault stream.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability a frame has one byte flipped.
    pub corrupt: f64,
    /// Probability a frame is truncated to a random prefix.
    pub truncate: f64,
    /// Probability a frame is delayed before delivery.
    pub delay: f64,
    /// Upper bound of an injected delay (uniformly drawn).
    pub max_delay: Duration,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is held back and delivered after its successor.
    pub reorder: f64,
    /// Number of initial frames that pass untouched before any fault is
    /// armed (lets a session establish before the weather turns).
    pub after_frames: u64,
    /// Hard reset: after this many outbound frames the connection is torn
    /// down for good — both directions of the wrapped end observe a
    /// disconnect, like a crashed peer or a dropped carrier.
    pub reset_after_frames: Option<u64>,
}

impl ChaosSchedule {
    /// A fault-free schedule with the given seed (faults opt in by
    /// setting probabilities).
    pub fn seeded(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            drop: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            delay: 0.0,
            max_delay: Duration::from_millis(20),
            duplicate: 0.0,
            reorder: 0.0,
            after_frames: 0,
            reset_after_frames: None,
        }
    }

    /// A moderately hostile link: a bit of everything, calibrated so
    /// retries (not luck) carry the workload through.
    pub fn hostile(seed: u64) -> Self {
        ChaosSchedule {
            drop: 0.08,
            corrupt: 0.08,
            truncate: 0.03,
            delay: 0.10,
            max_delay: Duration::from_millis(5),
            duplicate: 0.08,
            reorder: 0.08,
            ..ChaosSchedule::seeded(seed)
        }
    }

    /// The same schedule with a different fault stream.
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for ChaosSchedule {
    fn default() -> Self {
        ChaosSchedule::seeded(0x5DEE_CE66)
    }
}

/// Counters of faults a chaos wrap actually injected.
#[derive(Debug, Default)]
pub struct ChaosStats {
    dropped: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    resets: AtomicU64,
    forwarded: AtomicU64,
}

impl ChaosStats {
    /// Frames silently dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames corrupted or truncated.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Frames delayed or held back for reordering.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Frames delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Hard resets injected (0 or 1 per wrap).
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Frames forwarded to the underlying transport (including
    /// duplicates and corrupted deliveries).
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Total faults of any kind injected.
    pub fn total_faults(&self) -> u64 {
        self.dropped() + self.corrupted() + self.delayed() + self.duplicated() + self.resets()
    }
}

/// Deterministic xorshift64 stream (the same generator the failover
/// backoff jitter uses).
///
/// Every draw is reported to the process-wide [`crate::observe`] seam,
/// keyed by the (zero-fixed) seed and a per-stream draw index, so a
/// trace recorder can capture — and a replayer re-verify — the exact
/// fault sequence a chaos schedule produced.
struct ChaosRng {
    state: u64,
    stream: u64,
    draws: u64,
}

impl ChaosRng {
    fn new(seed: u64) -> Self {
        // xorshift64 has an absorbing zero state.
        ChaosRng {
            state: seed | 1,
            stream: seed | 1,
            draws: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        let index = self.draws;
        self.draws += 1;
        crate::observe::chaos_draw(self.stream, index, x);
        x
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Wraps `inner` in a chaos layer driven by `schedule`, returning the
/// wrapped session and its fault counters.
///
/// The wrapped session is a drop-in [`Session`] reporting the same
/// backend as `inner`: its own traffic statistics count the frames the
/// application sent and received, while `inner`'s statistics count what
/// actually crossed the carrier (duplicates included, drops excluded).
pub fn chaos_wrap(inner: Session, schedule: ChaosSchedule) -> (Session, Arc<ChaosStats>) {
    let stats = Arc::new(ChaosStats::default());
    let backend = inner.backend();
    let (app_out_tx, app_out_rx) = unbounded::<Frame>();
    let (app_in_tx, app_in_rx) = unbounded::<Frame>();
    let dead = Arc::new(AtomicBool::new(false));

    let telemetry = aide_telemetry::global();
    let tele_dropped = telemetry.counter(aide_telemetry::names::CHAOS_DROPPED);
    let tele_duplicated = telemetry.counter(aide_telemetry::names::CHAOS_DUPLICATED);
    let tele_corrupted = telemetry.counter(aide_telemetry::names::CHAOS_CORRUPTED);
    let tele_delayed = telemetry.counter(aide_telemetry::names::CHAOS_DELAYED);
    let tele_resets = telemetry.counter(aide_telemetry::names::CHAOS_RESETS);

    // Outbound shim: pull application frames, roll the dice, forward.
    {
        let inner = inner.clone();
        let stats = stats.clone();
        let dead = dead.clone();
        std::thread::Builder::new()
            .name("rpc-chaos-out".into())
            .spawn(move || {
                let mut rng = ChaosRng::new(schedule.seed);
                let mut seen = 0u64;
                let mut held: Option<Frame> = None;
                while let Ok(mut frame) = app_out_rx.recv() {
                    seen += 1;
                    if let Some(limit) = schedule.reset_after_frames {
                        if seen > limit {
                            stats.resets.fetch_add(1, Ordering::Relaxed);
                            tele_resets.inc();
                            dead.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                    let armed = seen > schedule.after_frames;
                    if armed && rng.unit() < schedule.drop {
                        stats.dropped.fetch_add(1, Ordering::Relaxed);
                        tele_dropped.inc();
                        continue;
                    }
                    if armed && rng.unit() < schedule.corrupt && !frame.is_empty() {
                        let pos = (rng.next_u64() as usize) % frame.len();
                        let flip = (rng.next_u64() as u8) | 1; // never a no-op
                        frame[pos] ^= flip;
                        stats.corrupted.fetch_add(1, Ordering::Relaxed);
                        tele_corrupted.inc();
                    }
                    if armed && rng.unit() < schedule.truncate && !frame.is_empty() {
                        let keep = (rng.next_u64() as usize) % frame.len();
                        frame.truncate(keep);
                        stats.corrupted.fetch_add(1, Ordering::Relaxed);
                        tele_corrupted.inc();
                    }
                    if armed && rng.unit() < schedule.delay {
                        let span = schedule.max_delay.as_nanos() as f64;
                        std::thread::sleep(Duration::from_nanos((rng.unit() * span) as u64));
                        stats.delayed.fetch_add(1, Ordering::Relaxed);
                        tele_delayed.inc();
                    }
                    let duplicate = armed && rng.unit() < schedule.duplicate;
                    if armed && rng.unit() < schedule.reorder && held.is_none() {
                        // Hold this frame back; it rides behind its
                        // successor (flushed on shutdown if none comes).
                        stats.delayed.fetch_add(1, Ordering::Relaxed);
                        tele_delayed.inc();
                        held = Some(frame);
                        continue;
                    }
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if inner.send(frame.clone()).is_err() {
                        break;
                    }
                    if duplicate {
                        stats.duplicated.fetch_add(1, Ordering::Relaxed);
                        tele_duplicated.inc();
                        stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        if inner.send(frame).is_err() {
                            break;
                        }
                    }
                    if let Some(h) = held.take() {
                        stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        if inner.send(h).is_err() {
                            break;
                        }
                    }
                }
                if !dead.load(Ordering::Relaxed) {
                    if let Some(h) = held.take() {
                        stats.forwarded.fetch_add(1, Ordering::Relaxed);
                        let _ = inner.send(h);
                    }
                }
            })
            .expect("spawn chaos outbound shim");
    }

    // Inbound shim: forward peer frames untouched, but honour a reset.
    std::thread::Builder::new()
        .name("rpc-chaos-in".into())
        .spawn(move || loop {
            if dead.load(Ordering::Relaxed) {
                break;
            }
            match inner.recv_timeout(Duration::from_millis(20)) {
                Ok(Some(frame)) => {
                    if app_in_tx.send(frame).is_err() {
                        break;
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        })
        .expect("spawn chaos inbound shim");

    let session = Session::from_parts(
        app_out_tx,
        app_in_rx,
        Arc::new(TrafficStats::default()),
        backend,
    );
    (session, stats)
}

/// Fault counters for both ends of a [`chaos_pair`].
#[derive(Debug)]
pub struct ChaosPairStats {
    /// Faults injected into client → surrogate frames.
    pub client: Arc<ChaosStats>,
    /// Faults injected into surrogate → client frames.
    pub surrogate: Arc<ChaosStats>,
}

/// An in-process link with chaos injected in both directions.
///
/// Like [`Link::pair`], but each session is wrapped in a chaos layer.
/// The surrogate end's fault stream is derived from the schedule seed so
/// the two directions fail independently yet reproducibly.
pub fn chaos_pair(
    params: CommParams,
    schedule: ChaosSchedule,
) -> (Link, Session, Session, ChaosPairStats) {
    let (link, ct, st) = Link::pair(params);
    let (ct, client) = chaos_wrap(ct, schedule);
    let (st, surrogate) = chaos_wrap(
        st,
        schedule.reseeded(schedule.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
    );
    (link, ct, st, ChaosPairStats { client, surrogate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{Message, Reply, WireError};

    fn quiet(seed: u64) -> ChaosSchedule {
        ChaosSchedule::seeded(seed)
    }

    #[test]
    fn fault_free_schedule_is_a_pass_through() {
        let (_, ct, st) = Link::pair(CommParams::WAVELAN);
        let (ct, stats) = chaos_wrap(ct, quiet(7));
        for i in 0..100u8 {
            ct.send(vec![i; 8]).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(st.recv().unwrap(), vec![i; 8]);
        }
        assert_eq!(stats.total_faults(), 0);
        assert_eq!(stats.forwarded(), 100);
    }

    #[test]
    fn full_loss_drops_everything() {
        let (_, ct, st) = Link::pair(CommParams::WAVELAN);
        let mut schedule = quiet(3);
        schedule.drop = 1.0;
        let (ct, stats) = chaos_wrap(ct, schedule);
        for _ in 0..50 {
            ct.send(vec![1, 2, 3]).unwrap();
        }
        assert!(st
            .recv_timeout(Duration::from_millis(100))
            .unwrap()
            .is_none());
        assert_eq!(stats.dropped(), 50);
    }

    #[test]
    fn same_seed_injects_identical_faults() {
        let run = |seed: u64| {
            let (_, ct, _st) = Link::pair(CommParams::WAVELAN);
            let mut schedule = ChaosSchedule::hostile(seed);
            schedule.delay = 0.0; // keep the test fast
            let (ct, stats) = chaos_wrap(ct, schedule);
            for i in 0..200u8 {
                ct.send(vec![i; 16]).unwrap();
            }
            drop(ct);
            // Wait until the shim has accounted for all 200 frames: each
            // is eventually dropped or forwarded (duplicates forward an
            // extra copy on top).
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while stats.dropped() + stats.forwarded() - stats.duplicated() < 200 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "chaos shim never drained"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            (
                stats.dropped(),
                stats.corrupted(),
                stats.duplicated(),
                stats.forwarded(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn corruption_is_caught_by_the_frame_checksum() {
        let (_, ct, st) = Link::pair(CommParams::WAVELAN);
        let mut schedule = quiet(11);
        schedule.corrupt = 1.0;
        let (ct, stats) = chaos_wrap(ct, schedule);
        let frame = Message::Reply {
            seq: 1,
            result: Ok(Reply::Unit),
        }
        .encode();
        ct.send(frame.to_vec()).unwrap();
        let received = st.recv().unwrap();
        assert!(matches!(
            Message::decode(&received),
            Err(WireError::BadChecksum | WireError::BadVersion(_) | WireError::Truncated)
        ));
        assert_eq!(stats.corrupted(), 1);
    }

    #[test]
    fn reset_tears_down_both_directions() {
        let (_, ct, st) = Link::pair(CommParams::WAVELAN);
        let mut schedule = quiet(5);
        schedule.reset_after_frames = Some(3);
        let (ct, stats) = chaos_wrap(ct, schedule);
        for _ in 0..3 {
            ct.send(vec![0]).unwrap();
        }
        // The 4th frame trips the reset; subsequent sends fail once the
        // shim notices, and the receive side disconnects too.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(5));
            if ct.send(vec![9]).is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "reset never surfaced on the send side"
            );
        }
        assert_eq!(stats.resets(), 1);
        assert!(ct.recv_timeout(Duration::from_millis(200)).is_err());
        // The peer got exactly the pre-reset frames.
        let mut delivered = 0;
        while let Ok(Some(_)) = st.recv_timeout(Duration::from_millis(50)) {
            delivered += 1;
        }
        assert_eq!(delivered, 3);
    }

    #[test]
    fn duplicates_arrive_twice() {
        let (_, ct, st) = Link::pair(CommParams::WAVELAN);
        let mut schedule = quiet(9);
        schedule.duplicate = 1.0;
        let (ct, stats) = chaos_wrap(ct, schedule);
        ct.send(vec![7, 7]).unwrap();
        assert_eq!(st.recv().unwrap(), vec![7, 7]);
        assert_eq!(st.recv().unwrap(), vec![7, 7]);
        assert_eq!(stats.duplicated(), 1);
    }
}
