//! Session multiplexing: many logical RPC sessions over one byte-stream
//! carrier.
//!
//! This replaces the surrogate daemon's connection-per-session model. A
//! multiplexed frame rides the carrier as
//!
//! ```text
//! [len u32 LE][session u32 LE][kind u8][payload …]
//!             `------------ len bytes ------------'
//! ```
//!
//! where `kind` is [`KIND_DATA`], [`KIND_OPEN`], or [`KIND_CLOSE`]. The
//! initiating side allocates odd session ids and the accepting side even
//! ones, so both peers can open sessions concurrently without collisions.
//! One writer thread serializes all outbound frames; one reader thread
//! demultiplexes inbound frames into per-session channels, so a slow
//! session never blocks its siblings (each session has its own unbounded
//! queue and its own [`Endpoint`](crate::Endpoint) worker on the serving
//! side).
//!
//! The module is generic over `Read`/`Write` carriers; the only TCP-aware
//! code lives in `crate::tcp`, which wires a socket's two halves in here.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::link::{LinkError, Session};
use crate::transport::{Acceptor, BackendKind, Transport};
use crate::wire::{read_exact_pooled, write_frame, Frame, MAX_FRAME};

/// Application frame for an established session.
pub(crate) const KIND_DATA: u8 = 0;
/// The peer opened a new session with this id.
pub(crate) const KIND_OPEN: u8 = 1;
/// The peer finished the session with this id.
pub(crate) const KIND_CLOSE: u8 = 2;

/// Bytes of mux header inside the length-delimited frame.
const MUX_HEADER: usize = 5;

/// One outbound mux frame: `(session id, kind, payload)`.
pub(crate) type MuxOut = (u32, u8, Frame);

/// A cloneable handle that severs the underlying carrier, taking every
/// session on the connection down with it (used for injected surrogate
/// crashes and daemon shutdown).
#[derive(Clone)]
pub struct ConnKiller(Arc<dyn Fn() + Send + Sync>);

impl ConnKiller {
    /// Wraps a closure that forcibly closes the carrier.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Self {
        ConnKiller(Arc::new(f))
    }

    /// A killer that does nothing (carriers that die by being dropped).
    pub fn noop() -> Self {
        ConnKiller::new(|| {})
    }

    /// Severs the carrier.
    pub fn kill(&self) {
        (self.0)()
    }
}

impl std::fmt::Debug for ConnKiller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ConnKiller")
    }
}

type Routes = Arc<Mutex<HashMap<u32, Sender<Frame>>>>;

/// One inbound event from a bus-routed carrier (see
/// [`MuxConn::route_accepts_to`]). Events for all sessions of a carrier —
/// and, at the consumer's choice, of many carriers — share one queue, so a
/// bounded pool of workers can serve every session without a thread or an
/// acceptor handoff per session.
///
/// `Opened` may be delivered more than once for the same session (a
/// duplicate OPEN, or data racing ahead of its OPEN): consumers must treat
/// it as idempotent and `Data` for an unknown session as an implicit open.
#[derive(Debug)]
pub enum BusEvent {
    /// The peer opened session `session` on carrier `conn`.
    Opened {
        /// Consumer-assigned carrier id.
        conn: u64,
        /// Mux session id within the carrier.
        session: u32,
    },
    /// An application frame for `session` on carrier `conn`.
    Data {
        /// Consumer-assigned carrier id.
        conn: u64,
        /// Mux session id within the carrier.
        session: u32,
        /// The encoded RPC frame.
        frame: Frame,
    },
    /// The peer finished session `session` on carrier `conn`.
    Closed {
        /// Consumer-assigned carrier id.
        conn: u64,
        /// Mux session id within the carrier.
        session: u32,
    },
    /// Carrier `conn` died: every session on it is implicitly closed.
    CarrierClosed {
        /// Consumer-assigned carrier id.
        conn: u64,
    },
}

/// Where the reader routes peer-initiated sessions: the per-session
/// acceptor queue (default) or a shared event bus.
#[derive(Debug)]
enum PeerSink {
    /// Classic mode: each peer session gets its own channel, handed to
    /// [`Acceptor::accept`].
    Accept,
    /// Bus mode: OPEN/DATA/CLOSE for peer sessions become [`BusEvent`]s.
    Bus { conn: u64, tx: Sender<BusEvent> },
}

/// The outbound half of a bus-routed carrier: lets any worker thread reply
/// on any of the carrier's sessions. Cloneable and cheap; all clones feed
/// the carrier's single writer thread.
#[derive(Clone, Debug)]
pub struct MuxSender {
    conn: u64,
    out_tx: Sender<MuxOut>,
    killer: ConnKiller,
}

impl MuxSender {
    /// The consumer-assigned carrier id this sender writes to.
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// Queues an application frame for `session`.
    ///
    /// # Errors
    ///
    /// [`LinkError::Disconnected`] if the carrier's writer is gone.
    pub fn send(&self, session: u32, frame: Frame) -> Result<(), LinkError> {
        self.out_tx
            .send((session, KIND_DATA, frame))
            .map_err(|_| LinkError::Disconnected)
    }

    /// Tells the peer `session` is finished (fire-and-forget).
    pub fn close(&self, session: u32) {
        let _ = self.out_tx.send((session, KIND_CLOSE, Frame::empty()));
    }

    /// A handle that severs the whole carrier.
    pub fn killer(&self) -> ConnKiller {
        self.killer.clone()
    }
}

/// One end of a multiplexed connection. Implements both [`Transport`]
/// (open sessions toward the peer) and [`Acceptor`] (receive sessions the
/// peer opened); either side may do both.
///
/// Dropping the `MuxConn` does not tear down live sessions: each session
/// keeps the shared writer alive through its own sender clone.
#[derive(Debug)]
pub struct MuxConn {
    out_tx: Sender<MuxOut>,
    accepted_rx: Receiver<(u32, Receiver<Frame>)>,
    routes: Routes,
    sink: Arc<Mutex<PeerSink>>,
    next_id: AtomicU32,
    parity: u32,
    backend: BackendKind,
    killer: ConnKiller,
    sessions_opened: Arc<aide_telemetry::Counter>,
}

impl MuxConn {
    /// A handle that severs the whole connection.
    pub fn killer(&self) -> ConnKiller {
        self.killer.clone()
    }

    /// The outbound handle for this carrier under the consumer-assigned id
    /// `conn`, without switching routing modes. A serving pool registers
    /// the carrier with this *before* calling
    /// [`route_accepts_to`](MuxConn::route_accepts_to), so no bus event
    /// can reach a worker that has not yet seen the carrier's sender.
    pub fn bus_sender(&self, conn: u64) -> MuxSender {
        MuxSender {
            conn,
            out_tx: self.out_tx.clone(),
            killer: self.killer.clone(),
        }
    }

    /// Switches this carrier into *bus mode*: instead of materializing a
    /// channel pair and an [`Acceptor::accept`] handoff per peer-opened
    /// session, the reader forwards every peer session's OPEN/DATA/CLOSE
    /// as [`BusEvent`]s tagged with `conn` onto `bus`. Returns the
    /// carrier's [`MuxSender`], which any worker can use to reply on any
    /// session.
    ///
    /// Sessions the peer opened *before* the switch are drained into the
    /// bus (an `Opened` plus their queued frames), so nothing observed by
    /// the reader is lost; in-order delivery per session is preserved
    /// because the drain and the reader's dispatch serialize on the sink
    /// lock. Locally-initiated sessions ([`Transport::open_session`]) are
    /// unaffected and keep their dedicated channels.
    pub fn route_accepts_to(&self, conn: u64, bus: Sender<BusEvent>) -> MuxSender {
        let mut sink = self.sink.lock();
        while let Ok((id, in_rx)) = self.accepted_rx.try_recv() {
            let _ = bus.send(BusEvent::Opened { conn, session: id });
            while let Ok(frame) = in_rx.try_recv() {
                let _ = bus.send(BusEvent::Data {
                    conn,
                    session: id,
                    frame,
                });
            }
            self.routes.lock().remove(&id);
        }
        *sink = PeerSink::Bus { conn, tx: bus };
        drop(sink);
        MuxSender {
            conn,
            out_tx: self.out_tx.clone(),
            killer: self.killer.clone(),
        }
    }
}

impl Transport for MuxConn {
    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn open_session(&self) -> Result<Session, LinkError> {
        let n = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = (n << 1) | self.parity;
        let (in_tx, in_rx) = unbounded();
        self.routes.lock().insert(id, in_tx);
        if self.out_tx.send((id, KIND_OPEN, Frame::empty())).is_err() {
            self.routes.lock().remove(&id);
            return Err(LinkError::Disconnected);
        }
        self.sessions_opened.inc();
        Ok(Session::mux_parts(
            id,
            self.out_tx.clone(),
            in_rx,
            self.backend,
        ))
    }
}

impl Acceptor for MuxConn {
    fn accept(&self) -> Result<Session, LinkError> {
        // The reader hands over only `(id, inbound half)`; the session is
        // assembled here so the reader thread never holds a writer sender
        // (which would keep the writer alive after every handle dropped).
        let (id, in_rx) = self
            .accepted_rx
            .recv()
            .map_err(|_| LinkError::Disconnected)?;
        self.sessions_opened.inc();
        Ok(Session::mux_parts(
            id,
            self.out_tx.clone(),
            in_rx,
            self.backend,
        ))
    }
}

/// Starts the reader/writer threads for one multiplexed connection and
/// returns the local handle. `initiator` decides session-id parity;
/// `on_writer_exit` runs when the writer drains out (e.g. to shut down a
/// socket's write half so the peer sees EOF).
pub(crate) fn spawn_mux<R, W>(
    mut reader: R,
    mut writer: W,
    initiator: bool,
    killer: ConnKiller,
    backend: BackendKind,
    on_writer_exit: impl FnOnce() + Send + 'static,
) -> MuxConn
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let telemetry = aide_telemetry::global();
    let frames = telemetry.counter(aide_telemetry::names::MUX_FRAMES);
    let bytes = telemetry.counter(aide_telemetry::names::MUX_BYTES);

    let (out_tx, out_rx) = unbounded::<MuxOut>();
    let (accepted_tx, accepted_rx) = unbounded::<(u32, Receiver<Frame>)>();
    let routes: Routes = Arc::new(Mutex::new(HashMap::new()));
    let sink: Arc<Mutex<PeerSink>> = Arc::new(Mutex::new(PeerSink::Accept));
    let parity = u32::from(initiator);

    {
        let frames = Arc::clone(&frames);
        let bytes = Arc::clone(&bytes);
        std::thread::Builder::new()
            .name("rpc-mux-writer".into())
            .spawn(move || {
                let mut header = [0u8; MUX_HEADER];
                while let Ok((id, kind, frame)) = out_rx.recv() {
                    header[0..4].copy_from_slice(&id.to_le_bytes());
                    header[4] = kind;
                    let len = (MUX_HEADER + frame.len()) as u32;
                    if writer.write_all(&len.to_le_bytes()).is_err()
                        || writer.write_all(&header).is_err()
                        || writer.write_all(&frame).is_err()
                    {
                        break;
                    }
                    frames.inc();
                    bytes.add(4 + len as u64);
                }
                on_writer_exit();
            })
            .expect("spawning the mux writer thread");
    }

    {
        let routes = Arc::clone(&routes);
        let sink = Arc::clone(&sink);
        std::thread::Builder::new()
            .name("rpc-mux-reader".into())
            .spawn(move || {
                loop {
                    let mut header = [0u8; 4 + MUX_HEADER];
                    if reader.read_exact(&mut header).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
                    if (len as usize) < MUX_HEADER || len > MAX_FRAME {
                        break;
                    }
                    let id = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
                    let kind = header[8];
                    let frame = match read_exact_pooled(&mut reader, len as usize - MUX_HEADER) {
                        Ok(frame) => frame,
                        Err(_) => break,
                    };
                    frames.inc();
                    bytes.add(4 + u64::from(len));
                    if kind != KIND_OPEN && kind != KIND_CLOSE && kind != KIND_DATA {
                        break;
                    }
                    let peer_initiated = (id & 1) != parity;
                    if peer_initiated {
                        // The sink lock serializes this dispatch against
                        // route_accepts_to's drain, which is what keeps
                        // per-session frame order intact across the switch.
                        let sink_now = sink.lock();
                        if let PeerSink::Bus { conn, tx } = &*sink_now {
                            let event = match kind {
                                KIND_OPEN => BusEvent::Opened {
                                    conn: *conn,
                                    session: id,
                                },
                                KIND_CLOSE => BusEvent::Closed {
                                    conn: *conn,
                                    session: id,
                                },
                                _ => BusEvent::Data {
                                    conn: *conn,
                                    session: id,
                                    frame,
                                },
                            };
                            let _ = tx.send(event);
                            continue;
                        }
                        drop(sink_now);
                    }
                    match kind {
                        KIND_OPEN => {
                            open_route(&routes, &accepted_tx, id);
                        }
                        KIND_CLOSE => {
                            routes.lock().remove(&id);
                        }
                        _ => {
                            let known = routes.lock().contains_key(&id);
                            if !known {
                                if !peer_initiated {
                                    // A late frame for a session we already
                                    // closed: drop it.
                                    continue;
                                }
                                // Data can race ahead of its OPEN only if the
                                // peer speaks a newer dialect; treat it as an
                                // implicit open so nothing is lost.
                                open_route(&routes, &accepted_tx, id);
                            }
                            let mut map = routes.lock();
                            if let Some(tx) = map.get(&id) {
                                if tx.send(frame).is_err() {
                                    map.remove(&id);
                                }
                            }
                        }
                    }
                }
                // Carrier gone: every session sees Disconnected once its
                // queue drains, the acceptor stops yielding sessions, and a
                // bus consumer is told every session died at once.
                routes.lock().clear();
                if let PeerSink::Bus { conn, tx } = &*sink.lock() {
                    let _ = tx.send(BusEvent::CarrierClosed { conn: *conn });
                }
            })
            .expect("spawning the mux reader thread");
    }

    MuxConn {
        out_tx,
        accepted_rx,
        routes,
        sink,
        next_id: AtomicU32::new(1),
        parity,
        backend,
        killer,
        sessions_opened: telemetry.counter(aide_telemetry::names::MUX_SESSIONS),
    }
}

/// Installs a route for a peer-opened session and hands its inbound half
/// to the acceptor.
fn open_route(routes: &Routes, accepted_tx: &Sender<(u32, Receiver<Frame>)>, id: u32) {
    let mut map = routes.lock();
    if map.contains_key(&id) {
        return; // duplicate OPEN
    }
    let (in_tx, in_rx) = unbounded();
    map.insert(id, in_tx);
    drop(map);
    if accepted_tx.send((id, in_rx)).is_err() {
        routes.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory byte pipe so mux logic is testable without sockets.
    fn pipe() -> (PipeWriter, PipeReader) {
        let (tx, rx) = unbounded();
        (
            PipeWriter(tx),
            PipeReader {
                rx,
                pending: Vec::new(),
                pos: 0,
            },
        )
    }

    struct PipeWriter(Sender<Vec<u8>>);

    impl Write for PipeWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .send(buf.to_vec())
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed"))?;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    struct PipeReader {
        rx: Receiver<Vec<u8>>,
        pending: Vec<u8>,
        pos: usize,
    }

    impl Read for PipeReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pos == self.pending.len() {
                match self.rx.recv() {
                    Ok(chunk) => {
                        self.pending = chunk;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0), // EOF
                }
            }
            let n = (self.pending.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn mux_pair() -> (MuxConn, MuxConn) {
        let (a_w, b_r) = pipe();
        let (b_w, a_r) = pipe();
        let a = spawn_mux(
            a_r,
            a_w,
            true,
            ConnKiller::noop(),
            BackendKind::InMemory,
            || {},
        );
        let b = spawn_mux(
            b_r,
            b_w,
            false,
            ConnKiller::noop(),
            BackendKind::InMemory,
            || {},
        );
        (a, b)
    }

    #[test]
    fn sessions_cross_the_mux_in_both_directions() {
        let (a, b) = mux_pair();
        let client = a.open_session().unwrap();
        let server = b.accept().unwrap();
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1, 2, 3]);
        server.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
    }

    #[test]
    fn concurrent_sessions_are_demultiplexed_by_id() {
        let (a, b) = mux_pair();
        let c1 = a.open_session().unwrap();
        let c2 = a.open_session().unwrap();
        let s1 = b.accept().unwrap();
        let s2 = b.accept().unwrap();
        // Interleave traffic; each session must see only its own frames.
        c1.send(vec![1, 1]).unwrap();
        c2.send(vec![2, 2]).unwrap();
        c1.send(vec![1]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1, 1]);
        assert_eq!(s2.recv().unwrap(), vec![2, 2]);
        assert_eq!(s1.recv().unwrap(), vec![1]);
    }

    #[test]
    fn both_sides_can_initiate_sessions_without_id_collisions() {
        let (a, b) = mux_pair();
        let from_a = a.open_session().unwrap();
        let from_b = b.open_session().unwrap();
        let at_b = b.accept().unwrap();
        let at_a = a.accept().unwrap();
        from_a.send(vec![0xA]).unwrap();
        from_b.send(vec![0xB]).unwrap();
        assert_eq!(at_b.recv().unwrap(), vec![0xA]);
        assert_eq!(at_a.recv().unwrap(), vec![0xB]);
    }

    #[test]
    fn close_tears_down_one_session_but_not_its_siblings() {
        let (a, b) = mux_pair();
        let c1 = a.open_session().unwrap();
        let c2 = a.open_session().unwrap();
        let s1 = b.accept().unwrap();
        let s2 = b.accept().unwrap();
        c1.send(vec![7]).unwrap();
        c1.close();
        // The close races behind the data frame, so the queued frame is
        // still deliverable before the disconnect is observed.
        assert_eq!(s1.recv().unwrap(), vec![7]);
        assert_eq!(s1.recv().unwrap_err(), LinkError::Disconnected);
        // Sibling session is untouched.
        c2.send(vec![8]).unwrap();
        assert_eq!(s2.recv().unwrap(), vec![8]);
    }

    #[test]
    fn bus_mode_routes_peer_sessions_onto_one_queue() {
        let (a, b) = mux_pair();
        // One session opened before the switch, with a frame already sent:
        // it must be drained into the bus, in order, not lost.
        let early = a.open_session().unwrap();
        early.send(vec![0xE, 1]).unwrap();
        // Give the reader time to route the pre-switch traffic.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let (bus_tx, bus_rx) = unbounded();
        let sender = b.route_accepts_to(7, bus_tx);
        early.send(vec![0xE, 2]).unwrap();
        let late = a.open_session().unwrap();
        late.send(vec![0x1A]).unwrap();

        let mut opened = Vec::new();
        let mut data = Vec::new();
        for _ in 0..5 {
            match bus_rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .unwrap()
            {
                BusEvent::Opened { conn, session } => {
                    assert_eq!(conn, 7);
                    opened.push(session);
                }
                BusEvent::Data {
                    conn,
                    session,
                    frame,
                } => {
                    assert_eq!(conn, 7);
                    data.push((session, frame.to_vec()));
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(opened.len(), 2);
        let early_id = opened[0];
        assert_eq!(
            data.iter()
                .filter(|(s, _)| *s == early_id)
                .map(|(_, f)| f.clone())
                .collect::<Vec<_>>(),
            vec![vec![0xE, 1], vec![0xE, 2]],
            "pre- and post-switch frames stay in order"
        );

        // Workers reply through the MuxSender; the initiator's session
        // receives on its private channel as always.
        let (_, reply_to) = data.iter().find(|(s, _)| *s != early_id).unwrap().clone();
        assert_eq!(reply_to, vec![0x1A]);
        let late_id = opened[1];
        sender
            .send(late_id, Frame::from(vec![9u8].as_slice()))
            .unwrap();
        assert_eq!(late.recv().unwrap(), vec![9]);

        // Carrier death surfaces as one CarrierClosed event.
        drop(early);
        drop(late);
        drop(a);
        loop {
            match bus_rx.recv_timeout(std::time::Duration::from_secs(5)) {
                Ok(BusEvent::CarrierClosed { conn: 7 }) => break,
                Ok(BusEvent::Closed { .. }) => continue,
                other => panic!("expected CarrierClosed, got {other:?}"),
            }
        }
    }

    #[test]
    fn carrier_death_disconnects_every_session_and_the_acceptor() {
        let (a, b) = mux_pair();
        let client = a.open_session().unwrap();
        let server = b.accept().unwrap();
        client.send(vec![1]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1]);
        // Dropping the initiator's handle and sessions drains its writer,
        // which drops the pipe and EOFs the peer's reader.
        drop(client);
        drop(a);
        assert_eq!(server.recv().unwrap_err(), LinkError::Disconnected);
        assert_eq!(b.accept().unwrap_err(), LinkError::Disconnected);
    }
}
