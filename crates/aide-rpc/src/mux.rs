//! Session multiplexing: many logical RPC sessions over one byte-stream
//! carrier.
//!
//! This replaces the surrogate daemon's connection-per-session model. A
//! multiplexed frame rides the carrier as
//!
//! ```text
//! [len u32 LE][session u32 LE][kind u8][payload …]
//!             `------------ len bytes ------------'
//! ```
//!
//! where `kind` is [`KIND_DATA`], [`KIND_OPEN`], or [`KIND_CLOSE`]. The
//! initiating side allocates odd session ids and the accepting side even
//! ones, so both peers can open sessions concurrently without collisions.
//! One writer thread serializes all outbound frames; one reader thread
//! demultiplexes inbound frames into per-session channels, so a slow
//! session never blocks its siblings (each session has its own unbounded
//! queue and its own [`Endpoint`](crate::Endpoint) worker on the serving
//! side).
//!
//! The module is generic over `Read`/`Write` carriers; the only TCP-aware
//! code lives in `crate::tcp`, which wires a socket's two halves in here.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::link::{LinkError, Session};
use crate::transport::{Acceptor, BackendKind, Transport};
use crate::wire::{read_exact_pooled, write_frame, Frame, MAX_FRAME};

/// Application frame for an established session.
pub(crate) const KIND_DATA: u8 = 0;
/// The peer opened a new session with this id.
pub(crate) const KIND_OPEN: u8 = 1;
/// The peer finished the session with this id.
pub(crate) const KIND_CLOSE: u8 = 2;

/// Bytes of mux header inside the length-delimited frame.
const MUX_HEADER: usize = 5;

/// One outbound mux frame: `(session id, kind, payload)`.
pub(crate) type MuxOut = (u32, u8, Frame);

/// A cloneable handle that severs the underlying carrier, taking every
/// session on the connection down with it (used for injected surrogate
/// crashes and daemon shutdown).
#[derive(Clone)]
pub struct ConnKiller(Arc<dyn Fn() + Send + Sync>);

impl ConnKiller {
    /// Wraps a closure that forcibly closes the carrier.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Self {
        ConnKiller(Arc::new(f))
    }

    /// A killer that does nothing (carriers that die by being dropped).
    pub fn noop() -> Self {
        ConnKiller::new(|| {})
    }

    /// Severs the carrier.
    pub fn kill(&self) {
        (self.0)()
    }
}

impl std::fmt::Debug for ConnKiller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ConnKiller")
    }
}

type Routes = Arc<Mutex<HashMap<u32, Sender<Frame>>>>;

/// One end of a multiplexed connection. Implements both [`Transport`]
/// (open sessions toward the peer) and [`Acceptor`] (receive sessions the
/// peer opened); either side may do both.
///
/// Dropping the `MuxConn` does not tear down live sessions: each session
/// keeps the shared writer alive through its own sender clone.
#[derive(Debug)]
pub struct MuxConn {
    out_tx: Sender<MuxOut>,
    accepted_rx: Receiver<(u32, Receiver<Frame>)>,
    routes: Routes,
    next_id: AtomicU32,
    parity: u32,
    backend: BackendKind,
    killer: ConnKiller,
    sessions_opened: Arc<aide_telemetry::Counter>,
}

impl MuxConn {
    /// A handle that severs the whole connection.
    pub fn killer(&self) -> ConnKiller {
        self.killer.clone()
    }
}

impl Transport for MuxConn {
    fn backend(&self) -> BackendKind {
        self.backend
    }

    fn open_session(&self) -> Result<Session, LinkError> {
        let n = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = (n << 1) | self.parity;
        let (in_tx, in_rx) = unbounded();
        self.routes.lock().insert(id, in_tx);
        if self.out_tx.send((id, KIND_OPEN, Frame::empty())).is_err() {
            self.routes.lock().remove(&id);
            return Err(LinkError::Disconnected);
        }
        self.sessions_opened.inc();
        Ok(Session::mux_parts(
            id,
            self.out_tx.clone(),
            in_rx,
            self.backend,
        ))
    }
}

impl Acceptor for MuxConn {
    fn accept(&self) -> Result<Session, LinkError> {
        // The reader hands over only `(id, inbound half)`; the session is
        // assembled here so the reader thread never holds a writer sender
        // (which would keep the writer alive after every handle dropped).
        let (id, in_rx) = self
            .accepted_rx
            .recv()
            .map_err(|_| LinkError::Disconnected)?;
        self.sessions_opened.inc();
        Ok(Session::mux_parts(
            id,
            self.out_tx.clone(),
            in_rx,
            self.backend,
        ))
    }
}

/// Starts the reader/writer threads for one multiplexed connection and
/// returns the local handle. `initiator` decides session-id parity;
/// `on_writer_exit` runs when the writer drains out (e.g. to shut down a
/// socket's write half so the peer sees EOF).
pub(crate) fn spawn_mux<R, W>(
    mut reader: R,
    mut writer: W,
    initiator: bool,
    killer: ConnKiller,
    backend: BackendKind,
    on_writer_exit: impl FnOnce() + Send + 'static,
) -> MuxConn
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let telemetry = aide_telemetry::global();
    let frames = telemetry.counter(aide_telemetry::names::MUX_FRAMES);
    let bytes = telemetry.counter(aide_telemetry::names::MUX_BYTES);

    let (out_tx, out_rx) = unbounded::<MuxOut>();
    let (accepted_tx, accepted_rx) = unbounded::<(u32, Receiver<Frame>)>();
    let routes: Routes = Arc::new(Mutex::new(HashMap::new()));
    let parity = u32::from(initiator);

    {
        let frames = Arc::clone(&frames);
        let bytes = Arc::clone(&bytes);
        std::thread::Builder::new()
            .name("rpc-mux-writer".into())
            .spawn(move || {
                let mut header = [0u8; MUX_HEADER];
                while let Ok((id, kind, frame)) = out_rx.recv() {
                    header[0..4].copy_from_slice(&id.to_le_bytes());
                    header[4] = kind;
                    let len = (MUX_HEADER + frame.len()) as u32;
                    if writer.write_all(&len.to_le_bytes()).is_err()
                        || writer.write_all(&header).is_err()
                        || writer.write_all(&frame).is_err()
                    {
                        break;
                    }
                    frames.inc();
                    bytes.add(4 + len as u64);
                }
                on_writer_exit();
            })
            .expect("spawning the mux writer thread");
    }

    {
        let routes = Arc::clone(&routes);
        std::thread::Builder::new()
            .name("rpc-mux-reader".into())
            .spawn(move || {
                loop {
                    let mut header = [0u8; 4 + MUX_HEADER];
                    if reader.read_exact(&mut header).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
                    if (len as usize) < MUX_HEADER || len > MAX_FRAME {
                        break;
                    }
                    let id = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
                    let kind = header[8];
                    let frame = match read_exact_pooled(&mut reader, len as usize - MUX_HEADER) {
                        Ok(frame) => frame,
                        Err(_) => break,
                    };
                    frames.inc();
                    bytes.add(4 + u64::from(len));
                    let peer_initiated = (id & 1) != parity;
                    match kind {
                        KIND_OPEN => {
                            open_route(&routes, &accepted_tx, id);
                        }
                        KIND_CLOSE => {
                            routes.lock().remove(&id);
                        }
                        KIND_DATA => {
                            let known = routes.lock().contains_key(&id);
                            if !known {
                                if !peer_initiated {
                                    // A late frame for a session we already
                                    // closed: drop it.
                                    continue;
                                }
                                // Data can race ahead of its OPEN only if the
                                // peer speaks a newer dialect; treat it as an
                                // implicit open so nothing is lost.
                                open_route(&routes, &accepted_tx, id);
                            }
                            let mut map = routes.lock();
                            if let Some(tx) = map.get(&id) {
                                if tx.send(frame).is_err() {
                                    map.remove(&id);
                                }
                            }
                        }
                        _ => break,
                    }
                }
                // Carrier gone: every session sees Disconnected once its
                // queue drains, and the acceptor stops yielding sessions.
                routes.lock().clear();
            })
            .expect("spawning the mux reader thread");
    }

    MuxConn {
        out_tx,
        accepted_rx,
        routes,
        next_id: AtomicU32::new(1),
        parity,
        backend,
        killer,
        sessions_opened: telemetry.counter(aide_telemetry::names::MUX_SESSIONS),
    }
}

/// Installs a route for a peer-opened session and hands its inbound half
/// to the acceptor.
fn open_route(routes: &Routes, accepted_tx: &Sender<(u32, Receiver<Frame>)>, id: u32) {
    let mut map = routes.lock();
    if map.contains_key(&id) {
        return; // duplicate OPEN
    }
    let (in_tx, in_rx) = unbounded();
    map.insert(id, in_tx);
    drop(map);
    if accepted_tx.send((id, in_rx)).is_err() {
        routes.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory byte pipe so mux logic is testable without sockets.
    fn pipe() -> (PipeWriter, PipeReader) {
        let (tx, rx) = unbounded();
        (
            PipeWriter(tx),
            PipeReader {
                rx,
                pending: Vec::new(),
                pos: 0,
            },
        )
    }

    struct PipeWriter(Sender<Vec<u8>>);

    impl Write for PipeWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .send(buf.to_vec())
                .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed"))?;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    struct PipeReader {
        rx: Receiver<Vec<u8>>,
        pending: Vec<u8>,
        pos: usize,
    }

    impl Read for PipeReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.pos == self.pending.len() {
                match self.rx.recv() {
                    Ok(chunk) => {
                        self.pending = chunk;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0), // EOF
                }
            }
            let n = (self.pending.len() - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn mux_pair() -> (MuxConn, MuxConn) {
        let (a_w, b_r) = pipe();
        let (b_w, a_r) = pipe();
        let a = spawn_mux(
            a_r,
            a_w,
            true,
            ConnKiller::noop(),
            BackendKind::InMemory,
            || {},
        );
        let b = spawn_mux(
            b_r,
            b_w,
            false,
            ConnKiller::noop(),
            BackendKind::InMemory,
            || {},
        );
        (a, b)
    }

    #[test]
    fn sessions_cross_the_mux_in_both_directions() {
        let (a, b) = mux_pair();
        let client = a.open_session().unwrap();
        let server = b.accept().unwrap();
        client.send(vec![1, 2, 3]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1, 2, 3]);
        server.send(vec![9]).unwrap();
        assert_eq!(client.recv().unwrap(), vec![9]);
    }

    #[test]
    fn concurrent_sessions_are_demultiplexed_by_id() {
        let (a, b) = mux_pair();
        let c1 = a.open_session().unwrap();
        let c2 = a.open_session().unwrap();
        let s1 = b.accept().unwrap();
        let s2 = b.accept().unwrap();
        // Interleave traffic; each session must see only its own frames.
        c1.send(vec![1, 1]).unwrap();
        c2.send(vec![2, 2]).unwrap();
        c1.send(vec![1]).unwrap();
        assert_eq!(s1.recv().unwrap(), vec![1, 1]);
        assert_eq!(s2.recv().unwrap(), vec![2, 2]);
        assert_eq!(s1.recv().unwrap(), vec![1]);
    }

    #[test]
    fn both_sides_can_initiate_sessions_without_id_collisions() {
        let (a, b) = mux_pair();
        let from_a = a.open_session().unwrap();
        let from_b = b.open_session().unwrap();
        let at_b = b.accept().unwrap();
        let at_a = a.accept().unwrap();
        from_a.send(vec![0xA]).unwrap();
        from_b.send(vec![0xB]).unwrap();
        assert_eq!(at_b.recv().unwrap(), vec![0xA]);
        assert_eq!(at_a.recv().unwrap(), vec![0xB]);
    }

    #[test]
    fn close_tears_down_one_session_but_not_its_siblings() {
        let (a, b) = mux_pair();
        let c1 = a.open_session().unwrap();
        let c2 = a.open_session().unwrap();
        let s1 = b.accept().unwrap();
        let s2 = b.accept().unwrap();
        c1.send(vec![7]).unwrap();
        c1.close();
        // The close races behind the data frame, so the queued frame is
        // still deliverable before the disconnect is observed.
        assert_eq!(s1.recv().unwrap(), vec![7]);
        assert_eq!(s1.recv().unwrap_err(), LinkError::Disconnected);
        // Sibling session is untouched.
        c2.send(vec![8]).unwrap();
        assert_eq!(s2.recv().unwrap(), vec![8]);
    }

    #[test]
    fn carrier_death_disconnects_every_session_and_the_acceptor() {
        let (a, b) = mux_pair();
        let client = a.open_session().unwrap();
        let server = b.accept().unwrap();
        client.send(vec![1]).unwrap();
        assert_eq!(server.recv().unwrap(), vec![1]);
        // Dropping the initiator's handle and sessions drains its writer,
        // which drops the pipe and EOFs the peer's reader.
        drop(client);
        drop(a);
        assert_eq!(server.recv().unwrap_err(), LinkError::Disconnected);
        assert_eq!(b.accept().unwrap_err(), LinkError::Disconnected);
    }
}
